"""Scaling study: measured rounds on growing trees and the analytic separation.

Part 1 measures the transformed (edge-degree+1)-edge colouring and MIS on a
sweep of random trees and prints how the phases grow with ``n``.

Part 2 works purely in the complexity model: it evaluates the Theorem 1
prediction ``f(g(n)) + log* n`` for several truly local complexities ``f``
and compares them against the ``Θ(log n / log log n)`` barrier that MIS and
maximal matching cannot beat on trees — the separation that Theorem 3
establishes for edge colouring.  Because the ``log^{12} Δ`` black box only
wins asymptotically, the comparison is done in log-space for very large n.

Run with::

    python examples/scaling_and_separation.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import MeasurementTable, growth_exponent
from repro.baselines import EdgeColoringAlgorithm, MISAlgorithm
from repro.core import solve_on_bounded_arboricity, solve_on_tree
from repro.core.complexity import (
    linear,
    mm_mis_tree_bound_from_log2,
    polylog,
    predicted_rounds_tree_from_log2,
    sqrt_delta_log,
)
from repro.generators import random_tree


def measured_scaling() -> None:
    sizes = [100, 300, 1000, 3000]
    table = MeasurementTable(
        "Measured rounds of the transformed algorithms on random trees",
        ["n", "edge-colouring rounds", "edge-colouring k", "MIS rounds", "MIS k"],
    )
    for n in sizes:
        tree = random_tree(n, seed=17)
        edge = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
        mis = solve_on_tree(tree, MISAlgorithm())
        assert edge.verification.ok and mis.verification.ok
        table.add_row(n, edge.rounds, edge.k, mis.rounds, mis.k)
    print(table.render())
    print()


def analytic_separation() -> None:
    complexities = {
        "f(Δ)=Δ (MIS / matching, tight)": linear(),
        "f(Δ)=√Δ·logΔ ((Δ+1)-colouring, MT20)": sqrt_delta_log(),
        "f(Δ)=log²Δ (hypothetical)": polylog(2),
        "f(Δ)=log¹²Δ (edge colouring, BBKO22b)": polylog(12),
    }
    exponents = [16, 64, 256, 4096, 10**6, 10**12, 10**24, 10**36]
    table = MeasurementTable(
        "Theorem 1 prediction f(g(n)) + log* n versus the log n / log log n barrier "
        "(n = 2^L, values in rounds)",
        ["L = log2 n", "barrier"] + list(complexities),
    )
    for exponent in exponents:
        row = [f"1e{len(str(exponent)) - 1}" if exponent >= 10**6 else exponent,
               round(mm_mis_tree_bound_from_log2(float(exponent)), 1)]
        for f in complexities.values():
            row.append(round(predicted_rounds_tree_from_log2(f, float(exponent)), 1))
        table.add_row(*row)
    print(table.render())

    # Fit the growth exponent beta of "rounds ~ (log n)^beta" for the edge
    # colouring prediction: Theorem 3 says beta = 12/13 ~ 0.923.
    log2_ns = [float(10**e) for e in range(6, 40, 2)]
    values = [predicted_rounds_tree_from_log2(polylog(12), L) for L in log2_ns]
    ns = [2.0**min(L, 1000) for L in log2_ns]  # only used for labels
    del ns
    import math

    xs = [math.log(L) for L in log2_ns]
    ys = [math.log(v) for v in values]
    slope = (ys[-1] - ys[0]) / (xs[-1] - xs[0])
    print(
        f"\nfitted growth exponent of the log^12-based prediction: "
        f"{slope:.3f} (Theorem 3: 12/13 = {12 / 13:.3f})"
    )


def main() -> None:
    measured_scaling()
    analytic_separation()


if __name__ == "__main__":
    main()
