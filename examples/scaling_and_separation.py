"""Scaling study driven by the experiments subsystem, plus the separation.

Part 1 runs the ``scaling`` suite (transforms and direct baselines on
growing random trees) through the parallel :class:`SweepRunner` at reduced
sizes and rebuilds the scaling table and the per-scenario log-power fits
from the stored JSONL records.

Part 2 works purely in the complexity model: it evaluates the Theorem 1
prediction ``f(g(n)) + log* n`` for several truly local complexities ``f``
and compares them against the ``Θ(log n / log log n)`` barrier that MIS and
maximal matching cannot beat on trees — the separation that Theorem 3
establishes for edge colouring.  The ``β < 1`` fit itself ships as the
``theorem3-shape/predicted`` cells of the ``paper-claims`` suite.

Run with::

    python examples/scaling_and_separation.py
"""

import tempfile

import _path  # noqa: F401

from repro.analysis import MeasurementTable, fit_power_of_log
from repro.core.complexity import (
    linear,
    mm_mis_tree_bound_from_log2,
    polylog,
    predicted_rounds_tree_from_log2,
    sqrt_delta_log,
)
from repro.experiments import ResultStore, SweepRunner, build_report, get_suite


def measured_scaling() -> None:
    suite = get_suite("scaling")
    with tempfile.TemporaryDirectory(prefix="repro-scaling-") as directory:
        store = ResultStore(directory)
        runner = SweepRunner(
            suite, store, jobs=4, sizes=(100, 300, 1000), seeds=(17,)
        )
        report = runner.run()
        assert report.ok, f"sweep failed: {report.failures or report.unverified}"
        bundle = build_report(store.records())
    print(bundle.scaling.render())
    print()
    print(bundle.fits.render())
    print()


def analytic_separation() -> None:
    complexities = {
        "f(Δ)=Δ (MIS / matching, tight)": linear(),
        "f(Δ)=√Δ·logΔ ((Δ+1)-colouring, MT20)": sqrt_delta_log(),
        "f(Δ)=log²Δ (hypothetical)": polylog(2),
        "f(Δ)=log¹²Δ (edge colouring, BBKO22b)": polylog(12),
    }
    exponents = [16, 64, 256, 4096, 10**6, 10**12, 10**24, 10**36]
    table = MeasurementTable(
        "Theorem 1 prediction f(g(n)) + log* n versus the log n / log log n barrier "
        "(n = 2^L, values in rounds)",
        ["L = log2 n", "barrier"] + list(complexities),
    )
    for exponent in exponents:
        row = [f"1e{len(str(exponent)) - 1}" if exponent >= 10**6 else exponent,
               round(mm_mis_tree_bound_from_log2(float(exponent)), 1)]
        for f in complexities.values():
            row.append(round(predicted_rounds_tree_from_log2(f, float(exponent)), 1))
        table.add_row(*row)
    print(table.render())

    # The growth exponent beta of "rounds ~ (log n)^beta" for the edge
    # colouring prediction (Theorem 3: beta = 12/13 ~ 0.923), fitted over
    # float-representable n = 2^L — the same fit `report` runs on the
    # stored theorem3-shape cells.
    exponents = [64, 128, 256, 512, 1000]
    ns = [2.0**L for L in exponents]
    values = [predicted_rounds_tree_from_log2(polylog(12), float(L)) for L in exponents]
    beta, _ = fit_power_of_log(ns, values)
    print(
        f"\nfitted growth exponent of the log^12-based prediction: "
        f"{beta:.3f} (Theorem 3: 12/13 = {12 / 13:.3f})"
    )


def main() -> None:
    measured_scaling()
    analytic_separation()


if __name__ == "__main__":
    main()
