"""Tutorial: defining your own node-edge-checkable problem.

The transformation is generic: anything you can phrase in the
node-edge-checkability formalism (Definition 6) and equip with a truly
local algorithm plus a sequential list solver can be pushed through
Theorem 12 or Theorem 15.  This tutorial defines a small new problem from
scratch — *weak 2-colouring* (every non-isolated node must have at least
one neighbour with a different colour) — and walks through:

1. the constraint predicates,
2. the conversion to/from a classic solution,
3. verification on a semi-graph, and
4. why the class P1 is a real restriction: a naive 1-hop sequential solver
   for this encoding gets stuck (earlier nodes prescribe incompatible
   colours to a later node), whereas the MIS oracle — a genuine P1 witness —
   succeeds under the same adversarial order.

Run with::

    python examples/custom_problem_tutorial.py
"""

import _path  # noqa: F401

from repro.core.slocal import solve_node_sequential
from repro.generators import random_tree
from repro.problems import NodeEdgeCheckableProblem, verify_solution
from repro.semigraph import HalfEdge, semigraph_from_graph


class WeakTwoColoring(NodeEdgeCheckableProblem):
    """Weak 2-colouring.

    Encoding: the label on a half-edge ``(v, e)`` is a pair
    ``(own colour, other endpoint's colour)`` with colours in ``{1, 2}``.

    * Edge constraint (rank 2): the two half-edges mirror each other —
      ``(a, b)`` opposite ``(b, a)``.
    * Node constraint: all "own colour" entries agree, and at least one
      incident half-edge sees a different colour across the edge (the weak
      colouring condition).  Rank-1 edges carry ``(own colour, own colour)``
      and do not help satisfy the condition.
    """

    name = "weak-2-coloring"

    def node_config_ok(self, labels):
        labels = tuple(labels)
        if not labels:
            return True
        if not all(self._is_label(lab) for lab in labels):
            return False
        own_colours = {lab[0] for lab in labels}
        if len(own_colours) != 1:
            return False
        return any(lab[0] != lab[1] for lab in labels)

    def edge_config_ok(self, labels, rank):
        labels = tuple(labels)
        if len(labels) != rank:
            return False
        if rank == 0:
            return True
        if not all(self._is_label(lab) for lab in labels):
            return False
        if rank == 1:
            return True
        first, second = labels
        return first == (second[1], second[0])

    @staticmethod
    def _is_label(label):
        return (
            isinstance(label, tuple)
            and len(label) == 2
            and all(colour in (1, 2) for colour in label)
        )

    def to_classic(self, semigraph, labeling):
        colours = {}
        for node in semigraph.nodes:
            half_edges = semigraph.half_edges_of_node(node)
            colours[node] = labeling[half_edges[0]][0] if half_edges else 1
        return colours

    def from_classic(self, semigraph, classic):
        from repro.semigraph import HalfEdgeLabeling

        labeling = HalfEdgeLabeling()
        for edge in semigraph.edges:
            endpoints = semigraph.endpoints(edge)
            for node in endpoints:
                other = semigraph.other_endpoint(edge, node)
                other_colour = classic[other] if other is not None else classic[node]
                labeling.assign(HalfEdge(node, edge), (classic[node], other_colour))
        return labeling


def naive_weak_coloring_oracle(view):
    """A *naive* 1-hop sequential attempt.

    The node picks the colour opposite to any already-decided neighbour and
    guesses the colour of undecided neighbours.  Because two earlier
    neighbours may prescribe incompatible colours to a later node, this is
    not a valid P1 witness — the example shows the resulting violations.
    """
    own = 1
    for edge in view.incident_edges():
        across = view.label_across(edge)
        if across is not None:
            own = 3 - across[0]
            break
    decisions = {}
    for edge in view.incident_edges():
        across = view.label_across(edge)
        other_colour = across[0] if across is not None else 3 - own
        decisions[edge] = (own, other_colour)
    return decisions


def main() -> None:
    tree = random_tree(200, seed=5)
    semigraph = semigraph_from_graph(tree)
    problem = WeakTwoColoring()

    # Classic route: 2-colour the tree by depth parity and lift it.
    import networkx as nx

    depths = nx.single_source_shortest_path_length(tree, 0)
    classic = {node: 1 + depth % 2 for node, depth in depths.items()}
    labeling = problem.from_classic(semigraph, classic)
    print("lifted classic solution valid:", verify_solution(problem, semigraph, labeling).ok)

    # A naive sequential 1-hop attempt under an adversarial (reversed) order:
    # it fails, which is exactly why membership in the class P1 is a real
    # requirement and not a formality.
    order = sorted(semigraph.nodes, key=repr, reverse=True)
    naive = solve_node_sequential(semigraph, naive_weak_coloring_oracle, order=order)
    result = verify_solution(problem, semigraph, naive)
    print("naive 1-hop sequential attempt valid:", result.ok, "(expected: False)")
    if not result.ok:
        print("  example violation:", result.violations[0])

    # Contrast: the MIS oracle is a genuine P1 witness and succeeds under the
    # same adversarial order.
    from repro.core.slocal import mis_oracle
    from repro.problems import MaximalIndependentSetProblem

    mis_labeling = solve_node_sequential(semigraph, mis_oracle, order=order)
    mis_ok = verify_solution(MaximalIndependentSetProblem(), semigraph, mis_labeling).ok
    print("MIS oracle under the same order valid:", mis_ok, "(expected: True)")


if __name__ == "__main__":
    main()
