"""Quickstart: (edge-degree+1)-edge colouring on a tree via the paper's transformation.

Run with::

    python examples/quickstart.py

The script builds a random tree, runs the Theorem 15 pipeline (which on a
tree, arboricity 1, is exactly the Theorem 3 algorithm), verifies the
solution both in the node-edge-checkability formalism and as a classic edge
colouring, and prints the per-phase round account.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import EdgeColoringAlgorithm, OracleCostModel
from repro.core import polylog, solve_on_bounded_arboricity
from repro.generators import random_tree
from repro.problems.classic import is_edge_degree_plus_one_coloring


def main() -> None:
    tree = random_tree(1000, seed=42)
    print(f"input: random tree with n={tree.number_of_nodes()} nodes")

    # 1. Run the transformation with the implemented truly local algorithm
    #    (Linial colouring of the line graph + colour-class sweep, f(Δ)=O(Δ²)).
    algorithm = EdgeColoringAlgorithm()
    result = solve_on_bounded_arboricity(tree, arboricity=1, algorithm=algorithm)
    print(f"\nproblem: {result.problem_name}")
    print(f"cut-off k = g(n): {result.k}")
    print(f"valid solution:   {result.verification.ok}")
    print(f"total rounds:     {result.rounds}")
    for phase, rounds in result.ledger.breakdown().items():
        print(f"  {phase:40s} {rounds:6d} rounds")

    colours = dict(result.classic)
    print(f"colours used:     {len(set(colours.values()))}")
    print(f"classic verifier: {is_edge_degree_plus_one_coloring(tree, colours)}")

    # 2. Re-run with the paper's cost model for the [BBKO22b] black box
    #    (f(Δ) = log^12 Δ) to see the Theorem 3 round charge.
    model = OracleCostModel("BBKO22b edge colouring", polylog(12))
    charged = solve_on_bounded_arboricity(
        tree, arboricity=1, algorithm=algorithm, cost_model=model
    )
    print(f"\nwith the analytic f(Δ)=log^12 Δ cost model:")
    print(f"cut-off k = g(n)^2: {charged.k}")
    print(f"charged rounds:     {charged.charged_rounds}")


if __name__ == "__main__":
    main()
