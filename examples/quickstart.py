"""Quickstart: run a paper-claims sweep through the experiments subsystem.

Run with::

    python examples/quickstart.py

The script drives the same machinery as ``python -m repro.experiments``:
it runs the ``paper-claims`` suite at smoke sizes through the parallel
:class:`SweepRunner` into a JSONL :class:`ResultStore`, shows that a second
invocation resumes (skips every completed cell), and rebuilds the scaling
table and the Theorem 3 shape fit from the stored records alone.  A single
transformed run is unpacked at the end to show the per-phase round ledger.
"""

import tempfile

import _path  # noqa: F401

from repro.baselines import EdgeColoringAlgorithm
from repro.core import solve_on_bounded_arboricity
from repro.experiments import ResultStore, SweepRunner, build_report, get_suite
from repro.generators import random_tree


def main() -> None:
    suite = get_suite("paper-claims")
    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as directory:
        store = ResultStore(directory)
        runner = SweepRunner(suite, store, jobs=2, smoke=True)

        report = runner.run()
        print(
            f"first sweep:  {report.executed} cells executed, "
            f"{report.skipped} skipped, all verified: {report.ok}"
        )

        report = runner.run()
        print(
            f"second sweep: {report.executed} cells executed, "
            f"{report.skipped} skipped (resumed from {store.path.name})"
        )

        bundle = build_report(store.records())
        print()
        print(bundle.scaling.render())
        print()
        print(bundle.fits.render())
        if bundle.theorem3_beta is not None:
            print(
                f"\nTheorem 3 shape from stored results: "
                f"beta = {bundle.theorem3_beta:.3f} (< 1: strongly sublogarithmic)"
            )

    # One transformed run unpacked: the Theorem 15 pipeline on a tree
    # (arboricity 1) is exactly the Theorem 3 algorithm.
    tree = random_tree(1000, seed=42)
    result = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
    print(f"\none run unpacked: {result.problem_name} on a random tree, n=1000")
    print(f"cut-off k = g(n): {result.k}")
    print(f"valid solution:   {result.verification.ok}")
    print(f"total rounds:     {result.rounds}")
    for phase, rounds in result.ledger.breakdown().items():
        print(f"  {phase:40s} {rounds:6d} rounds")


if __name__ == "__main__":
    main()
