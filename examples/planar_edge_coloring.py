"""Edge colouring of planar and bounded-arboricity graphs (Theorem 3, second part).

The paper's Theorem 3 gives an ``O(a + log^{12/13} n)``-round algorithm for
(edge-degree+1)-edge colouring on graphs of arboricity ``a`` — in particular
an ``O(log^{12/13} n)``-round algorithm on planar graphs.  This example runs
the Theorem 15 pipeline on three bounded-arboricity families (grid, random
Apollonian / maximal planar, union of ``a`` forests) and reports the round
breakdown and the decomposition statistics (Lemmas 13 and 14).

Run with::

    python examples/planar_edge_coloring.py
"""

import _path  # noqa: F401

from repro.analysis import MeasurementTable
from repro.baselines import EdgeColoringAlgorithm
from repro.core import solve_on_bounded_arboricity
from repro.generators import forest_union, grid_graph, planar_triangulation_like
from repro.problems.classic import is_edge_degree_plus_one_coloring


def main() -> None:
    instances = {
        "grid 20x20 (a=2)": (grid_graph(20, 20), 2),
        "maximal planar n=400 (a=3)": (planar_triangulation_like(400, seed=1), 3),
        "union of 2 forests n=400": (forest_union(400, 2, seed=2), 2),
        "union of 4 forests n=400": (forest_union(400, 4, seed=3), 4),
    }

    table = MeasurementTable(
        "Theorem 3 on bounded-arboricity graphs ((edge-degree+1)-edge colouring)",
        ["instance", "n", "m", "a", "k", "iterations", "rounds", "valid"],
    )
    algorithm = EdgeColoringAlgorithm()
    for name, (graph, arboricity) in instances.items():
        result = solve_on_bounded_arboricity(graph, arboricity, algorithm)
        valid = result.verification.ok and is_edge_degree_plus_one_coloring(
            graph, dict(result.classic)
        )
        table.add_row(
            name,
            graph.number_of_nodes(),
            graph.number_of_edges(),
            arboricity,
            result.k,
            result.details["iterations"],
            result.rounds,
            valid,
        )
        decomposition = result.decomposition
        print(
            f"{name}: typical-degree bound k={result.k}, "
            f"measured typical max degree={decomposition.typical_max_degree()}, "
            f"atypical edges per node <= {decomposition.max_atypical_per_lower_endpoint()} "
            f"(budget b={decomposition.b})"
        )

    print()
    print(table.render())


if __name__ == "__main__":
    main()
