"""Shared bootstrap: make ``repro`` importable from a source checkout.

Every example starts with ``import _path  # noqa: F401`` instead of
repeating its own ``sys.path`` surgery.  Importing this module is enough —
it prepends ``<repo>/src`` to ``sys.path`` exactly once.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
