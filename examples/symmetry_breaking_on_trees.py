"""The four symmetry-breaking problems on a regular balanced tree.

The paper's lower-bound instances are regular balanced trees; this example
runs the full transformation for MIS, (deg+1)-colouring (Theorem 12 /
class P1) and for maximal matching, (edge-degree+1)-edge colouring
(Theorem 15 / class P2) on one such tree and reports the per-phase round
accounts side by side.  It also prints the structural quantities the
theorems rely on (Lemma 10/11 for the rake-and-compress decomposition,
Lemma 13/14 for the arboricity decomposition).

Run with::

    python examples/symmetry_breaking_on_trees.py
"""

import _path  # noqa: F401

from repro.analysis import MeasurementTable
from repro.baselines import (
    DegPlusOneColoringAlgorithm,
    EdgeColoringAlgorithm,
    MISAlgorithm,
    MaximalMatchingAlgorithm,
)
from repro.core import solve_on_bounded_arboricity, solve_on_tree
from repro.generators import balanced_regular_tree
from repro.problems.classic import (
    is_deg_plus_one_coloring,
    is_edge_degree_plus_one_coloring,
    is_maximal_independent_set,
    is_maximal_matching,
)


def main() -> None:
    tree = balanced_regular_tree(degree=3, depth=7)
    n = tree.number_of_nodes()
    print(f"input: 3-regular balanced tree of depth 7, n={n}\n")

    table = MeasurementTable(
        "All four symmetry-breaking problems on the same tree",
        ["problem", "pipeline", "k", "rounds", "decomposition", "A-phase", "finish", "valid"],
    )

    runs = []

    mis = solve_on_tree(tree, MISAlgorithm())
    runs.append(("MIS", "Theorem 12", mis, is_maximal_independent_set(tree, mis.classic)))

    colouring = solve_on_tree(tree, DegPlusOneColoringAlgorithm())
    runs.append(
        ("(deg+1)-colouring", "Theorem 12", colouring, is_deg_plus_one_coloring(tree, colouring.classic))
    )

    matching = solve_on_bounded_arboricity(tree, 1, MaximalMatchingAlgorithm())
    runs.append(
        (
            "maximal matching",
            "Theorem 15",
            matching,
            is_maximal_matching(tree, [tuple(e) for e in matching.classic]),
        )
    )

    edge_colouring = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
    runs.append(
        (
            "(edge-degree+1)-edge colouring",
            "Theorem 15",
            edge_colouring,
            is_edge_degree_plus_one_coloring(tree, dict(edge_colouring.classic)),
        )
    )

    for name, pipeline, result, classic_ok in runs:
        breakdown = result.ledger.breakdown()
        finish = (
            breakdown.get("raked components (gather & solve)", 0)
            + breakdown.get("star collections (gather & solve)", 0)
        )
        table.add_row(
            name,
            pipeline,
            result.k,
            result.rounds,
            breakdown.get("decomposition", 0),
            breakdown.get("truly-local algorithm A", 0),
            finish,
            result.verification.ok and classic_ok,
        )

    print(table.render())

    decomposition = mis.decomposition
    print("\nrake-and-compress structure (Theorem 12 path):")
    print(f"  iterations:                    {decomposition.iterations}")
    print(f"  paper bound ⌈log_k n⌉+1:       {decomposition.theoretical_iteration_bound}")
    print(f"  compressed-subgraph max degree: {decomposition.compressed_subgraph_max_degree()} (k={decomposition.k})")
    diameters = decomposition.raked_component_diameters()
    print(f"  max raked-component diameter:   {max(diameters) if diameters else 0} "
          f"(Lemma 11 bound {decomposition.lemma_11_diameter_bound()})")

    arb = edge_colouring.decomposition
    print("\narboricity decomposition structure (Theorem 15 path):")
    print(f"  iterations:                  {arb.iterations} (Lemma 13 bound {arb.theoretical_layer_bound()})")
    print(f"  typical-edge max degree:     {arb.typical_max_degree()} (k={arb.k})")
    print(f"  atypical edges / lower node: {arb.max_atypical_per_lower_endpoint()} (b={arb.b})")
    print(f"  star collections:            {len(arb.star_collections)} (all stars: {arb.star_components_are_stars()})")


if __name__ == "__main__":
    main()
