"""Property-style equivalence of the vectorized backend across instance
families.

Seeded random trees and bounded-degree graphs, swept over sizes and
seeds, are run three ways — vectorized array kernels, the interpreted
active-set engine and the preserved seed engine — and every observable
must agree exactly: per-node labelings, round counts and message counts,
both in the :class:`RunResult` and through :class:`MessageMeter`
accounting.  This is the bit-identical contract that lets ``auto`` mode
pick the backend per algorithm without changing any stored result.
"""

import pytest

from repro.baselines.coloring import deg_plus_one_coloring
from repro.baselines.color_reduction import ColorClassReduction
from repro.baselines.forest_coloring import ForestThreeColoring
from repro.baselines.linial import LinialColoring
from repro.baselines.mis import ColorClassMIS
from repro.decomposition import arboricity_decomposition, rake_and_compress
from repro.generators import (
    bfs_forest_parents,
    forest_union,
    random_graph_with_max_degree,
    random_tree,
)
from repro.local import (
    EnginePolicy,
    MessageMeter,
    Network,
    numpy_available,
    run_synchronous,
    run_synchronous_reference,
    run_vectorized,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy is required for the vectorized backend"
)

#: (n, seed) sweep of the property tests.  n=2500 is large enough that
#: the Linial schedule has real reduction rounds (not just the trivial
#: identifier round), so both code paths of the kernel are exercised.
TREE_CASES = [(50, 1), (50, 2), (200, 3), (200, 4), (800, 5), (2500, 6)]
GRAPH_CASES = [(60, 5, 1), (200, 6, 2), (700, 4, 3)]


def _three_way(network, algorithm_factory, max_rounds=None):
    """Run all three engines; return their (result, messages) pairs."""
    outcomes = []
    for runner in (run_vectorized, run_synchronous, run_synchronous_reference):
        with MessageMeter() as meter:
            result = runner(network, algorithm_factory(), max_rounds=max_rounds)
        outcomes.append((result, meter.messages))
    return outcomes


def _colour_class_network(graph):
    """Network with a (deg+1)-colouring as node inputs, for the sweeps."""
    coloring = deg_plus_one_coloring(graph)
    num_classes = max(coloring.colours.values(), default=1)
    network = Network(
        graph,
        node_inputs=dict(coloring.colours),
        shared={"num_classes": num_classes},
    )
    return network, num_classes


def _assert_identical(outcomes):
    (vec, vec_msgs), (fast, fast_msgs), (ref, ref_msgs) = outcomes
    assert vec.rounds == fast.rounds == ref.rounds
    assert vec.messages_sent == fast.messages_sent == ref.messages_sent
    assert vec.outputs == fast.outputs == ref.outputs
    assert vec_msgs == fast_msgs == ref_msgs


@pytest.mark.parametrize("n, seed", TREE_CASES)
def test_linial_three_way_on_random_trees(n, seed):
    network = Network(random_tree(n, seed=seed))
    _assert_identical(_three_way(network, LinialColoring))


@pytest.mark.parametrize("n, max_degree, seed", GRAPH_CASES)
def test_linial_three_way_on_bounded_degree_graphs(n, max_degree, seed):
    network = Network(random_graph_with_max_degree(n, max_degree, seed=seed))
    _assert_identical(_three_way(network, LinialColoring))


@pytest.mark.parametrize("n, seed", TREE_CASES)
def test_forest_three_coloring_three_way_on_random_trees(n, seed):
    tree = random_tree(n, seed=seed)
    network = Network(tree, node_inputs=bfs_forest_parents(tree))
    outcomes = _three_way(network, ForestThreeColoring)
    _assert_identical(outcomes)
    assert len(set(outcomes[0][0].outputs.values())) <= 3


@pytest.mark.parametrize("n, seed", TREE_CASES)
def test_mis_three_way_on_random_trees(n, seed):
    graph = random_tree(n, seed=seed)
    network, num_classes = _colour_class_network(graph)
    outcomes = _three_way(network, ColorClassMIS, max_rounds=num_classes + 2)
    _assert_identical(outcomes)
    chosen = {node for node, joined in outcomes[0][0].outputs.items() if joined}
    assert all(not (u in chosen and v in chosen) for u, v in graph.edges)
    assert all(
        node in chosen or any(nb in chosen for nb in graph.adj[node])
        for node in graph.nodes
    )


@pytest.mark.parametrize("n, max_degree, seed", GRAPH_CASES)
def test_mis_three_way_on_bounded_degree_graphs(n, max_degree, seed):
    graph = random_graph_with_max_degree(n, max_degree, seed=seed)
    network, num_classes = _colour_class_network(graph)
    outcomes = _three_way(network, ColorClassMIS, max_rounds=num_classes + 2)
    _assert_identical(outcomes)


@pytest.mark.parametrize("n, seed", TREE_CASES)
def test_colour_reduction_three_way_on_random_trees(n, seed):
    graph = random_tree(n, seed=seed)
    network, num_classes = _colour_class_network(graph)
    outcomes = _three_way(
        network, ColorClassReduction, max_rounds=num_classes + 1
    )
    _assert_identical(outcomes)
    colours = outcomes[0][0].outputs
    assert all(colours[u] != colours[v] for u, v in graph.edges)
    assert all(
        colours[node] <= graph.degree(node) + 1 for node in graph.nodes
    )


@pytest.mark.parametrize("n, max_degree, seed", GRAPH_CASES)
def test_colour_reduction_three_way_on_bounded_degree_graphs(n, max_degree, seed):
    graph = random_graph_with_max_degree(n, max_degree, seed=seed)
    network, num_classes = _colour_class_network(graph)
    outcomes = _three_way(
        network, ColorClassReduction, max_rounds=num_classes + 1
    )
    _assert_identical(outcomes)


@pytest.mark.parametrize("n, k, seed", [(100, 3, 1), (400, 6, 2), (1500, 8, 3)])
def test_rake_compress_peel_property(n, k, seed):
    tree = random_tree(n, seed=seed)
    with EnginePolicy("vectorized"):
        vectorized = rake_and_compress(tree, k=k)
    with EnginePolicy("interpreted"):
        interpreted = rake_and_compress(tree, k=k)
    assert vectorized.layers == interpreted.layers
    assert vectorized.node_layer == interpreted.node_layer
    assert vectorized.rounds == interpreted.rounds


@pytest.mark.parametrize("n, a, seed", [(150, 2, 1), (400, 3, 2), (900, 4, 3)])
def test_arboricity_peel_property(n, a, seed):
    graph = forest_union(n, arboricity=a, seed=seed)
    with EnginePolicy("vectorized"):
        vectorized = arboricity_decomposition(graph, arboricity=a, k=5 * a)
    with EnginePolicy("interpreted"):
        interpreted = arboricity_decomposition(graph, arboricity=a, k=5 * a)
    assert vectorized.layers == interpreted.layers
    assert vectorized.degree_snapshots == interpreted.degree_snapshots
    assert vectorized.forests == interpreted.forests
    assert vectorized.forest_colorings == interpreted.forest_colorings
    assert vectorized.rounds == interpreted.rounds
