"""End-to-end tests for the charged-cost sweep layer and the new suites.

Covers the acceptance criteria of the charged layer: ``run charged`` cells
carry both the measured and the analytic account through the store, the
report emits measured-vs-charged columns and fits on either series, the
sharded path (``run --shard`` → ``merge`` → ``report``) reproduces the
unsharded sweep for the new suites, and the persistent worker pool runs
charged and list-variant cells identically to the plain runner.
"""

import json

import pytest

from repro.experiments import (
    CellResult,
    ResultStore,
    SweepRunner,
    build_report,
    get_suite,
    merge_result_files,
)
from repro.experiments.cli import main
from repro.service import ShardSpec, WorkerPool


def _canonical(records):
    """Store records, keyed and sorted by fingerprint, timing dropped."""
    by_fingerprint = {}
    for record in records:
        payload = {
            k: v for k, v in record.items()
            if k not in ("wall_clock_s", "timings")
        }
        by_fingerprint[record["fingerprint"]] = payload
    return sorted(by_fingerprint.values(), key=lambda r: r["fingerprint"])


class TestChargedStoreRoundtrip:
    def test_charged_rounds_survive_the_jsonl_store(self, tmp_path):
        store = ResultStore(tmp_path)
        report = SweepRunner(
            get_suite("charged"), store, jobs=1, smoke=True,
            sizes=(40,), seeds=(1,),
        ).run()
        assert report.ok
        results = store.results()
        charged = [r for r in results if r.charged_rounds is not None]
        assert charged, "the charged suite must produce charged cells"
        for result in charged:
            assert result.charged_rounds > 0
            record = json.loads(json.dumps(result.to_record()))
            assert CellResult.from_record(record).charged_rounds == (
                result.charged_rounds
            )
        # The analytic shape cells run without a cost model.
        analytic = [r for r in results if r.generator == "analytic"]
        assert analytic
        assert all(r.charged_rounds is None for r in analytic)

    def test_resume_skips_completed_charged_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        first = SweepRunner(
            get_suite("charged"), store, jobs=1, smoke=True,
            sizes=(40,), seeds=(1,),
        ).run()
        assert first.ok and first.executed > 0
        second = SweepRunner(
            get_suite("charged"), store, jobs=1, smoke=True,
            sizes=(40,), seeds=(1,),
        ).run()
        assert second.executed == 0
        assert second.skipped == first.total_cells


@pytest.mark.parametrize("suite_name", ["charged", "orientation-lists"])
class TestShardMergeReportEquivalence:
    def test_sharded_run_reproduces_unsharded_store(self, suite_name, tmp_path):
        suite = get_suite(suite_name)
        kwargs = dict(jobs=1, smoke=True)

        whole = ResultStore(tmp_path / "whole")
        assert SweepRunner(suite, whole, **kwargs).run().ok

        shard_paths = []
        for index in range(2):
            store = ResultStore(tmp_path / f"shard{index}")
            assert SweepRunner(
                suite, store, shard=ShardSpec(index, 2), **kwargs
            ).run().ok
            shard_paths.append(store.path)

        merged = tmp_path / "merged" / "results.jsonl"
        report = merge_result_files(shard_paths, merged)
        assert report.ok
        assert _canonical(ResultStore.from_path(merged).records()) == _canonical(
            whole.records()
        )

    def test_report_identical_across_paths(self, suite_name, tmp_path, capsys):
        for index in range(2):
            assert main([
                "run", suite_name, "--smoke", "--jobs", "1", "--quiet",
                "--shard", f"{index}/2", "--out", str(tmp_path / f"s{index}"),
            ]) == 0
        assert main([
            "run", suite_name, "--smoke", "--jobs", "1", "--quiet",
            "--out", str(tmp_path / "whole"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "merge", "--out", str(tmp_path / "merged" / "results.jsonl"),
            str(tmp_path / "s0" / "results.jsonl"),
            str(tmp_path / "s1" / "results.jsonl"),
        ]) == 0
        capsys.readouterr()
        # Wall-clock means are nondeterministic, so compare the scaling
        # table, fits and betas — everything the report derives from the
        # semantic record fields — rather than the rendered text.
        merged = build_report(
            ResultStore(tmp_path / "merged").records()
        )
        whole = build_report(ResultStore(tmp_path / "whole").records())
        assert merged.scaling.to_json() == whole.scaling.to_json()
        assert merged.fits.to_json() == whole.fits.to_json()
        assert merged.betas == whole.betas
        if suite_name == "charged":
            assert any(
                column.endswith(" [charged]") for column in merged.scaling.columns
            )


class TestWorkerPoolRunsNewSuites:
    """The warm pool executes charged and list-variant cells through the
    same run_cell path as the plain runner — same records, same charges."""

    @pytest.mark.parametrize("suite_name", ["charged", "orientation-lists"])
    def test_pool_matches_runner_records(self, suite_name, tmp_path):
        suite = get_suite(suite_name)
        runner_store = ResultStore(tmp_path / "runner")
        assert SweepRunner(suite, runner_store, jobs=1, smoke=True).run().ok

        pool_store = ResultStore(tmp_path / "pool")
        with WorkerPool(workers=2, batch_size=4) as pool:
            report = pool.run_suite(suite, pool_store, smoke=True)
        assert report.ok
        assert _canonical(pool_store.records()) == _canonical(
            runner_store.records()
        )
        if suite_name == "charged":
            assert any(
                record.get("charged_rounds") for record in pool_store.records()
            )


class TestChargedReportAcceptance:
    def test_run_charged_smoke_then_report_emits_both_columns(
        self, tmp_path, capsys
    ):
        """The acceptance criterion, verbatim: run charged --smoke … report
        emits scaling tables with both rounds and charged_rounds columns."""
        out = str(tmp_path / "results")
        assert main([
            "run", "charged", "--smoke", "--jobs", "1", "--quiet", "--out", out
        ]) == 0
        assert main([
            "run", "orientation-lists", "--smoke", "--jobs", "1", "--quiet",
            "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main(["report", "--out", out]) == 0
        rendered = capsys.readouterr().out
        assert "edge-coloring/charged-tree" in rendered
        assert "edge-coloring/charged-tree [charged]" in rendered
        assert "sinkless-orientation/grid" in rendered
        assert "charged (mean)" in rendered  # per-scenario detail column
        assert "Theorem 3 shape" in rendered

    def test_progress_line_shows_the_charge(self, tmp_path, capsys):
        assert main([
            "run", "charged", "--smoke", "--jobs", "1",
            "--sizes", "40", "--seeds", "1", "--out", str(tmp_path / "r"),
        ]) == 0
        out = capsys.readouterr().out
        assert "charged=" in out
