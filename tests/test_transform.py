"""Integration tests for the transformation pipelines (Theorems 12 and 15)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DegPlusOneColoringAlgorithm,
    EdgeColoringAlgorithm,
    MISAlgorithm,
    MaximalMatchingAlgorithm,
    OracleCostModel,
)
from repro.core import solve_on_bounded_arboricity, solve_on_tree
from repro.core.complexity import polylog
from repro.generators import (
    balanced_regular_tree,
    caterpillar,
    forest_union,
    grid_graph,
    path_graph,
    planar_triangulation_like,
    random_tree,
    spider,
    star_graph,
)
from repro.problems.classic import (
    is_deg_plus_one_coloring,
    is_edge_degree_plus_one_coloring,
    is_maximal_independent_set,
    is_maximal_matching,
)

TREES = {
    "path": path_graph(60),
    "star": star_graph(30),
    "balanced": balanced_regular_tree(3, 5),
    "caterpillar": caterpillar(20, 3),
    "spider": spider(8, 6),
    "random-150": random_tree(150, seed=1),
    "random-400": random_tree(400, seed=2),
}


@pytest.mark.parametrize("name", sorted(TREES))
class TestTheorem12OnTrees:
    def test_mis(self, name):
        tree = TREES[name]
        result = solve_on_tree(tree, MISAlgorithm())
        assert result.verification.ok, result.verification.summary()
        assert is_maximal_independent_set(tree, result.classic)

    def test_deg_plus_one_coloring(self, name):
        tree = TREES[name]
        result = solve_on_tree(tree, DegPlusOneColoringAlgorithm())
        assert result.verification.ok, result.verification.summary()
        assert is_deg_plus_one_coloring(tree, result.classic)

    def test_round_breakdown_structure(self, name):
        tree = TREES[name]
        result = solve_on_tree(tree, MISAlgorithm())
        breakdown = result.ledger.breakdown()
        assert "decomposition" in breakdown
        assert result.rounds == sum(breakdown.values())
        assert result.details["compressed_nodes"] + result.details["raked_nodes"] == (
            tree.number_of_nodes()
        )

    def test_lemma_10_respected_inside_pipeline(self, name):
        tree = TREES[name]
        result = solve_on_tree(tree, MISAlgorithm())
        assert result.details["compressed_underlying_degree"] <= result.k


@pytest.mark.parametrize("name", sorted(TREES))
class TestTheorem15OnTrees:
    def test_edge_coloring(self, name):
        tree = TREES[name]
        result = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
        assert result.verification.ok, result.verification.summary()
        assert is_edge_degree_plus_one_coloring(tree, dict(result.classic))

    def test_maximal_matching(self, name):
        tree = TREES[name]
        result = solve_on_bounded_arboricity(tree, 1, MaximalMatchingAlgorithm())
        assert result.verification.ok, result.verification.summary()
        assert is_maximal_matching(tree, [tuple(e) for e in result.classic])

    def test_lemma_14_respected_inside_pipeline(self, name):
        tree = TREES[name]
        result = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
        assert result.details["typical_underlying_degree"] <= result.k
        total_edges = result.details["typical_edges"] + result.details["atypical_edges"]
        assert total_edges == tree.number_of_edges()


BOUNDED_ARBORICITY = {
    "two-forests": (forest_union(120, 2, seed=4), 2),
    "three-forests": (forest_union(100, 3, seed=5), 3),
    "grid": (grid_graph(8, 10), 2),
    "planar": (planar_triangulation_like(90, seed=6), 3),
}


@pytest.mark.parametrize("name", sorted(BOUNDED_ARBORICITY))
class TestTheorem15OnBoundedArboricity:
    def test_edge_coloring(self, name):
        graph, arboricity = BOUNDED_ARBORICITY[name]
        result = solve_on_bounded_arboricity(graph, arboricity, EdgeColoringAlgorithm())
        assert result.verification.ok, result.verification.summary()
        assert is_edge_degree_plus_one_coloring(graph, dict(result.classic))

    def test_maximal_matching(self, name):
        graph, arboricity = BOUNDED_ARBORICITY[name]
        result = solve_on_bounded_arboricity(graph, arboricity, MaximalMatchingAlgorithm())
        assert result.verification.ok, result.verification.summary()
        assert is_maximal_matching(graph, [tuple(e) for e in result.classic])

    def test_star_phase_cost_scales_with_arboricity(self, name):
        graph, arboricity = BOUNDED_ARBORICITY[name]
        result = solve_on_bounded_arboricity(graph, arboricity, EdgeColoringAlgorithm())
        stars = result.ledger.breakdown()["star collections (gather & solve)"]
        assert stars >= 2 * 6 * arboricity


class TestTransformOptions:
    def test_explicit_k_override(self):
        tree = random_tree(200, seed=7)
        low_k = solve_on_tree(tree, MISAlgorithm(), k=2)
        high_k = solve_on_tree(tree, MISAlgorithm(), k=12)
        assert low_k.verification.ok and high_k.verification.ok
        assert low_k.k == 2 and high_k.k == 12
        # A larger cut-off means fewer peeling iterations.
        assert high_k.details["iterations"] <= low_k.details["iterations"]

    def test_cost_model_charges_analytic_rounds(self):
        tree = random_tree(300, seed=8)
        model = OracleCostModel("bbko22b", polylog(12))
        result = solve_on_bounded_arboricity(
            tree, 1, EdgeColoringAlgorithm(), cost_model=model
        )
        assert result.verification.ok
        assert result.algorithm_rounds_charged is not None
        assert result.charged_rounds is not None
        assert result.charged_rounds == (
            result.rounds
            - result.algorithm_rounds_measured
            + result.algorithm_rounds_charged
        )

    def test_no_cost_model_means_no_charged_rounds(self):
        tree = random_tree(50, seed=9)
        result = solve_on_tree(tree, MISAlgorithm())
        assert result.charged_rounds is None

    def test_rho_affects_k(self):
        tree = random_tree(200, seed=10)
        model = OracleCostModel("bbko22b", polylog(2))
        rho_one = solve_on_bounded_arboricity(
            tree, 1, EdgeColoringAlgorithm(), rho=1, cost_model=model
        )
        rho_three = solve_on_bounded_arboricity(
            tree, 1, EdgeColoringAlgorithm(), rho=3, cost_model=model
        )
        assert rho_one.verification.ok and rho_three.verification.ok
        assert rho_three.k >= rho_one.k

    def test_empty_and_singleton_graphs(self):
        empty = nx.Graph()
        assert solve_on_tree(empty, MISAlgorithm()).rounds == 0
        assert solve_on_bounded_arboricity(empty, 1, EdgeColoringAlgorithm()).rounds == 0
        single = nx.Graph()
        single.add_node(0)
        result = solve_on_tree(single, MISAlgorithm())
        assert result.verification.ok
        assert result.classic == {0}
        result_edge = solve_on_bounded_arboricity(single, 1, EdgeColoringAlgorithm())
        assert result_edge.verification.ok

    def test_two_node_tree(self):
        tree = nx.path_graph(2)
        mis = solve_on_tree(tree, MISAlgorithm())
        assert is_maximal_independent_set(tree, mis.classic)
        matching = solve_on_bounded_arboricity(tree, 1, MaximalMatchingAlgorithm())
        assert is_maximal_matching(tree, [tuple(e) for e in matching.classic])


class TestRoundScaling:
    """Coarse sanity check of the round accounting: the decomposition phase
    grows with log n while the A-phase depends on k (not on n)."""

    def test_decomposition_rounds_grow_slowly(self):
        small = solve_on_tree(random_tree(100, seed=11), MISAlgorithm(), k=2)
        large = solve_on_tree(random_tree(3000, seed=11), MISAlgorithm(), k=2)
        assert large.ledger.breakdown()["decomposition"] <= (
            3 * small.ledger.breakdown()["decomposition"]
        )

    def test_algorithm_phase_depends_on_k_not_n(self):
        small = solve_on_tree(random_tree(200, seed=12), DegPlusOneColoringAlgorithm(), k=3)
        large = solve_on_tree(random_tree(2000, seed=12), DegPlusOneColoringAlgorithm(), k=3)
        small_a = small.ledger.breakdown().get("truly-local algorithm A", 0)
        large_a = large.ledger.breakdown().get("truly-local algorithm A", 0)
        assert abs(large_a - small_a) <= 8


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=3000))
def test_property_pipelines_produce_valid_solutions(n, seed):
    tree = random_tree(n, seed=seed)
    mis = solve_on_tree(tree, MISAlgorithm())
    assert mis.verification.ok
    assert is_maximal_independent_set(tree, mis.classic)
    colouring = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
    assert colouring.verification.ok
    assert is_edge_degree_plus_one_coloring(tree, dict(colouring.classic))
