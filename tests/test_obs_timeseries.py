"""Unit suite for the time-series telemetry layer: the scrape-history
ring buffer (retention, spill, the background scraper), PromQL-style
window queries (increase/rate/delta and the windowed histogram
quantile) and the dual-window SLO burn-rate evaluation."""

import json
import math
import time

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Sample
from repro.obs.slo import (
    SLOBurnResult,
    Window,
    evaluate_slos,
    evaluate_slos_windowed,
)
from repro.obs.timeseries import (
    MAX_HISTORY_POINTS_PER_RESPONSE,
    ScrapeHistory,
    ScrapePoint,
    counter_increase,
    counter_rate,
    gauge_delta,
    load_history_jsonl,
    parse_duration,
    points_from_payload,
    points_in_window,
    windowed_quantile,
)


def sample(name, value, **labels):
    return Sample(name=name, labels=tuple(labels.items()), value=value)


def point(unix_s, *samples):
    return ScrapePoint.from_samples(unix_s, samples)


class TestScrapePoint:
    def test_record_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "x").inc(3)
        original = ScrapeHistory(registry, interval_s=5.0).snapshot(now=12.5)
        restored = ScrapePoint.from_record(original.to_record())
        assert restored.unix_s == 12.5
        assert restored.samples == original.samples

    def test_samples_parse_lazily_from_text(self):
        p = ScrapePoint(1.0, "# TYPE t_total counter\nt_total 4\n")
        assert p.samples == (sample("t_total", 4.0),)


class TestScrapeHistory:
    def test_ring_buffer_drops_oldest_beyond_capacity(self):
        registry = MetricsRegistry()
        history = ScrapeHistory(registry, interval_s=5.0, capacity=3)
        for t in range(5):
            history.snapshot(now=float(t))
        assert len(history) == 3
        assert [p.unix_s for p in history.points()] == [2.0, 3.0, 4.0]

    def test_spill_file_round_trips_through_loader(self, tmp_path):
        spill = tmp_path / "hist.jsonl"
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "x")
        history = ScrapeHistory(registry, interval_s=5.0, spill_path=spill)
        history.snapshot(now=10.0)
        counter.inc()
        history.snapshot(now=20.0)
        points = load_history_jsonl(spill)
        assert [p.unix_s for p in points] == [10.0, 20.0]
        assert counter_increase(points, "t_total") == 1.0

    def test_payload_window_and_cap(self):
        registry = MetricsRegistry()
        history = ScrapeHistory(registry, interval_s=1.0, capacity=500)
        for t in range(10):
            history.snapshot(now=float(t))
        payload = history.payload(window_s=4.0, now=9.0)
        assert payload["retained"] == 10
        assert not payload["truncated"]
        assert [p["unix_s"] for p in payload["points"]] == [5.0, 6, 7, 8, 9]
        capped = history.payload(max_points=3, now=9.0)
        assert capped["truncated"]
        # The cap keeps the most recent points: "now" always survives.
        assert [p["unix_s"] for p in capped["points"]] == [7.0, 8.0, 9.0]

    def test_payload_never_exceeds_the_response_cap(self):
        registry = MetricsRegistry()
        history = ScrapeHistory(registry, interval_s=1.0, capacity=500)
        for t in range(MAX_HISTORY_POINTS_PER_RESPONSE + 40):
            history.snapshot(now=float(t))
        payload = history.payload(max_points=10_000)
        assert len(payload["points"]) == MAX_HISTORY_POINTS_PER_RESPONSE
        assert payload["truncated"]

    def test_background_scraper_snapshots_and_stops(self):
        registry = MetricsRegistry()
        history = ScrapeHistory(registry, interval_s=0.02)
        history.start()
        try:
            deadline = time.monotonic() + 5.0
            while len(history) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(history) >= 3
        finally:
            history.stop()
        settled = len(history)
        time.sleep(0.1)
        assert len(history) == settled  # stop() really stops the thread
        history.stop()  # idempotent

    def test_disabled_interval_refuses_to_start(self):
        history = ScrapeHistory(MetricsRegistry(), interval_s=0.0)
        with pytest.raises(ValueError):
            history.start()


class TestWindowSelection:
    def test_window_is_trailing_and_inclusive(self):
        points = [point(float(t)) for t in (0, 10, 20, 30)]
        assert [p.unix_s for p in points_in_window(points, 20.0)] == [10, 20, 30]
        assert [p.unix_s for p in points_in_window(points, None)] == [0, 10, 20, 30]

    def test_explicit_now_shifts_the_window(self):
        points = [point(float(t)) for t in (0, 10, 20, 30)]
        assert [p.unix_s for p in points_in_window(points, 12.0, now=20.0)] == [
            10,
            20,
        ]

    def test_payload_round_trip(self):
        points = [point(1.0, sample("t_total", 2))]
        payload = {"points": [p.to_record() for p in points]}
        restored = points_from_payload(payload)
        assert restored[0].samples == points[0].samples


class TestCounterQueries:
    def test_increase_and_rate(self):
        points = [
            point(0.0, sample("t_total", 10)),
            point(50.0, sample("t_total", 30)),
            point(100.0, sample("t_total", 40)),
        ]
        assert counter_increase(points, "t_total") == 30.0
        assert counter_rate(points, "t_total") == pytest.approx(0.3)
        assert counter_increase(points, "t_total", window_s=50.0) == 10.0

    def test_fewer_than_two_points_is_none(self):
        assert counter_increase([point(0.0, sample("t_total", 5))], "t_total") is None
        assert counter_rate([], "t_total") is None

    def test_reset_mid_window_is_none(self):
        points = [
            point(0.0, sample("t_total", 50)),
            point(60.0, sample("t_total", 3)),
        ]
        assert counter_increase(points, "t_total") is None

    def test_series_born_mid_window_counts_from_zero(self):
        points = [point(0.0), point(60.0, sample("t_total", 7))]
        assert counter_increase(points, "t_total") == 7.0

    def test_series_absent_at_window_end_is_none(self):
        points = [point(0.0, sample("t_total", 7)), point(60.0)]
        assert counter_increase(points, "t_total") is None

    def test_label_subset_pools_matching_series(self):
        points = [
            point(0.0, sample("t_total", 1, fate="a"), sample("t_total", 2, fate="b")),
            point(60.0, sample("t_total", 5, fate="a"), sample("t_total", 2, fate="b")),
        ]
        assert counter_increase(points, "t_total") == 4.0
        assert counter_increase(points, "t_total", fate="a") == 4.0
        assert counter_increase(points, "t_total", fate="b") == 0.0


class TestGaugeQueries:
    def test_delta_can_be_negative(self):
        points = [point(0.0, sample("depth", 9)), point(60.0, sample("depth", 4))]
        assert gauge_delta(points, "depth") == -5.0

    def test_absent_endpoint_is_none(self):
        points = [point(0.0), point(60.0, sample("depth", 4))]
        assert gauge_delta(points, "depth") is None


class TestWindowedQuantile:
    @staticmethod
    def histogram_point(unix_s, le_counts, **labels):
        return point(
            unix_s,
            *(
                sample("lat_bucket", count, le=le, **labels)
                for le, count in le_counts.items()
            ),
        )

    def test_quantile_over_bucket_deltas(self):
        points = [
            self.histogram_point(0.0, {"1": 100, "2": 100, "+Inf": 100}),
            # Only the window's 10 new observations land in (1, 2]; the
            # cumulative quantile over the end scrape alone would be
            # dominated by the 100 old sub-1.0 observations.
            self.histogram_point(60.0, {"1": 100, "2": 110, "+Inf": 110}),
        ]
        assert windowed_quantile(points, "lat", 0.5) == pytest.approx(1.5)

    def test_no_new_observations_is_none(self):
        points = [
            self.histogram_point(0.0, {"1": 5, "+Inf": 5}),
            self.histogram_point(60.0, {"1": 5, "+Inf": 5}),
        ]
        assert windowed_quantile(points, "lat", 0.99) is None

    def test_bucket_reset_is_none(self):
        points = [
            self.histogram_point(0.0, {"1": 5, "+Inf": 5}),
            self.histogram_point(60.0, {"1": 2, "+Inf": 2}),
        ]
        assert windowed_quantile(points, "lat", 0.5) is None

    def test_bucket_born_mid_window_counts_from_zero(self):
        points = [
            point(0.0),
            self.histogram_point(60.0, {"1": 4, "+Inf": 4}),
        ]
        assert windowed_quantile(points, "lat", 0.5) == pytest.approx(0.5)


class TestParseDuration:
    def test_suffixes(self):
        assert parse_duration("90s") == 90.0
        assert parse_duration("5m") == 300.0
        assert parse_duration("1h") == 3600.0
        assert parse_duration("2d") == 172800.0
        assert parse_duration("45") == 45.0
        assert parse_duration("1.5m") == 90.0

    def test_rejects_garbage_and_nonpositive(self):
        for bad in ("", "5x", "-3m", "0", "0s", "m"):
            with pytest.raises(ValueError):
                parse_duration(bad)


class TestHistoryLoader:
    def test_bad_record_names_path_and_line(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"unix_s": 1, "metrics": ""}\nnot json\n')
        with pytest.raises(ValueError) as excinfo:
            load_history_jsonl(path)
        assert "hist.jsonl" in str(excinfo.value)
        assert "2" in str(excinfo.value)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps({"unix_s": 3, "metrics": ""}) + "\n\n")
        assert [p.unix_s for p in load_history_jsonl(path)] == [3.0]


class TestWindowedSLOs:
    @staticmethod
    def ingest_points(values, step_s=60.0):
        return [
            point(index * step_s, sample("collector_records_ingested_total", value))
            for index, value in enumerate(values)
        ]

    def test_burning_needs_both_windows(self):
        # Drops grew only in the distant past: the slow window sees the
        # increase, the fast window (which starts after it) does not —
        # and a fast-only or slow-only failure must not page.
        points = [
            point(0.0, sample("collector_records_total", 0, fate="dropped")),
            point(100.0, sample("collector_records_total", 3, fate="dropped")),
            point(4000.0, sample("collector_records_total", 3, fate="dropped")),
        ]
        results = {
            r.name: r
            for r in evaluate_slos_windowed(
                points, fast_window_s=300.0, slow_window_s=4000.0
            )
        }
        result = results["zero-dropped-records"]
        assert isinstance(result, SLOBurnResult)
        assert not result.slow.ok  # the slow window does see the growth
        assert result.fast.ok  # ...but the fast window does not
        assert not result.burning

    def test_sustained_burn_fires(self):
        points = [
            point(0.0, sample("collector_records_total", 0, fate="dropped")),
            point(100.0, sample("collector_records_total", 3, fate="dropped")),
            point(200.0, sample("collector_records_total", 6, fate="dropped")),
        ]
        results = {
            r.name: r
            for r in evaluate_slos_windowed(
                points, fast_window_s=150.0, slow_window_s=300.0
            )
        }
        assert results["zero-dropped-records"].burning
        assert results["zero-dropped-records"].status == "BURNING"

    def test_ingest_stall_burns_only_with_prior_traffic(self):
        stalled = self.ingest_points([10, 10, 10])
        results = {r.name: r for r in evaluate_slos_windowed(stalled)}
        assert results["ingest-not-stalled"].burning

        flowing = self.ingest_points([10, 15, 20])
        results = {r.name: r for r in evaluate_slos_windowed(flowing)}
        assert not results["ingest-not-stalled"].burning

        # A collector that never saw a record is idle, not stalled.
        idle = self.ingest_points([0, 0, 0])
        results = {r.name: r for r in evaluate_slos_windowed(idle)}
        assert not results["ingest-not-stalled"].burning
        assert results["ingest-not-stalled"].no_data

    def test_slow_window_must_cover_fast(self):
        with pytest.raises(ValueError):
            evaluate_slos_windowed(
                self.ingest_points([1, 2]), fast_window_s=600.0, slow_window_s=60.0
            )

    def test_single_scrape_is_the_degenerate_window(self):
        # evaluate_slos over raw samples must keep its cumulative
        # semantics: one scrape with dropped records still burns.
        results = {
            r.name: r
            for r in evaluate_slos(
                [sample("collector_records_total", 2, fate="dropped")]
            )
        }
        assert not results["zero-dropped-records"].ok

    def test_window_quantile_matches_module_query(self):
        points = [
            point(
                0.0,
                sample("service_request_seconds_bucket", 0, le="1"),
                sample("service_request_seconds_bucket", 0, le="+Inf"),
            ),
            point(
                300.0,
                sample("service_request_seconds_bucket", 40, le="1"),
                sample("service_request_seconds_bucket", 40, le="+Inf"),
            ),
        ]
        window = Window(points)
        assert window.is_windowed
        assert window.quantile(0.99, "service_request_seconds") == pytest.approx(
            windowed_quantile(points, "service_request_seconds", 0.99)
        )
