"""Engine policy and backend registry: what happens when numpy is gone.

The vectorized engine is a preference, not a dependency — a
numpy-free interpreter must degrade every family-pinned or auto cell
to the interpreted engine with identical semantic results, and only an
*explicit* ``engine="vectorized"`` request may raise
:class:`EngineUnavailable`.  ``array_backend.numpy_available`` is the
single monkeypatch point, and on Linux the fork start method carries
the patch into pool and daemon worker processes, so the whole service
stack can be exercised against a simulated numpy-free interpreter.
"""

import socket

import pytest

from repro.baselines.linial import LinialColoring, linial_coloring
from repro.baselines.mis import maximal_independent_set
from repro.decomposition import rake_and_compress
from repro.experiments import ResultStore, ScenarioSpec, Suite, SweepRunner
from repro.experiments.runner import run_cell
from repro.generators import random_tree
from repro.local import (
    EnginePolicy,
    EngineUnavailable,
    Network,
    available_backends,
    get_backend,
    numpy_available,
    run_synchronous,
    run_vectorized,
    select_engine,
    use_vectorized,
)
from repro.local import array_backend

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="requires the numpy array backend"
)

DEGRADE_SUITE = Suite(
    name="degrade-tiny",
    description="test suite: families that pin the vectorized engine",
    scenarios=(
        ScenarioSpec(
            name="linial/tree", generator="random-tree",
            algorithm="baseline-linial", sizes=(24,), seeds=(1,),
        ),
        ScenarioSpec(
            name="mis/tree", generator="random-tree",
            algorithm="baseline-mis", sizes=(24,), seeds=(1,),
        ),
    ),
)


class TestBackendRegistry:
    @requires_numpy
    def test_default_backend_is_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert get_backend("numpy") is backend
        assert "numpy" in available_backends()

    def test_unknown_backend_names_the_available_ones(self):
        with pytest.raises(KeyError, match="no-such-backend"):
            get_backend("no-such-backend")

    def test_register_backend_refuses_silent_overwrite(self):
        class FirstBackend:
            name = "collision-test"

        class SecondBackend:
            name = "collision-test"

        first = FirstBackend()
        second = SecondBackend()
        try:
            array_backend.register_backend(first)
            with pytest.raises(ValueError, match="FirstBackend.*SecondBackend"):
                array_backend.register_backend(second)
            assert get_backend("collision-test") is first
            # re-registering the same object is idempotent, not a clash
            array_backend.register_backend(first)
            array_backend.register_backend(second, replace=True)
            assert get_backend("collision-test") is second
        finally:
            array_backend._BACKENDS.pop("collision-test", None)


@pytest.fixture()
def no_numpy(monkeypatch):
    """Simulate a numpy-free interpreter for this test (and its forks)."""
    monkeypatch.setattr(array_backend, "numpy_available", lambda: False)


class TestNumpyAbsentDegradation:
    def test_availability_funnels_through_array_backend(self, no_numpy):
        assert not numpy_available()
        assert not use_vectorized("auto")

    def test_select_engine_auto_degrades_to_interpreted(self, no_numpy):
        algorithm = LinialColoring()
        assert select_engine(algorithm) is run_synchronous
        assert select_engine(algorithm, engine="auto") is run_synchronous

    def test_explicit_vectorized_still_raises(self, no_numpy):
        algorithm = LinialColoring()
        with pytest.raises(EngineUnavailable, match="requires numpy"):
            select_engine(algorithm, engine="vectorized")
        with pytest.raises(EngineUnavailable, match="requires numpy"):
            run_vectorized(Network(random_tree(8, seed=1)), algorithm)

    def test_baseline_entry_points_still_run(self, no_numpy):
        tree = random_tree(40, seed=2)
        colours, _, _ = linial_coloring(tree)
        assert len(colours) == 40
        mis = maximal_independent_set(tree)
        assert mis.independent_set
        with EnginePolicy("auto") as policy:
            decomposition = rake_and_compress(tree, k=3)
        assert decomposition.layers
        assert policy.engine_used == "interpreted"

    def test_run_cell_degrades_family_pinned_vectorized(self, no_numpy):
        cell = next(
            c for c in DEGRADE_SUITE.cells() if c.algorithm == "baseline-mis"
        )
        result = run_cell(DEGRADE_SUITE.name, cell)
        assert result.verified
        assert result.engine == "interpreted"
        assert result.engine_rounds
        assert all(
            key.startswith("interpreted/") and key.endswith("/-")
            for key in result.engine_rounds
        )

    def test_sweep_runner_degrades_whole_suite(self, no_numpy, tmp_path):
        store = ResultStore(tmp_path)
        report = SweepRunner(DEGRADE_SUITE, store, jobs=1).run()
        assert report.ok
        results = store.results()
        assert len(results) == len(DEGRADE_SUITE.cells())
        assert all(result.engine == "interpreted" for result in results)

    def test_worker_pool_degrades_forked_workers(self, no_numpy, tmp_path):
        from repro.service import WorkerPool

        store = ResultStore(tmp_path)
        with WorkerPool(workers=2, batch_size=2) as pool:
            report = pool.run_suite(DEGRADE_SUITE, store)
        assert report.ok
        assert all(result.engine == "interpreted" for result in store.results())

    @pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
    )
    def test_daemon_submit_degrades_and_ticks_interpreted_counters(
        self, no_numpy, tmp_path
    ):
        from repro.obs import parse_exposition
        from repro.obs.metrics import samples_named
        from repro.service import ServiceClient, SweepDaemon

        daemon = SweepDaemon(
            socket_path=tmp_path / "svc.sock", workers=2, batch_size=4
        )
        daemon.start()
        try:
            client = ServiceClient(daemon.socket_path)
            job = client.submit(
                "paper-claims", smoke=True, out=str(tmp_path / "store")
            )
            status = client.wait(job, timeout=120)
            assert status["state"] == "done"
            assert not status["failures"]
            engines = {
                record.get("engine") for record in client.results(job)
            }
            assert engines <= {"interpreted", None}
            samples = samples_named(
                parse_exposition(client.metrics()), "engine_rounds_total"
            )
            assert samples
            assert all(
                sample.label("engine") == "interpreted"
                and sample.label("backend") == "-"
                for sample in samples
            )
        finally:
            daemon.close()


class TestEngineRoundsProvenance:
    @requires_numpy
    def test_run_cell_records_backend_and_kernel_rounds(self):
        cell = next(
            c for c in DEGRADE_SUITE.cells() if c.algorithm == "baseline-linial"
        )
        result = run_cell(DEGRADE_SUITE.name, cell)
        assert result.engine == "vectorized[numpy]"
        assert result.engine_rounds
        assert any(
            key.startswith("vectorized/linial/numpy")
            for key in result.engine_rounds
        )

    @requires_numpy
    def test_engine_rounds_survive_the_store_round_trip(self, tmp_path):
        cell = DEGRADE_SUITE.cells()[0]
        result = run_cell(DEGRADE_SUITE.name, cell)
        store = ResultStore(tmp_path)
        store.append(result)
        loaded = ResultStore(tmp_path).results()
        assert [r.engine_rounds for r in loaded] == [result.engine_rounds]
