"""Tests for the SLOCAL(1) view of classes P1/P2 and for sinkless orientation."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slocal import (
    P1_ORACLES,
    P2_ORACLES,
    SLocalError,
    coloring_oracle,
    edge_coloring_oracle,
    matching_oracle,
    membership_class,
    mis_oracle,
    solve_edge_sequential,
    solve_node_sequential,
)
from repro.generators import balanced_regular_tree, random_tree
from repro.problems import (
    DegreePlusOneColoring,
    EdgeDegreePlusOneEdgeColoring,
    MaximalIndependentSetProblem,
    MaximalMatchingProblem,
    verify_solution,
)
from repro.problems.classic import (
    is_deg_plus_one_coloring,
    is_edge_degree_plus_one_coloring,
    is_maximal_independent_set,
    is_maximal_matching,
)
from repro.problems.sinkless_orientation import (
    IN,
    OUT,
    SinklessOrientationProblem,
    greedy_sinkless_orientation,
    is_sinkless_orientation,
)
from repro.semigraph import HalfEdge, HalfEdgeLabeling, semigraph_from_graph

MIS = MaximalIndependentSetProblem()
COLORING = DegreePlusOneColoring()
MATCHING = MaximalMatchingProblem()
EDGE_COLORING = EdgeDegreePlusOneEdgeColoring()


def shuffled(items, seed):
    items = sorted(items, key=repr)
    random.Random(seed).shuffle(items)
    return items


class TestP1Solvers:
    """MIS and (deg+1)-colouring admit 1-hop sequential solvers (class P1)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mis_under_adversarial_orders(self, seed):
        graph = random_tree(60, seed=5)
        semigraph = semigraph_from_graph(graph)
        order = shuffled(semigraph.nodes, seed)
        labeling = solve_node_sequential(semigraph, mis_oracle, order=order)
        assert verify_solution(MIS, semigraph, labeling).ok
        assert is_maximal_independent_set(graph, MIS.to_classic(semigraph, labeling))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_coloring_under_adversarial_orders(self, seed):
        graph = balanced_regular_tree(4, 4)
        semigraph = semigraph_from_graph(graph)
        order = shuffled(semigraph.nodes, seed)
        labeling = solve_node_sequential(semigraph, coloring_oracle, order=order)
        assert verify_solution(COLORING, semigraph, labeling).ok
        assert is_deg_plus_one_coloring(graph, COLORING.to_classic(semigraph, labeling))

    def test_works_on_general_graphs_too(self):
        graph = nx.complete_graph(6)
        semigraph = semigraph_from_graph(graph)
        labeling = solve_node_sequential(semigraph, coloring_oracle)
        assert verify_solution(COLORING, semigraph, labeling).ok

    def test_partial_solution_is_respected(self):
        # Pre-colour one node and let the sequential solver complete the rest.
        graph = nx.path_graph(5)
        semigraph = semigraph_from_graph(graph)
        partial = HalfEdgeLabeling()
        for edge in semigraph.incident_edges(2):
            partial.assign(HalfEdge(2, edge), 3)
        labeling = solve_node_sequential(semigraph, coloring_oracle, partial=partial)
        assert labeling[HalfEdge(2, next(iter(semigraph.incident_edges(2))))] == 3
        assert verify_solution(COLORING, semigraph, labeling).ok

    def test_order_must_cover_all_nodes(self):
        semigraph = semigraph_from_graph(nx.path_graph(3))
        with pytest.raises(ValueError):
            solve_node_sequential(semigraph, mis_oracle, order=[0, 1])

    def test_incomplete_oracle_rejected(self):
        semigraph = semigraph_from_graph(nx.path_graph(3))
        with pytest.raises(SLocalError):
            solve_node_sequential(semigraph, lambda view: {})


class TestP2Solvers:
    """Maximal matching and edge colouring admit 1-hop edge-sequential solvers."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matching_under_adversarial_orders(self, seed):
        graph = random_tree(60, seed=6)
        semigraph = semigraph_from_graph(graph)
        order = shuffled(semigraph.edges, seed)
        labeling = solve_edge_sequential(semigraph, matching_oracle, order=order)
        assert verify_solution(MATCHING, semigraph, labeling).ok
        matching = [tuple(e) for e in MATCHING.to_classic(semigraph, labeling)]
        assert is_maximal_matching(graph, matching)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_edge_coloring_under_adversarial_orders(self, seed):
        graph = random_tree(60, seed=7)
        semigraph = semigraph_from_graph(graph)
        order = shuffled(semigraph.edges, seed)
        labeling = solve_edge_sequential(semigraph, edge_coloring_oracle, order=order)
        assert verify_solution(EDGE_COLORING, semigraph, labeling).ok
        colours = EDGE_COLORING.to_classic(semigraph, labeling)
        assert is_edge_degree_plus_one_coloring(graph, colours)

    def test_edge_coloring_on_general_graphs(self):
        graph = nx.complete_graph(5)
        semigraph = semigraph_from_graph(graph)
        labeling = solve_edge_sequential(semigraph, edge_coloring_oracle)
        assert verify_solution(EDGE_COLORING, semigraph, labeling).ok

    def test_membership_registry(self):
        assert membership_class(MIS) == "P1"
        assert membership_class(COLORING) == "P1"
        assert membership_class(MATCHING) == "P2"
        assert membership_class(EDGE_COLORING) == "P2"
        assert membership_class(SinklessOrientationProblem()) is None
        assert set(P1_ORACLES) == {"maximal-independent-set", "(deg+1)-coloring"}
        assert set(P2_ORACLES) == {"maximal-matching", "(edge-degree+1)-edge-coloring"}


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=2000),
    st.integers(min_value=0, max_value=100),
)
def test_property_p1_p2_oracles_valid_for_random_orders(n, tree_seed, order_seed):
    graph = random_tree(n, seed=tree_seed)
    semigraph = semigraph_from_graph(graph)
    node_order = shuffled(semigraph.nodes, order_seed)
    edge_order = shuffled(semigraph.edges, order_seed)
    mis_labeling = solve_node_sequential(semigraph, mis_oracle, order=node_order)
    assert verify_solution(MIS, semigraph, mis_labeling).ok
    matching_labeling = solve_edge_sequential(semigraph, matching_oracle, order=edge_order)
    assert verify_solution(MATCHING, semigraph, matching_labeling).ok


class TestSinklessOrientation:
    PROBLEM = SinklessOrientationProblem()

    def test_node_constraint(self):
        assert self.PROBLEM.node_config_ok((OUT, IN, IN))
        assert not self.PROBLEM.node_config_ok((IN, IN, IN))
        assert self.PROBLEM.node_config_ok((IN, IN))  # degree 2 < 3: unconstrained
        assert self.PROBLEM.node_config_ok(())
        assert not self.PROBLEM.node_config_ok(("X",))

    def test_edge_constraint(self):
        assert self.PROBLEM.edge_config_ok((IN, OUT), 2)
        assert not self.PROBLEM.edge_config_ok((OUT, OUT), 2)
        assert not self.PROBLEM.edge_config_ok((IN, IN), 2)
        assert self.PROBLEM.edge_config_ok((OUT,), 1)
        assert self.PROBLEM.edge_config_ok((), 0)

    def test_min_degree_parameter(self):
        problem = SinklessOrientationProblem(min_degree=1)
        assert not problem.node_config_ok((IN,))
        assert problem.node_config_ok((OUT,))
        with pytest.raises(ValueError):
            SinklessOrientationProblem(min_degree=0)

    def test_roundtrip_on_clique(self):
        graph = nx.complete_graph(5)
        semigraph = semigraph_from_graph(graph)
        orientation = greedy_sinkless_orientation(graph)
        assert is_sinkless_orientation(graph, orientation)
        classic = {
            tuple(sorted(edge, key=repr)): tail for edge, tail in orientation.items()
        }
        labeling = self.PROBLEM.from_classic(semigraph, classic)
        assert verify_solution(self.PROBLEM, semigraph, labeling).ok
        assert self.PROBLEM.to_classic(semigraph, labeling) == classic

    @pytest.mark.parametrize(
        "graph",
        [
            nx.cycle_graph(7),
            nx.complete_graph(6),
            balanced_regular_tree(3, 4),
            nx.grid_2d_graph(4, 5),
            nx.petersen_graph(),
        ],
        ids=["cycle", "clique", "tree", "grid", "petersen"],
    )
    def test_greedy_oracle_on_various_graphs(self, graph):
        orientation = greedy_sinkless_orientation(graph)
        assert is_sinkless_orientation(graph, orientation)

    def test_classic_verifier_rejects_sink(self):
        graph = nx.star_graph(3)
        # Every edge oriented towards the centre: the centre (degree 3) is a sink.
        orientation = {(0, leaf): leaf for leaf in (1, 2, 3)}
        assert not is_sinkless_orientation(graph, orientation)

    def test_classic_verifier_rejects_missing_edge(self):
        graph = nx.cycle_graph(4)
        orientation = {(0, 1): 0}
        assert not is_sinkless_orientation(graph, orientation)

    def test_verification_catches_sink_in_labeling(self):
        graph = nx.complete_graph(4)
        semigraph = semigraph_from_graph(graph)
        labeling = HalfEdgeLabeling()
        for edge in semigraph.edges:
            u, v = semigraph.endpoints(edge)
            # Orient every edge towards the lexicographically smaller endpoint:
            # that endpoint collects only IN labels somewhere in the graph.
            tail, head = (u, v) if repr(u) > repr(v) else (v, u)
            labeling.assign(HalfEdge(tail, edge), OUT)
            labeling.assign(HalfEdge(head, edge), IN)
        result = verify_solution(self.PROBLEM, semigraph, labeling)
        assert not result.ok  # node 0 has degree 3 and only incoming edges
