"""Tests for the bounded-arboricity Decomposition (Algorithm 3, Lemmas 13-14)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import arboricity_decomposition
from repro.generators import (
    balanced_regular_tree,
    forest_union,
    grid_graph,
    planar_triangulation_like,
    random_tree,
)
from repro.problems.classic import is_proper_vertex_coloring

INSTANCES = {
    # name: (graph, arboricity bound)
    "random-tree": (random_tree(200, seed=1), 1),
    "balanced-tree": (balanced_regular_tree(4, 4), 1),
    "two-forests": (forest_union(150, 2, seed=2), 2),
    "three-forests": (forest_union(120, 3, seed=3), 3),
    "grid": (grid_graph(10, 12), 2),
    "planar": (planar_triangulation_like(100, seed=4), 3),
}


@pytest.mark.parametrize("name", sorted(INSTANCES))
class TestAlgorithmThree:
    def test_all_nodes_marked(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        marked = set().union(*decomposition.layers) if decomposition.layers else set()
        assert marked == set(graph.nodes())

    def test_lemma_13_iteration_bound(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        assert decomposition.iterations <= decomposition.theoretical_layer_bound()

    def test_lemma_14_typical_degree_bound(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        assert decomposition.typical_max_degree() <= decomposition.k

    def test_atypical_budget(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        assert decomposition.max_atypical_per_lower_endpoint() <= decomposition.b

    def test_edge_partition_is_complete(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        classified = len(decomposition.typical_edges) + len(decomposition.atypical_edges)
        assert classified == graph.number_of_edges()
        assert not (decomposition.typical_edges & decomposition.atypical_edges)

    def test_forests_are_forests_and_cover_atypical_edges(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        covered = set()
        for forest_edges in decomposition.forests:
            if not forest_edges:
                continue
            forest = nx.Graph()
            forest.add_edges_from(forest_edges)
            assert nx.is_forest(forest)
            covered |= set(forest_edges)
        assert covered == decomposition.atypical_edges

    def test_forest_colorings_are_proper(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        for forest_edges, colours in zip(
            decomposition.forests, decomposition.forest_colorings
        ):
            if not forest_edges:
                continue
            forest = nx.Graph()
            forest.add_edges_from(forest_edges)
            assert is_proper_vertex_coloring(forest, colours)
            assert set(colours.values()) <= {1, 2, 3}

    def test_star_collections_are_stars_and_cover_atypical_edges(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        assert decomposition.star_components_are_stars()
        covered = set()
        for edges in decomposition.star_collections.values():
            covered |= set(edges)
        assert covered == decomposition.atypical_edges

    def test_round_accounting(self, name):
        graph, a = INSTANCES[name]
        decomposition = arboricity_decomposition(graph, a, k=5 * a)
        assert decomposition.rounds >= 2 * decomposition.iterations


class TestParameterValidation:
    def test_invalid_arboricity(self):
        with pytest.raises(ValueError):
            arboricity_decomposition(nx.path_graph(3), 0, k=5)

    def test_b_must_exceed_a(self):
        with pytest.raises(ValueError):
            arboricity_decomposition(nx.path_graph(3), 2, k=10, b=2)

    def test_k_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            arboricity_decomposition(nx.path_graph(3), 1, k=1)

    def test_empty_graph(self):
        decomposition = arboricity_decomposition(nx.Graph(), 1, k=5)
        assert decomposition.iterations == 0
        assert decomposition.typical_edges == set()

    def test_wrong_arboricity_bound_makes_no_progress(self):
        # A clique on 8 nodes has arboricity 4; claiming a = 1 with k = 5
        # leaves every node with degree 7 > k, so no node is ever marked.
        with pytest.raises(RuntimeError):
            arboricity_decomposition(nx.complete_graph(8), 1, k=5)

    def test_larger_k_reduces_iterations(self):
        graph = planar_triangulation_like(200, seed=7)
        small = arboricity_decomposition(graph, 3, k=15)
        large = arboricity_decomposition(graph, 3, k=60)
        assert large.iterations <= small.iterations

    def test_atypical_edges_cross_layers(self):
        graph = planar_triangulation_like(150, seed=8)
        decomposition = arboricity_decomposition(graph, 3, k=15)
        for u, v in decomposition.atypical_edges:
            assert decomposition.node_iteration[u] != decomposition.node_iteration[v]


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=5, max_value=60),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1000),
)
def test_property_arboricity_decomposition_invariants(n, a, seed):
    graph = forest_union(n, a, seed=seed)
    decomposition = arboricity_decomposition(graph, a, k=5 * a)
    assert decomposition.typical_max_degree() <= decomposition.k
    assert decomposition.max_atypical_per_lower_endpoint() <= decomposition.b
    assert decomposition.iterations <= decomposition.theoretical_layer_bound()
    assert decomposition.star_components_are_stars()
    total = len(decomposition.typical_edges) + len(decomposition.atypical_edges)
    assert total == graph.number_of_edges()
