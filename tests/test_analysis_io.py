"""Round-trip tests for Measurement / MeasurementTable IO and curve errors."""

import math

import pytest

from repro.analysis import (
    Measurement,
    MeasurementTable,
    fit_power_of_log,
    measurements_from_csv,
    measurements_to_csv,
)


class TestMeasurementJson:
    def test_json_round_trip(self):
        measurement = Measurement(
            "E1", "random-tree", 1000, 12.5, unit="rounds", extras={"seed": 7}
        )
        restored = Measurement.from_json(measurement.to_json())
        assert restored == measurement

    def test_from_dict_defaults(self):
        restored = Measurement.from_dict(
            {"experiment": "E", "instance": "i", "n": 10, "value": 1.0}
        )
        assert restored.unit == "rounds"
        assert restored.extras == {}


class TestMeasurementCsv:
    def test_csv_round_trip(self):
        measurements = [
            Measurement("E1", "random-tree", 100, 12.0, extras={"seed": 1}),
            Measurement("E1", "planar", 250, 31.5, unit="messages"),
        ]
        restored = measurements_from_csv(measurements_to_csv(measurements))
        assert restored == measurements


class TestMeasurementTableIO:
    def make_table(self):
        table = MeasurementTable("Scaling", ["n", "rounds", "status"])
        table.add_row(100, 12.5, "ok")
        table.add_row(1000, 15.0, "ok")
        return table

    def test_json_round_trip(self):
        table = self.make_table()
        restored = MeasurementTable.from_json(table.to_json())
        assert restored.title == table.title
        assert restored.columns == table.columns
        assert restored.rows == table.rows

    def test_csv_round_trip_recovers_numbers(self):
        table = self.make_table()
        restored = MeasurementTable.from_csv(table.to_csv(), title=table.title)
        assert restored.columns == table.columns
        assert restored.rows == table.rows  # ints and floats recovered
        assert restored.render() == table.render()

    def test_csv_of_empty_text_raises(self):
        with pytest.raises(ValueError, match="empty CSV"):
            MeasurementTable.from_csv("")


class TestFitErrorReporting:
    def test_error_names_dropped_points(self):
        with pytest.raises(ValueError) as excinfo:
            fit_power_of_log([1, 10], [5.0, -2.0])
        message = str(excinfo.value)
        assert "need at least two usable data points" in message
        assert "(n=1, value=5.0)" in message
        assert "(n=10, value=-2.0)" in message
        assert "kept 0 of 2" in message

    def test_error_with_single_usable_point(self):
        with pytest.raises(ValueError, match=r"kept 1 of 2.*\(n=2, value=3\.0\)"):
            fit_power_of_log([2, 16], [3.0, 4.0])

    def test_error_without_dropped_points(self):
        with pytest.raises(ValueError, match="received only 1 point"):
            fit_power_of_log([16], [4.0])

    def test_fit_still_recovers_exponent(self):
        ns = [2**e for e in range(4, 40, 4)]
        values = [3.0 * math.log2(n) ** 0.75 for n in ns]
        beta, c = fit_power_of_log(ns, values)
        assert beta == pytest.approx(0.75, abs=1e-6)
        assert c == pytest.approx(3.0, rel=1e-6)
