"""Cross-machine transport tests: the TCP result collector, streamed
shard→collector equivalence with the file-based merge path, concurrent
fingerprint dedup, the daemon-side ``report`` verb, the daemon's TCP
listener, and the client's connect-retry backoff."""

import socket
import threading
import time

import pytest

from repro.experiments import CellResult, ResultStore, get_suite
from repro.experiments.cli import main
from repro.experiments.store import resolve_duplicate
from repro.service import (
    CollectorSink,
    LineServer,
    ResultCollector,
    ServiceClient,
    ServiceError,
    SweepDaemon,
)
from repro.service.protocol import ok_response

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)

TOKEN = "collector-suite-token"


def make_result(
    seed: int, rounds: float = 7.0, verified: bool = True, fingerprint: str | None = None
) -> CellResult:
    return CellResult(
        fingerprint=fingerprint or f"{seed:016x}",
        suite="s",
        scenario="scenario",
        generator="random-tree",
        algorithm="baseline-mis",
        n=10,
        seed=seed,
        rounds=rounds,
        messages=100,
        wall_clock_s=0.5,
        verified=verified,
    )


@pytest.fixture()
def collector(tmp_path):
    collector = ResultCollector(
        out=tmp_path / "central", listen="127.0.0.1:0", token=TOKEN
    )
    collector.start()
    yield collector
    collector.close()


def collector_client(collector, **kwargs):
    host, port = collector.tcp_address
    return ServiceClient(f"{host}:{port}", token=TOKEN, **kwargs)


class TestCollectorVerbs:
    def test_ping_reports_role_and_counters(self, collector):
        response = collector_client(collector).ping()
        assert response["role"] == "collector"
        assert response["records"] == 0
        assert response["store"] == str(collector.store.path)

    def test_push_appends_to_a_normal_store(self, collector, tmp_path):
        client = collector_client(collector)
        response = client.push([make_result(seed).to_record() for seed in (1, 2)])
        assert response["accepted"] == 2 and response["dropped"] == 0
        records = ResultStore(tmp_path / "central").records()
        assert {record["seed"] for record in records} == {1, 2}

    def test_push_requires_records_list(self, collector):
        with pytest.raises(ServiceError, match="records"):
            collector_client(collector).request({"op": "push"})
        with pytest.raises(ServiceError, match="JSON object"):
            collector_client(collector).push(["not-a-record"])

    def test_push_without_fingerprint_rejected(self, collector):
        with pytest.raises(ServiceError, match="fingerprint"):
            collector_client(collector).push([{"seed": 1}])

    def test_bad_record_mid_batch_ingests_nothing(self, collector, tmp_path):
        """A batch is validated whole before any record is ingested: a bad
        record must not leave a half-ingested prefix whose counts are lost
        and whose retry would double-ingest."""
        client = collector_client(collector)
        batch = [make_result(1).to_record(), {"fingerprint": "ab" * 8}]
        with pytest.raises(ServiceError, match="record 1"):
            client.push(batch)
        assert collector.accepted == 0
        assert ResultStore(tmp_path / "central").records() == []
        # the repaired batch then ingests cleanly, exactly once
        assert client.push([make_result(1).to_record()])["accepted"] == 1

    def test_report_on_empty_collector_is_an_error(self, collector):
        with pytest.raises(ServiceError, match="no results"):
            collector_client(collector).report()

    def test_tcp_push_without_token_refused(self, collector):
        client = collector_client(collector)
        client.token = None
        with pytest.raises(ServiceError, match="authentication failed"):
            client.ping()

    def test_shutdown_verb_stops_collector(self, tmp_path):
        collector = ResultCollector(
            out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN
        )
        collector.start()
        stopped = threading.Thread(target=collector.serve_forever, daemon=True)
        stopped.start()
        collector_client(collector).shutdown()
        stopped.join(timeout=10)
        assert not stopped.is_alive()

    def test_collector_requires_an_endpoint(self, tmp_path):
        with pytest.raises(ServiceError, match="needs an endpoint"):
            ResultCollector(out=tmp_path / "c").start()

    def test_collector_rejects_non_tcp_listen(self, tmp_path):
        collector = ResultCollector(
            out=tmp_path / "c", listen="/tmp/not-a-port", token=TOKEN
        )
        with pytest.raises(ServiceError, match="host:port"):
            collector.start()

    def test_unix_socket_collector_works_without_token(self, tmp_path):
        collector = ResultCollector(
            out=tmp_path / "c", socket_path=tmp_path / "collect.sock"
        )
        collector.start()
        try:
            client = ServiceClient(tmp_path / "collect.sock")
            assert client.push([make_result(1).to_record()])["accepted"] == 1
        finally:
            collector.close()


class TestDedupPolicy:
    """The collector applies the exact merge policy, ingest by ingest."""

    def test_verified_wins_regardless_of_arrival_order(self, tmp_path):
        for order in ("unverified-first", "verified-first"):
            collector = ResultCollector(
                out=tmp_path / order, listen="127.0.0.1:0", token=TOKEN
            )
            collector.start()
            try:
                client = collector_client(collector)
                verified = make_result(1, rounds=7.0, verified=True).to_record()
                unverified = make_result(1, rounds=9.0, verified=False).to_record()
                if order == "unverified-first":
                    client.push([unverified])
                    response = client.push([verified])
                    assert response["accepted"] == 1
                else:
                    client.push([verified])
                    response = client.push([unverified])
                    assert response["dropped"] == 1
            finally:
                collector.close()
            # the store's readers resolve to the verified record either way
            store = ResultStore(tmp_path / order)
            assert store.completed_fingerprints() == {verified["fingerprint"]}
            latest = {r["fingerprint"]: r for r in store.records()}
            assert latest[verified["fingerprint"]]["verified"] is True
            assert latest[verified["fingerprint"]]["rounds"] == 7.0

    def test_equal_rank_differing_payloads_count_conflicts(self, collector):
        client = collector_client(collector)
        client.push([make_result(1, rounds=7.0).to_record()])
        response = client.push([make_result(1, rounds=13.0).to_record()])
        assert response["conflicts"] == 1
        # last-write-wins, exactly like merge_result_files
        latest = {r["fingerprint"]: r for r in collector.store.records()}
        assert latest[make_result(1).fingerprint]["rounds"] == 13.0

    def test_concurrent_streams_verified_wins_every_time(self, tmp_path):
        """Two connections racing the same fingerprint: whatever the
        interleaving, the verified record must survive.  Runs many rounds
        over fresh fingerprints so a regression to timing-dependent
        resolution has many chances to show."""
        collector = ResultCollector(
            out=tmp_path / "race", listen="127.0.0.1:0", token=TOKEN
        )
        collector.start()
        try:
            client = collector_client(collector)
            rounds = 20
            with client.connection() as stream_a, client.connection() as stream_b:
                for index in range(rounds):
                    fingerprint = f"{index:016x}"
                    verified = make_result(
                        index, rounds=7.0, verified=True, fingerprint=fingerprint
                    ).to_record()
                    unverified = make_result(
                        index, rounds=9.0, verified=False, fingerprint=fingerprint
                    ).to_record()
                    barrier = threading.Barrier(2)

                    def push(stream, record):
                        barrier.wait()
                        stream.request(
                            {"op": "push", "records": [record], "token": TOKEN}
                        )

                    threads = [
                        threading.Thread(target=push, args=(stream_a, verified)),
                        threading.Thread(target=push, args=(stream_b, unverified)),
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=10)
        finally:
            collector.close()
        latest = {r["fingerprint"]: r for r in ResultStore(tmp_path / "race").records()}
        assert len(latest) == rounds
        for record in latest.values():
            assert record["verified"] is True, record
            assert record["rounds"] == 7.0

    def test_restarted_collector_still_blocks_unverified(self, tmp_path):
        """The dedup index is reseeded from the store on start, through the
        same policy."""
        first = ResultCollector(out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN)
        first.start()
        collector_client(first).push([make_result(1, verified=True).to_record()])
        first.close()

        second = ResultCollector(out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN)
        second.start()
        try:
            response = collector_client(second).push(
                [make_result(1, verified=False).to_record()]
            )
            assert response["dropped"] == 1
        finally:
            second.close()

    def test_resolve_duplicate_is_shared_with_merge(self):
        verified = make_result(1, verified=True).to_record()
        unverified = make_result(1, verified=False).to_record()
        assert not resolve_duplicate(verified, unverified).keep_newcomer
        assert resolve_duplicate(unverified, verified).keep_newcomer
        equal_rank = resolve_duplicate(
            make_result(1, rounds=7.0).to_record(),
            make_result(1, rounds=9.0).to_record(),
        )
        assert equal_rank.keep_newcomer and equal_rank.conflict


class TestStreamedEquivalence:
    """The acceptance bar: two shard workers streaming to a TCP collector
    yield a store whose ``report --json`` bundle is byte-identical to the
    PR 3 file-based shard→merge→report path over the same records."""

    def test_streamed_store_report_matches_merge_path(self, collector, tmp_path, capsys):
        host, port = collector.tcp_address

        def run_shard(index):
            assert main([
                "run", "paper-claims", "--smoke", "--jobs", "1", "--quiet",
                "--shard", f"{index}/2", "--out", str(tmp_path / f"shard{index}"),
                "--collector", f"{host}:{port}", "--token", TOKEN,
            ]) == 0

        # Two shard workers streaming concurrently, like two machines would.
        threads = [
            threading.Thread(target=run_shard, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)

        expected = len(get_suite("paper-claims").cells(smoke=True))
        assert collector.accepted == expected
        assert collector.dropped == 0 and collector.conflicts == 0

        # file-based path: merge the shard workers' local stores
        merged = tmp_path / "merged"
        assert main([
            "merge", "--out", str(merged / "results.jsonl"),
            str(tmp_path / "shard0" / "results.jsonl"),
            str(tmp_path / "shard1" / "results.jsonl"),
        ]) == 0
        assert main([
            "report", "--out", str(merged), "--json", str(tmp_path / "merged.json"),
            "--csv", str(tmp_path / "merged.csv"),
        ]) == 0

        # streamed path, read two ways: the collector's store file, and
        # the collector's server-side report verb
        assert main([
            "report", "--out", str(tmp_path / "central"),
            "--json", str(tmp_path / "central.json"),
        ]) == 0
        assert main([
            "report", "--connect", f"{host}:{port}", "--token", TOKEN,
            "--json", str(tmp_path / "verb.json"), "--csv", str(tmp_path / "verb.csv"),
        ]) == 0
        capsys.readouterr()

        merged_json = (tmp_path / "merged.json").read_bytes()
        assert merged_json == (tmp_path / "central.json").read_bytes()
        assert merged_json == (tmp_path / "verb.json").read_bytes()
        assert (tmp_path / "merged.csv").read_bytes() == (tmp_path / "verb.csv").read_bytes()
        # and the stores themselves hold identical cell sets
        merged_records = {
            r["fingerprint"]: r for r in ResultStore(merged).records()
        }
        streamed_records = {
            r["fingerprint"]: r for r in ResultStore(tmp_path / "central").records()
        }
        assert merged_records == streamed_records

    def test_sink_failure_does_not_fail_the_sweep(self, tmp_path, capsys):
        """A collector that disappears mid-sweep costs the stream, not the
        results: the local store completes, the exit code flags the loss."""
        collector = ResultCollector(
            out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN
        )
        collector.start()
        host, port = collector.tcp_address
        collector.close()  # gone before the sweep starts
        code = main([
            "run", "paper-claims", "--smoke", "--jobs", "1", "--quiet",
            "--shard", "0/2", "--out", str(tmp_path / "local"),
            "--collector", f"{host}:{port}", "--token", TOKEN,
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "COLLECTOR STREAM FAILED" in captured.err
        # every executed cell still landed in the local store
        expected = [
            cell for cell in get_suite("paper-claims").cells(smoke=True)
            if int(cell.fingerprint, 16) % 2 == 0
        ]
        assert len(ResultStore(tmp_path / "local").records()) == len(expected)


class TestDaemonReportVerb:
    @pytest.fixture()
    def daemon(self, tmp_path):
        daemon = SweepDaemon(socket_path=tmp_path / "svc.sock", workers=2)
        daemon.start()
        yield daemon
        daemon.close()

    def test_report_for_finished_job_matches_local_bytes(self, daemon, tmp_path, capsys):
        client = ServiceClient(daemon.socket_path)
        out = tmp_path / "store"
        job = client.submit("paper-claims", smoke=True, out=str(out))
        client.wait(job, timeout=120)
        payload = client.report(job)
        assert payload["state"] == "done"
        assert payload["all_verified"] is True
        assert "Theorem 3 shape" in payload["render"]
        # byte-identical to a local `report --json` over the job's store
        assert main([
            "report", "--out", str(out), "--json", str(tmp_path / "local.json"),
        ]) == 0
        capsys.readouterr()
        assert payload["json"].encode() == (tmp_path / "local.json").read_bytes()

    def test_report_requires_a_finished_job(self, daemon, tmp_path):
        client = ServiceClient(daemon.socket_path)
        with pytest.raises(ServiceError, match="requires a 'job'"):
            client.report()
        with pytest.raises(ServiceError, match="unknown job"):
            client.report("job-999")

    def test_report_on_failed_job_without_records(self, daemon, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        client = ServiceClient(daemon.socket_path)
        job = client.submit("paper-claims", smoke=True, out=str(blocked / "sub"))
        assert client.wait(job)["state"] == "failed"
        with pytest.raises(ServiceError, match="no results"):
            client.report(job)


class TestDaemonTcp:
    def test_submit_wait_report_over_tcp(self, tmp_path):
        daemon = SweepDaemon(
            socket_path=tmp_path / "svc.sock", workers=2,
            listen="127.0.0.1:0", token=TOKEN,
        )
        daemon.start()
        try:
            host, port = daemon.tcp_address
            client = ServiceClient(f"{host}:{port}", token=TOKEN)
            assert client.ping()["pool"]["workers"] == 2
            out = tmp_path / "store"
            job = client.submit("paper-claims", smoke=True, out=str(out))
            status = client.wait(job, timeout=120)
            assert status["state"] == "done" and status["unverified"] == 0
            assert "Theorem 3 shape" in client.report(job)["render"]
        finally:
            daemon.close()

    def test_tcp_request_with_wrong_token_refused(self, tmp_path):
        daemon = SweepDaemon(
            socket_path=tmp_path / "svc.sock", workers=1,
            listen="127.0.0.1:0", token=TOKEN,
        )
        daemon.start()
        try:
            host, port = daemon.tcp_address
            with pytest.raises(ServiceError, match="authentication failed"):
                ServiceClient(f"{host}:{port}", token="wrong").ping()
            # the Unix socket keeps working without any token
            assert ServiceClient(daemon.socket_path).ping()["ok"] is True
        finally:
            daemon.close()

    def test_listen_without_token_refused_before_pool_start(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_TOKEN", raising=False)
        daemon = SweepDaemon(
            socket_path=tmp_path / "svc.sock", workers=1, listen="127.0.0.1:0"
        )
        with pytest.raises(ServiceError, match="without an auth token"):
            daemon.start()
        assert not daemon.pool.started
        daemon.close()

    def test_listen_must_be_tcp(self, tmp_path):
        daemon = SweepDaemon(
            socket_path=tmp_path / "svc.sock", workers=1,
            listen="/tmp/some.sock", token=TOKEN,
        )
        with pytest.raises(ServiceError, match="host:port"):
            daemon.start()
        assert not daemon.pool.started
        daemon.close()

    def test_daemon_job_streams_to_collector(self, collector, tmp_path):
        """submit --collector: the daemon itself streams the job's records."""
        host, port = collector.tcp_address
        daemon = SweepDaemon(
            socket_path=tmp_path / "svc.sock", workers=2, token=TOKEN
        )
        daemon.start()
        try:
            client = ServiceClient(daemon.socket_path)
            job = client.submit(
                "paper-claims", smoke=True, out=str(tmp_path / "store"),
                collector=f"{host}:{port}",
            )
            status = client.wait(job, timeout=120)
            assert status["state"] == "done"
            assert status["sink_error"] is None
            assert collector.accepted == status["executed"] > 0
        finally:
            daemon.close()


class TestClientConnectRetry:
    """The startup-race fix: ConnectionRefusedError (and a not-yet-bound
    socket file) retries with backoff instead of failing immediately."""

    def test_default_retry_budget_is_positive(self):
        assert ServiceClient("127.0.0.1:1").connect_retry_s > 0

    def test_tcp_connection_refused_retries_until_server_appears(self):
        # reserve a free port, then release it so connects are refused
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()

        client = ServiceClient(
            f"127.0.0.1:{port}", token=TOKEN, connect_retry_s=10
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient(
                f"127.0.0.1:{port}", token=TOKEN, connect_retry_s=0
            ).ping()

        server = LineServer(lambda r: ok_response(up=True), token=TOKEN)

        def start_late():
            time.sleep(0.4)
            server.listen_tcp("127.0.0.1", port)
            server.start()

        starter = threading.Thread(target=start_late, daemon=True)
        begun = time.monotonic()
        starter.start()
        try:
            assert client.ping()["up"] is True
            assert time.monotonic() - begun >= 0.3  # it genuinely waited
        finally:
            starter.join(timeout=10)
            server.close()

    def test_unix_stale_socket_retries_until_daemon_replaces_it(self, tmp_path):
        path = tmp_path / "race.sock"
        # a dead server's leftover: bound once, nobody accepting →
        # connects raise ConnectionRefusedError
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(path))
        leftover.close()
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient(path, connect_retry_s=0).ping()

        server = LineServer(lambda r: ok_response(up=True))

        def start_late():
            time.sleep(0.3)
            server.listen_unix(path)
            server.start()

        starter = threading.Thread(target=start_late, daemon=True)
        starter.start()
        try:
            assert ServiceClient(path, connect_retry_s=10).ping()["up"] is True
        finally:
            starter.join(timeout=10)
            server.close()

    def test_missing_socket_file_also_retries(self, tmp_path):
        """`serve &` may not have bound yet when the first submit arrives:
        FileNotFoundError is part of the same startup race."""
        path = tmp_path / "notyet.sock"
        server = LineServer(lambda r: ok_response(up=True))

        def start_late():
            time.sleep(0.3)
            server.listen_unix(path)
            server.start()

        starter = threading.Thread(target=start_late, daemon=True)
        starter.start()
        try:
            assert ServiceClient(path, connect_retry_s=10).ping()["up"] is True
        finally:
            starter.join(timeout=10)
            server.close()

    def test_exhausted_budget_raises_service_error_with_hint(self, tmp_path):
        began = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient(tmp_path / "ghost.sock", connect_retry_s=0.3).ping()
        elapsed = time.monotonic() - began
        assert 0.2 <= elapsed < 5


class TestCollectorSink:
    def test_sink_reconnects_after_collector_restart(self, tmp_path):
        """One mid-stream collector restart costs a reconnect, not the sweep."""
        first = ResultCollector(out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN)
        first.start()
        host, port = first.tcp_address
        sink = CollectorSink(
            ServiceClient(f"{host}:{port}", token=TOKEN, connect_retry_s=10)
        )
        sink(make_result(1))
        first.close()

        second = ResultCollector(out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN)
        # rebind the same port; SO_REUSEADDR makes this immediate
        second.listen = f"127.0.0.1:{port}"
        second.start()
        try:
            sink(make_result(2))
            assert sink.pushed == 2
        finally:
            sink.close()
            second.close()
        assert {r["seed"] for r in ResultStore(tmp_path / "c").records()} == {1, 2}


class TestObservability:
    def test_status_reports_uptime_and_rates(self, collector):
        client = collector_client(collector)
        client.push([make_result(1).to_record()])
        status = client.status()
        assert status["uptime_s"] > 0
        assert status["records_per_s"] > 0
        assert status["accepted"] == 1

    def test_metrics_verb_tracks_ingest_fates(self, collector):
        from repro.obs import parse_exposition
        from repro.obs.metrics import samples_named, sum_samples

        client = collector_client(collector)
        client.push([make_result(seed).to_record() for seed in (1, 2)])
        # unverified duplicate loses to the verified record -> dropped
        client.push([make_result(1, verified=False).to_record()])
        # equal-rank duplicate with a different payload -> conflict (kept)
        client.push([make_result(1, rounds=99.0).to_record()])
        samples = parse_exposition(client.metrics())

        # ingested counts store *appends* only — the dropped record must
        # not tick it, so it always equals the store's line count (the
        # CI burn check pins exactly this)
        assert sum_samples(samples, "collector_records_ingested_total") == 3
        store_lines = [
            line
            for line in collector.store.path.read_text().splitlines()
            if line.strip()
        ]
        assert len(store_lines) == 3
        fates = {
            sample.label("fate"): sample.value
            for sample in samples_named(samples, "collector_records_total")
        }
        assert fates == {"accepted": 2, "dropped": 1, "conflict": 1}
        # push-batch size histogram saw batches of 2, 1 and 1
        assert sum_samples(samples, "collector_push_batch_records_count") == 3
        assert sum_samples(samples, "collector_push_batch_records_sum") == 4
        # per-stream lag gauge is present once a push has arrived
        lag = samples_named(samples, "collector_seconds_since_last_push")
        assert len(lag) == 1 and lag[0].value >= 0
