"""Spec registry tests: suite validity, completeness, cell enumeration."""

import networkx as nx
import pytest

import repro.baselines as baselines
from repro.experiments import (
    ALGORITHMS,
    GENERATORS,
    SUITES,
    ScenarioSpec,
    get_suite,
)
from repro.experiments.runner import run_cell
from repro.experiments.spec import ANALYTIC_GENERATOR, Cell

#: Interface / cost-model names in repro.baselines.__all__ that are not
#: themselves runnable baselines.
NON_ALGORITHM_EXPORTS = {"TrulyLocalAlgorithm", "OracleCostModel"}


class TestRegistries:
    def test_builtin_suites_registered(self):
        assert {
            "paper-claims", "scaling", "stress", "workloads", "lower-bound",
            "charged", "orientation-lists",
        } <= set(SUITES)

    def test_every_suite_validates(self):
        for suite in SUITES.values():
            suite.validate()

    def test_every_registered_baseline_appears_in_a_suite(self):
        """Registry completeness: each baseline exported by repro.baselines
        is exercised (via `covers`) by some scenario of some suite."""
        registered = set(baselines.__all__) - NON_ALGORITHM_EXPORTS
        covered = set()
        for suite in SUITES.values():
            for scenario in suite.scenarios:
                covered.update(ALGORITHMS[scenario.algorithm].covers)
        missing = registered - covered
        assert not missing, f"baselines never exercised by any suite: {sorted(missing)}"

    def test_every_generator_family_used_by_a_suite(self):
        used = {
            scenario.generator
            for suite in SUITES.values()
            for scenario in suite.scenarios
        }
        assert used == set(GENERATORS)

    def test_every_algorithm_family_used_by_a_suite(self):
        """Suite completeness over algorithm families: every built-in
        family — including the charged transforms, sinkless orientation
        and the Π*/Π× list variants — is exercised by some suite.  Other
        test modules register throwaway families into the (global)
        registry, so scope the check to the families the package itself
        defines."""
        used = {
            scenario.algorithm
            for suite in SUITES.values()
            for scenario in suite.scenarios
        }
        builtin = {
            name
            for name, family in ALGORITHMS.items()
            if family.run.__module__ == "repro.experiments.spec"
        }
        assert {
            "sinkless-orientation", "edge-list-mis", "charged-arb-edge-coloring"
        } <= builtin  # the scoping itself must not silently exclude built-ins
        assert builtin <= used

    def test_orientation_and_list_families_covered_by_a_suite(self):
        suite = get_suite("orientation-lists")
        algorithms = {scenario.algorithm for scenario in suite.scenarios}
        assert {
            "sinkless-orientation",
            "node-list-edge-coloring",
            "node-list-matching",
            "edge-list-mis",
            "edge-list-coloring",
        } <= algorithms

    def test_charged_suite_pairs_every_charged_family(self):
        suite = get_suite("charged")
        algorithms = {scenario.algorithm for scenario in suite.scenarios}
        assert {
            "charged-arb-edge-coloring",
            "charged-arb-matching",
            "charged-tree-mis",
            "charged-tree-deg+1-coloring",
        } <= algorithms

    def test_get_suite_names_known_suites_on_miss(self):
        with pytest.raises(KeyError, match="paper-claims"):
            get_suite("no-such-suite")


class TestStructuredFamilies:
    """The grid / caterpillar / spider / balanced-tree generator families."""

    def test_families_registered(self):
        assert {"grid", "caterpillar-3", "spider", "balanced-tree-3"} <= set(
            GENERATORS
        )

    @pytest.mark.parametrize(
        "name, n", [("caterpillar-3", 61), ("spider", 60), ("balanced-tree-3", 46)]
    )
    def test_tree_families_build_forests_of_exact_size(self, name, n):
        family = GENERATORS[name]
        assert family.is_forest and family.arboricity == 1
        graph = family.build(n, 1)
        assert nx.is_forest(graph)
        assert graph.number_of_nodes() == n

    @pytest.mark.parametrize("n", [64, 101, 22, 7])
    def test_grid_has_grid_shape_and_exact_size(self, n):
        family = GENERATORS["grid"]
        assert not family.is_forest and family.arboricity == 2
        graph = family.build(n, 1)
        assert graph.number_of_nodes() == n
        assert nx.is_connected(graph)
        assert max(dict(graph.degree()).values()) <= 4
        assert nx.check_planarity(graph)[0]

    @pytest.mark.parametrize(
        "name, n",
        [("grid", 50), ("caterpillar-3", 50), ("spider", 50), ("balanced-tree-3", 46)],
    )
    def test_builds_ignore_seed(self, name, n):
        family = GENERATORS[name]
        first, second = family.build(n, 1), family.build(n, 2)
        assert sorted(first.edges()) == sorted(second.edges())

    def test_balanced_tree_exact_sizes_only(self):
        build = GENERATORS["balanced-tree-3"].build
        for n in (4, 10, 22, 46, 94, 190):
            graph = build(n, 1)
            assert graph.number_of_nodes() == n
            degrees = set(d for _, d in graph.degree())
            assert degrees <= {1, 3}  # leaves and internal nodes only
        for n in (3, 23, 45, 189):
            with pytest.raises(ValueError, match="exist only at sizes"):
                build(n, 1)

    def test_new_suites_registered_and_valid(self):
        for name in ("workloads", "lower-bound"):
            suite = get_suite(name)
            suite.validate()
            assert suite.cells()
        lower = get_suite("lower-bound")
        assert {s.generator for s in lower.scenarios} == {
            "balanced-tree-3", ANALYTIC_GENERATOR
        }

    @pytest.mark.parametrize(
        "generator, algorithm",
        [
            ("grid", "arb-edge-coloring"),
            ("caterpillar-3", "tree-deg+1-coloring"),
            ("spider", "tree-mis"),
            ("balanced-tree-3", "arb-matching"),
        ],
    )
    def test_one_small_cell_per_family_runs_verified(self, generator, algorithm):
        cell = Cell("smoke", generator, algorithm, 22, 1)
        result = run_cell("test", cell)
        assert result.verified
        assert result.rounds > 0


class TestOrientationAndListFamilies:
    """The sinkless-orientation and Π*/Π× algorithm families run verified."""

    @pytest.mark.parametrize(
        "generator, algorithm, n",
        [
            ("grid", "sinkless-orientation", 36),
            ("bounded-degree-8", "sinkless-orientation", 60),
            ("balanced-tree-3", "sinkless-orientation", 22),
            ("random-tree", "node-list-edge-coloring", 40),
            ("random-tree", "node-list-matching", 40),
            ("random-tree", "edge-list-mis", 40),
            ("caterpillar-3", "edge-list-coloring", 40),
            ("spider", "edge-list-coloring", 40),
            ("grid", "edge-list-mis", 36),
        ],
    )
    def test_small_cell_runs_verified(self, generator, algorithm, n):
        result = run_cell("test", Cell("s", generator, algorithm, n, 1))
        assert result.verified
        assert result.rounds > 0
        # None of these families run under a cost model.
        assert result.charged_rounds is None

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_list_families_deterministic_per_seed(self, seed):
        first = run_cell("s", Cell("s", "random-tree", "edge-list-mis", 30, seed))
        second = run_cell("s", Cell("s", "random-tree", "edge-list-mis", 30, seed))
        assert first.rounds == second.rounds
        assert first.extras == second.extras

    def test_sinkless_extras_report_constrained_nodes(self):
        result = run_cell("s", Cell("s", "balanced-tree-3", "sinkless-orientation", 22, 1))
        # 1 + 3·(2^d − 1) nodes: the 10 internal ones have degree 3.
        assert result.extras["constrained_nodes"] == 10
        assert result.extras["oriented_edges"] == 21
        assert result.extras["min_degree"] == 3

    def test_list_extras_report_the_split(self):
        result = run_cell("s", Cell("s", "random-tree", "node-list-matching", 30, 1))
        assert result.extras["list_variant"] == "node-list"
        assert result.extras["baseline_edges"] + result.extras["list_edges"] == 29


class TestChargedFamilies:
    """Transform cells run under OracleCostModel charging."""

    @pytest.mark.parametrize(
        "generator, algorithm",
        [
            ("random-tree", "charged-arb-edge-coloring"),
            ("planar-triangulation", "charged-arb-edge-coloring"),
            ("random-tree", "charged-arb-matching"),
            ("random-tree", "charged-tree-mis"),
            ("random-tree", "charged-tree-deg+1-coloring"),
        ],
    )
    def test_charged_cell_carries_both_accounts(self, generator, algorithm):
        result = run_cell("test", Cell("s", generator, algorithm, 40, 1))
        assert result.verified
        assert result.rounds > 0
        assert result.charged_rounds is not None and result.charged_rounds > 0
        measured_a = result.extras["algorithm_rounds_measured"]
        charged_a = result.extras["algorithm_rounds_charged"]
        # charged total = measured total with the A-phase swapped for the
        # analytic charge (the TransformResult identity, end to end).
        assert result.charged_rounds == result.rounds - measured_a + charged_a

    def test_self_charged_twin_measures_like_uncharged_family(self):
        """The self-model families charge the A-phase with the baseline's
        own declared f, so the cut-off k — and hence the measured series —
        matches the uncharged twin cell for cell."""
        charged = run_cell("s", Cell("s", "random-tree", "charged-tree-mis", 60, 1))
        plain = run_cell("s", Cell("s", "random-tree", "tree-mis", 60, 1))
        assert charged.rounds == plain.rounds
        assert charged.k == plain.k
        assert plain.charged_rounds is None

    def test_uncharged_families_store_no_charge(self):
        result = run_cell("s", Cell("s", "random-tree", "arb-edge-coloring", 40, 1))
        assert result.charged_rounds is None
        assert "algorithm_rounds_charged" not in result.extras


class TestScenarioValidation:
    def test_tree_transform_rejects_non_forest_generator(self):
        spec = ScenarioSpec(
            name="bad", generator="planar-triangulation", algorithm="tree-mis",
            sizes=(10,),
        )
        with pytest.raises(ValueError, match="forest"):
            spec.validate()

    def test_arboricity_transform_rejects_unbounded_generator(self):
        spec = ScenarioSpec(
            name="bad", generator="bounded-degree-8", algorithm="arb-edge-coloring",
            sizes=(10,),
        )
        with pytest.raises(ValueError, match="arboricity"):
            spec.validate()

    def test_analytic_pairing_is_exclusive(self):
        with pytest.raises(ValueError, match="analytic"):
            ScenarioSpec(
                name="bad", generator="random-tree",
                algorithm="predicted-edge-coloring-log12", sizes=(10,),
            ).validate()
        with pytest.raises(ValueError, match="analytic"):
            ScenarioSpec(
                name="bad", generator=ANALYTIC_GENERATOR,
                algorithm="baseline-mis", sizes=(10,),
            ).validate()

    def test_unknown_names_are_reported(self):
        with pytest.raises(ValueError, match="unknown generator"):
            ScenarioSpec(
                name="bad", generator="nope", algorithm="baseline-mis", sizes=(10,)
            ).validate()
        with pytest.raises(ValueError, match="unknown algorithm"):
            ScenarioSpec(
                name="bad", generator="random-tree", algorithm="nope", sizes=(10,)
            ).validate()


class TestCellEnumeration:
    def test_cell_count_and_fingerprint_uniqueness(self):
        suite = get_suite("paper-claims")
        cells = suite.cells()
        expected = sum(
            len(s.sizes) * len(s.seeds) for s in suite.scenarios
        )
        assert len(cells) == expected
        assert len({cell.fingerprint for cell in cells}) == len(cells)

    def test_smoke_shrinks_measured_but_not_analytic(self):
        suite = get_suite("paper-claims")
        smoke = suite.cells(smoke=True)
        full = suite.cells()
        assert len(smoke) < len(full)
        analytic_full = [c for c in full if c.generator == ANALYTIC_GENERATOR]
        analytic_smoke = [c for c in smoke if c.generator == ANALYTIC_GENERATOR]
        assert analytic_smoke == analytic_full
        measured_smoke = [c for c in smoke if c.generator != ANALYTIC_GENERATOR]
        for scenario in suite.scenarios:
            if scenario.is_analytic or scenario.smoke_sizes is None:
                continue
            sizes = {c.n for c in measured_smoke if c.scenario == scenario.name}
            assert sizes == set(scenario.smoke_sizes)
            seeds = {c.seed for c in measured_smoke if c.scenario == scenario.name}
            assert seeds == {scenario.seeds[0]}

    def test_sizes_override_applies_to_measured_only(self):
        suite = get_suite("paper-claims")
        cells = suite.cells(sizes=(25,), seeds=(9,))
        measured = [c for c in cells if c.generator != ANALYTIC_GENERATOR]
        analytic = [c for c in cells if c.generator == ANALYTIC_GENERATOR]
        assert {c.n for c in measured} == {25}
        assert {c.seed for c in measured} == {9}
        assert analytic == [
            c for c in suite.cells() if c.generator == ANALYTIC_GENERATOR
        ]

    def test_shared_cells_dedupe_by_fingerprint(self):
        first = ScenarioSpec(
            name="a", generator="random-tree", algorithm="baseline-mis", sizes=(30,)
        )
        second = ScenarioSpec(
            name="b", generator="random-tree", algorithm="baseline-mis", sizes=(30,)
        )
        from repro.experiments import Suite

        suite = Suite(name="dup", description="", scenarios=(first, second))
        cells = suite.cells()
        assert len(cells) == 1
        assert cells[0].scenario == "a"
