"""Spec registry tests: suite validity, completeness, cell enumeration."""

import pytest

import repro.baselines as baselines
from repro.experiments import (
    ALGORITHMS,
    GENERATORS,
    SUITES,
    ScenarioSpec,
    get_suite,
)
from repro.experiments.spec import ANALYTIC_GENERATOR

#: Interface / cost-model names in repro.baselines.__all__ that are not
#: themselves runnable baselines.
NON_ALGORITHM_EXPORTS = {"TrulyLocalAlgorithm", "OracleCostModel"}


class TestRegistries:
    def test_builtin_suites_registered(self):
        assert {"paper-claims", "scaling", "stress"} <= set(SUITES)

    def test_every_suite_validates(self):
        for suite in SUITES.values():
            suite.validate()

    def test_every_registered_baseline_appears_in_a_suite(self):
        """Registry completeness: each baseline exported by repro.baselines
        is exercised (via `covers`) by some scenario of some suite."""
        registered = set(baselines.__all__) - NON_ALGORITHM_EXPORTS
        covered = set()
        for suite in SUITES.values():
            for scenario in suite.scenarios:
                covered.update(ALGORITHMS[scenario.algorithm].covers)
        missing = registered - covered
        assert not missing, f"baselines never exercised by any suite: {sorted(missing)}"

    def test_every_generator_family_used_by_a_suite(self):
        used = {
            scenario.generator
            for suite in SUITES.values()
            for scenario in suite.scenarios
        }
        assert used == set(GENERATORS)

    def test_get_suite_names_known_suites_on_miss(self):
        with pytest.raises(KeyError, match="paper-claims"):
            get_suite("no-such-suite")


class TestScenarioValidation:
    def test_tree_transform_rejects_non_forest_generator(self):
        spec = ScenarioSpec(
            name="bad", generator="planar-triangulation", algorithm="tree-mis",
            sizes=(10,),
        )
        with pytest.raises(ValueError, match="forest"):
            spec.validate()

    def test_arboricity_transform_rejects_unbounded_generator(self):
        spec = ScenarioSpec(
            name="bad", generator="bounded-degree-8", algorithm="arb-edge-coloring",
            sizes=(10,),
        )
        with pytest.raises(ValueError, match="arboricity"):
            spec.validate()

    def test_analytic_pairing_is_exclusive(self):
        with pytest.raises(ValueError, match="analytic"):
            ScenarioSpec(
                name="bad", generator="random-tree",
                algorithm="predicted-edge-coloring-log12", sizes=(10,),
            ).validate()
        with pytest.raises(ValueError, match="analytic"):
            ScenarioSpec(
                name="bad", generator=ANALYTIC_GENERATOR,
                algorithm="baseline-mis", sizes=(10,),
            ).validate()

    def test_unknown_names_are_reported(self):
        with pytest.raises(ValueError, match="unknown generator"):
            ScenarioSpec(
                name="bad", generator="nope", algorithm="baseline-mis", sizes=(10,)
            ).validate()
        with pytest.raises(ValueError, match="unknown algorithm"):
            ScenarioSpec(
                name="bad", generator="random-tree", algorithm="nope", sizes=(10,)
            ).validate()


class TestCellEnumeration:
    def test_cell_count_and_fingerprint_uniqueness(self):
        suite = get_suite("paper-claims")
        cells = suite.cells()
        expected = sum(
            len(s.sizes) * len(s.seeds) for s in suite.scenarios
        )
        assert len(cells) == expected
        assert len({cell.fingerprint for cell in cells}) == len(cells)

    def test_smoke_shrinks_measured_but_not_analytic(self):
        suite = get_suite("paper-claims")
        smoke = suite.cells(smoke=True)
        full = suite.cells()
        assert len(smoke) < len(full)
        analytic_full = [c for c in full if c.generator == ANALYTIC_GENERATOR]
        analytic_smoke = [c for c in smoke if c.generator == ANALYTIC_GENERATOR]
        assert analytic_smoke == analytic_full
        measured_smoke = [c for c in smoke if c.generator != ANALYTIC_GENERATOR]
        for scenario in suite.scenarios:
            if scenario.is_analytic or scenario.smoke_sizes is None:
                continue
            sizes = {c.n for c in measured_smoke if c.scenario == scenario.name}
            assert sizes == set(scenario.smoke_sizes)
            seeds = {c.seed for c in measured_smoke if c.scenario == scenario.name}
            assert seeds == {scenario.seeds[0]}

    def test_sizes_override_applies_to_measured_only(self):
        suite = get_suite("paper-claims")
        cells = suite.cells(sizes=(25,), seeds=(9,))
        measured = [c for c in cells if c.generator != ANALYTIC_GENERATOR]
        analytic = [c for c in cells if c.generator == ANALYTIC_GENERATOR]
        assert {c.n for c in measured} == {25}
        assert {c.seed for c in measured} == {9}
        assert analytic == [
            c for c in suite.cells() if c.generator == ANALYTIC_GENERATOR
        ]

    def test_shared_cells_dedupe_by_fingerprint(self):
        first = ScenarioSpec(
            name="a", generator="random-tree", algorithm="baseline-mis", sizes=(30,)
        )
        second = ScenarioSpec(
            name="b", generator="random-tree", algorithm="baseline-mis", sizes=(30,)
        )
        from repro.experiments import Suite

        suite = Suite(name="dup", description="", scenarios=(first, second))
        cells = suite.cells()
        assert len(cells) == 1
        assert cells[0].scenario == "a"
