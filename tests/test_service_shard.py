"""Shard partitioner tests: determinism, disjoint cover, CLI parsing, and
the end-to-end shard → merge → report equivalence of the acceptance
criterion."""

import json

import pytest

from repro.experiments import (
    ResultStore,
    ScenarioSpec,
    Suite,
    SweepRunner,
    build_report,
    get_suite,
    merge_result_files,
)
from repro.experiments.spec import ANALYTIC_GENERATOR
from repro.service import ShardSpec, partition, shard_cells

SUITE = Suite(
    name="shard-test",
    description="two measured scenarios and one analytic",
    scenarios=(
        ScenarioSpec(
            name="edge/tree", generator="random-tree",
            algorithm="arb-edge-coloring", sizes=(24, 48), seeds=(1, 2),
        ),
        ScenarioSpec(
            name="forest/tree", generator="random-tree",
            algorithm="baseline-forest-3coloring", sizes=(24, 48), seeds=(1, 2),
        ),
        ScenarioSpec(
            name="shape", generator=ANALYTIC_GENERATOR,
            algorithm="predicted-edge-coloring-log12",
            sizes=(2**64, 2**128, 2**256), seeds=(0,),
        ),
    ),
)


class TestShardSpec:
    def test_parse_roundtrip(self):
        spec = ShardSpec.parse("3/8")
        assert (spec.index, spec.count) == (3, 8)
        assert str(spec) == "3/8"

    @pytest.mark.parametrize("text", ["", "1", "1/2/3", "a/b", "1.5/2"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    @pytest.mark.parametrize("index, count", [(-1, 2), (2, 2), (5, 2), (0, 0)])
    def test_out_of_range_rejected(self, index, count):
        with pytest.raises(ValueError):
            ShardSpec(index, count)

    def test_single_shard_owns_everything(self):
        spec = ShardSpec(0, 1)
        assert all(spec.owns(cell.fingerprint) for cell in SUITE.cells())


class TestPartitioning:
    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_shards_are_disjoint_and_cover(self, count):
        cells = SUITE.cells()
        shards = partition(cells, count)
        fingerprints = [c.fingerprint for shard in shards for c in shard]
        assert sorted(fingerprints) == sorted(c.fingerprint for c in cells)
        assert len(set(fingerprints)) == len(fingerprints)

    def test_partition_is_deterministic(self):
        cells = SUITE.cells()
        first = [[c.fingerprint for c in s] for s in partition(cells, 4)]
        second = [[c.fingerprint for c in s] for s in partition(cells, 4)]
        assert first == second

    def test_shard_cells_none_passthrough(self):
        cells = SUITE.cells()
        assert shard_cells(cells, None) == cells

    def test_builtin_suite_shards_are_nonempty(self):
        # Not guaranteed by hashing in general, but the built-in suites
        # are large enough that an empty residue class would mean a
        # broken fingerprint distribution.
        cells = get_suite("paper-claims").cells()
        for shard in partition(cells, 2):
            assert shard


class TestShardedRunner:
    def test_sharded_runs_are_disjoint_and_union_to_full(self, tmp_path):
        full = ResultStore(tmp_path / "full")
        SweepRunner(SUITE, full, jobs=1).run()

        stores = []
        for index in range(2):
            store = ResultStore(tmp_path / f"shard{index}")
            report = SweepRunner(
                SUITE, store, jobs=1, shard=ShardSpec(index, 2)
            ).run()
            assert report.ok
            stores.append(store)

        shard_fps = [
            {record["fingerprint"] for record in store.records()}
            for store in stores
        ]
        assert not (shard_fps[0] & shard_fps[1])
        assert shard_fps[0] | shard_fps[1] == {
            record["fingerprint"] for record in full.records()
        }

    def test_sharded_resume_skips_own_cells_only(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = ShardSpec(0, 2)
        first = SweepRunner(SUITE, store, jobs=1, shard=shard).run()
        again = SweepRunner(SUITE, store, jobs=1, shard=shard).run()
        assert first.executed > 0
        assert again.executed == 0
        assert again.skipped == again.total_cells == first.executed


def _normalized_records(store: ResultStore) -> dict[str, dict]:
    normalized = {}
    for record in store.records():
        record = dict(record)
        record["wall_clock_s"] = 0.0
        record["timings"] = None
        normalized[record["fingerprint"]] = record
    return normalized


class TestShardMergeReportEquivalence:
    """Acceptance: shard 0/2 + shard 1/2, merged, reports identically to
    the unsharded run (modulo nondeterministic wall clock)."""

    def test_end_to_end(self, tmp_path):
        unsharded = ResultStore(tmp_path / "unsharded")
        assert SweepRunner(SUITE, unsharded, jobs=1).run().ok

        for index in range(2):
            report = SweepRunner(
                SUITE,
                ResultStore(tmp_path / f"shard{index}"),
                jobs=1,
                shard=ShardSpec(index, 2),
            ).run()
            assert report.ok

        merged_path = tmp_path / "merged" / "results.jsonl"
        merge_report = merge_result_files(
            [
                tmp_path / "shard0" / "results.jsonl",
                tmp_path / "shard1" / "results.jsonl",
            ],
            merged_path,
        )
        assert merge_report.ok and not merge_report.missing
        merged = ResultStore.from_path(merged_path)

        # Record-level equivalence (modulo wall clock).
        assert _normalized_records(merged) == _normalized_records(unsharded)

        # Report-level equivalence: byte-identical rendered reports once
        # the wall-clock columns are normalised away.
        def rendered(store):
            records = [
                dict(record, wall_clock_s=0.0, timings=None)
                for record in store.records()
            ]
            return build_report(records).render()

        assert rendered(merged) == rendered(unsharded)

    def test_merged_store_is_valid_jsonl(self, tmp_path):
        for index in range(2):
            SweepRunner(
                SUITE,
                ResultStore(tmp_path / f"s{index}"),
                jobs=1,
                shard=ShardSpec(index, 2),
            ).run()
        out = tmp_path / "m.jsonl"
        merge_result_files(
            [tmp_path / "s0" / "results.jsonl", tmp_path / "s1" / "results.jsonl"],
            out,
        )
        for line in out.read_text().splitlines():
            json.loads(line)
