"""Tests for the sequential list solvers (Lemmas 16, 17 and the greedy solvers)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequential import (
    BacktrackingListSolver,
    ColoringEdgeListSolver,
    EdgeColoringNodeListSolver,
    MISEdgeListSolver,
    MatchingNodeListSolver,
    SequentialSolverError,
    default_edge_list_solver,
    default_node_list_solver,
)
from repro.generators import random_tree
from repro.problems import (
    DegreePlusOneColoring,
    EdgeDegreePlusOneEdgeColoring,
    MaximalIndependentSetProblem,
    MaximalMatchingProblem,
)
from repro.problems.lists import (
    build_edge_list_instance,
    build_node_list_instance,
    verify_edge_list_solution,
    verify_node_list_solution,
)
from repro.problems.mis import IN_MIS, OUT, POINTER
from repro.semigraph import restrict_to_edges, restrict_to_nodes, semigraph_from_graph
from repro.semigraph.builders import edge_id_for

EDGE_COLORING = EdgeDegreePlusOneEdgeColoring()
MATCHING = MaximalMatchingProblem()
MIS = MaximalIndependentSetProblem()
COLORING = DegreePlusOneColoring()


def split_instance(problem, graph, inner_nodes, solve_outer):
    """Solve the problem on the outer part and build the residual instance.

    ``solve_outer(sub_semigraph) -> labeling`` produces the partial solution
    on the sub-semi-graph spanned by the outer nodes; the returned instance
    is the edge-list instance on the inner part.
    """
    semigraph = semigraph_from_graph(graph)
    inner = restrict_to_nodes(semigraph, inner_nodes)
    outer = restrict_to_nodes(semigraph, set(graph.nodes()) - set(inner_nodes))
    partial = solve_outer(outer)
    return semigraph, inner, partial


class TestEdgeColoringNodeListSolver:
    def test_fresh_instance_on_star(self):
        semigraph = semigraph_from_graph(nx.star_graph(5))
        from repro.semigraph import HalfEdgeLabeling

        instance = build_node_list_instance(
            EDGE_COLORING, semigraph, semigraph, HalfEdgeLabeling()
        )
        labeling = EdgeColoringNodeListSolver().solve(instance)
        assert verify_node_list_solution(instance, labeling).ok
        # The star's edges all share the centre, so they need distinct colours.
        colours = EDGE_COLORING.to_classic(semigraph, labeling)
        assert len(set(colours.values())) == 5

    def test_completion_after_partial_solution(self):
        # Colour half of a random tree's edges, then complete the rest.
        tree = random_tree(40, seed=8)
        semigraph = semigraph_from_graph(tree)
        edges = sorted(semigraph.edges, key=repr)
        first, second = set(edges[::2]), set(edges[1::2])
        first_semigraph = restrict_to_edges(semigraph, first)
        from repro.semigraph import HalfEdgeLabeling

        initial = build_node_list_instance(
            EDGE_COLORING, semigraph, first_semigraph, HalfEdgeLabeling()
        )
        partial = EdgeColoringNodeListSolver().solve(initial)
        second_semigraph = restrict_to_edges(semigraph, second)
        residual = build_node_list_instance(
            EDGE_COLORING, semigraph, second_semigraph, partial
        )
        completion = EdgeColoringNodeListSolver().solve(residual)
        assert verify_node_list_solution(residual, completion).ok
        # The combined labeling is a valid full solution.
        from repro.problems import verify_solution

        full = partial.merge(completion)
        assert verify_solution(EDGE_COLORING, semigraph, full).ok

    def test_rank_one_edges_receive_dummy(self):
        semigraph = restrict_to_nodes(semigraph_from_graph(nx.path_graph(3)), {1})
        from repro.semigraph import HalfEdgeLabeling

        instance = build_node_list_instance(
            EDGE_COLORING, semigraph, semigraph, HalfEdgeLabeling()
        )
        labeling = EdgeColoringNodeListSolver().solve(instance)
        assert verify_node_list_solution(instance, labeling).ok


class TestMatchingNodeListSolver:
    def test_fresh_instance_on_path(self):
        semigraph = semigraph_from_graph(nx.path_graph(6))
        from repro.semigraph import HalfEdgeLabeling

        instance = build_node_list_instance(
            MATCHING, semigraph, semigraph, HalfEdgeLabeling()
        )
        labeling = MatchingNodeListSolver().solve(instance)
        assert verify_node_list_solution(instance, labeling).ok
        matching = MATCHING.to_classic(semigraph, labeling)
        assert len(matching) >= 2  # a maximal matching of P6 has at least 2 edges

    def test_completion_respects_outside_matches(self):
        # Stars: solve the outer star first, then the path between centres.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        semigraph = semigraph_from_graph(graph)
        middle = restrict_to_edges(semigraph, {edge_id_for(1, 2)})
        outer = restrict_to_edges(
            semigraph, {edge_id_for(0, 1), edge_id_for(2, 3)}
        )
        partial = MATCHING.from_classic(outer, {edge_id_for(0, 1), edge_id_for(2, 3)})
        instance = build_node_list_instance(MATCHING, semigraph, middle, partial)
        labeling = MatchingNodeListSolver().solve(instance)
        assert verify_node_list_solution(instance, labeling).ok
        # Both endpoints of the middle edge are already matched, so the
        # middle edge must not be matched again.
        assert MATCHING.to_classic(semigraph, labeling.merge(partial)) == {
            edge_id_for(0, 1),
            edge_id_for(2, 3),
        }


class TestMISEdgeListSolver:
    def outer_mis(self, outer):
        mis_nodes = {v for v in outer.nodes if outer.degree(v) >= 0}
        # Put every outer node into the MIS only if that is independent.
        underlying = outer.underlying_graph()
        chosen = set()
        for node in sorted(underlying.nodes()):
            if not any(nbr in chosen for nbr in underlying.neighbors(node)):
                chosen.add(node)
        return MIS.from_classic(outer, chosen)

    def test_solver_respects_outside_mis(self):
        tree = nx.path_graph(6)
        semigraph, inner, partial = split_instance(
            MIS, tree, {2, 3}, self.outer_mis
        )
        instance = build_edge_list_instance(MIS, semigraph, inner, partial)
        labeling = MISEdgeListSolver().solve(instance)
        assert verify_edge_list_solution(instance, labeling).ok

    def test_forced_out_by_two_sides(self):
        # Path 0-1-2 where both 0 and 2 are already in the MIS: node 1 must
        # stay out and point at one of them.
        tree = nx.path_graph(3)
        semigraph = semigraph_from_graph(tree)
        inner = restrict_to_nodes(semigraph, {1})
        outer = restrict_to_nodes(semigraph, {0, 2})
        partial = MIS.from_classic(outer, {0, 2})
        instance = build_edge_list_instance(MIS, semigraph, inner, partial)
        labeling = MISEdgeListSolver().solve(instance)
        assert verify_edge_list_solution(instance, labeling).ok
        labels = {labeling[h] for h in inner.half_edges()}
        assert IN_MIS not in labels
        assert POINTER in labels

    def test_free_node_joins(self):
        tree = nx.path_graph(3)
        semigraph = semigraph_from_graph(tree)
        inner = restrict_to_nodes(semigraph, {1})
        outer = restrict_to_nodes(semigraph, {0, 2})
        # Outer nodes are NOT in the MIS but are each other's... they have no
        # neighbours inside the outer part, so label them OUT via a pointer
        # towards the inner node is not allowed; instead build the instance
        # where the outer labels say OUT (the inner node must then join).
        from repro.semigraph import HalfEdge, HalfEdgeLabeling

        partial = HalfEdgeLabeling(
            {
                HalfEdge(0, edge_id_for(0, 1)): OUT,
                HalfEdge(2, edge_id_for(1, 2)): OUT,
            }
        )
        instance = build_edge_list_instance(MIS, semigraph, inner, partial)
        labeling = MISEdgeListSolver().solve(instance)
        assert verify_edge_list_solution(instance, labeling).ok
        assert all(labeling[h] == IN_MIS for h in inner.half_edges())


class TestColoringEdgeListSolver:
    def test_respects_outside_colours(self):
        tree = nx.star_graph(4)
        semigraph = semigraph_from_graph(tree)
        inner = restrict_to_nodes(semigraph, {0})  # the centre
        outer = restrict_to_nodes(semigraph, {1, 2, 3, 4})
        partial = COLORING.from_classic(outer, {1: 1, 2: 2, 3: 1, 4: 2})
        instance = build_edge_list_instance(COLORING, semigraph, inner, partial)
        labeling = ColoringEdgeListSolver().solve(instance)
        assert verify_edge_list_solution(instance, labeling).ok
        colour = COLORING.to_classic(semigraph, labeling.merge(partial))[0]
        assert colour == 3

    def test_colour_stays_within_degree_plus_one(self):
        tree = random_tree(30, seed=12)
        semigraph = semigraph_from_graph(tree)
        from repro.semigraph import HalfEdgeLabeling

        instance = build_edge_list_instance(
            COLORING, semigraph, semigraph, HalfEdgeLabeling()
        )
        labeling = ColoringEdgeListSolver().solve(instance)
        assert verify_edge_list_solution(instance, labeling).ok


class TestBacktrackingSolver:
    def test_agrees_with_greedy_on_small_mis_instance(self):
        tree = nx.path_graph(4)
        semigraph = semigraph_from_graph(tree)
        from repro.semigraph import HalfEdgeLabeling

        instance = build_edge_list_instance(MIS, semigraph, semigraph, HalfEdgeLabeling())
        solver = BacktrackingListSolver([IN_MIS, POINTER, OUT])
        labeling = solver.solve_edge_list(instance)
        assert verify_edge_list_solution(instance, labeling).ok

    def test_small_matching_node_list(self):
        graph = nx.path_graph(3)
        semigraph = semigraph_from_graph(graph)
        from repro.problems.matching import MATCHED, POINTER as MP, UNMATCHED
        from repro.problems.base import DUMMY
        from repro.semigraph import HalfEdgeLabeling

        instance = build_node_list_instance(
            MATCHING, semigraph, semigraph, HalfEdgeLabeling()
        )
        solver = BacktrackingListSolver([MATCHED, MP, UNMATCHED, DUMMY])
        labeling = solver.solve_node_list(instance)
        assert verify_node_list_solution(instance, labeling).ok

    def test_unsolvable_instance_raises(self):
        graph = nx.path_graph(2)
        semigraph = semigraph_from_graph(graph)
        from repro.semigraph import HalfEdgeLabeling

        instance = build_edge_list_instance(MIS, semigraph, semigraph, HalfEdgeLabeling())
        solver = BacktrackingListSolver([POINTER])  # P-only labels can never work
        with pytest.raises(SequentialSolverError):
            solver.solve_edge_list(instance)


class TestDefaultSolverRegistry:
    def test_node_list_defaults(self):
        assert isinstance(
            default_node_list_solver(EDGE_COLORING), EdgeColoringNodeListSolver
        )
        assert isinstance(default_node_list_solver(MATCHING), MatchingNodeListSolver)
        with pytest.raises(SequentialSolverError):
            default_node_list_solver(MIS)

    def test_edge_list_defaults(self):
        assert isinstance(default_edge_list_solver(MIS), MISEdgeListSolver)
        assert isinstance(default_edge_list_solver(COLORING), ColoringEdgeListSolver)
        with pytest.raises(SequentialSolverError):
            default_edge_list_solver(MATCHING)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=3, max_value=30), st.integers(min_value=0, max_value=2000))
def test_property_lemma_16_on_fresh_trees(n, seed):
    """The Lemma 16 process always produces a valid (edge-degree+1) colouring."""
    from repro.problems import verify_solution
    from repro.problems.classic import is_edge_degree_plus_one_coloring
    from repro.semigraph import HalfEdgeLabeling

    tree = random_tree(n, seed=seed)
    semigraph = semigraph_from_graph(tree)
    instance = build_node_list_instance(
        EDGE_COLORING, semigraph, semigraph, HalfEdgeLabeling()
    )
    labeling = EdgeColoringNodeListSolver().solve(instance)
    assert verify_solution(EDGE_COLORING, semigraph, labeling).ok
    assert is_edge_degree_plus_one_coloring(tree, EDGE_COLORING.to_classic(semigraph, labeling))
