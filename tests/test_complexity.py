"""Tests for the complexity model: f, g(n) and the analytic predictions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complexity import (
    choose_k,
    linear,
    log_star,
    mm_mis_tree_bound,
    polylog,
    polynomial,
    predicted_rounds_arboricity,
    predicted_rounds_tree,
    quadratic,
    solve_g,
    sqrt_delta_log,
)


class TestLogStar:
    def test_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536 if False else 10**9) == 5

    def test_monotone(self):
        values = [log_star(n) for n in (1, 2, 10, 1000, 10**6, 10**12)]
        assert values == sorted(values)


class TestComplexityFunctions:
    def test_zero_at_zero(self):
        for f in (linear(), quadratic(), polynomial(1.5), polylog(12), sqrt_delta_log()):
            assert f(0) == 0.0

    def test_linear_and_quadratic(self):
        assert linear()(7) == 7
        assert linear(2.0)(7) == 14
        assert quadratic()(3) == 9
        assert polynomial(3)(2) == 8

    def test_polylog(self):
        f = polylog(12)
        assert f(1) == 0.0
        assert f(2) == pytest.approx(1.0)
        assert f(4) == pytest.approx(2.0**12)

    def test_sqrt_delta_log(self):
        f = sqrt_delta_log()
        assert f(4) == pytest.approx(2.0 * 2.0)


class TestSolveG:
    def test_linear_f_gives_g_to_the_g(self):
        # g^g = n  <=>  g log g = log n.
        f = linear()
        for n in (10, 1000, 10**6, 10**9):
            g = solve_g(f, n)
            assert g**g == pytest.approx(n, rel=1e-3)

    def test_constant_exponent_polynomial(self):
        # f(x) = x^2: g^(g^2) = n.
        f = polynomial(2)
        g = solve_g(f, 10**6)
        assert g ** (g**2) == pytest.approx(10**6, rel=1e-3)

    def test_polylog_12_matches_theorem_3_exponent(self):
        # With f(Δ) = log^12 Δ, Theorem 3 predicts f(g(n)) = Θ(log^{12/13} n):
        # log2(g) should equal (log2 n)^{1/13}.
        f = polylog(12)
        for exponent in (20, 60, 200, 1000):
            n = 2.0**exponent
            g = solve_g(f, n)
            # f(g) * log2(g) = log2(n)  =>  log2(g)^13 = log2(n)
            assert math.log2(g) ** 13 == pytest.approx(
                math.log2(n) * math.log(2) / math.log(2), rel=1e-2
            )
            predicted = f(g)
            expected = math.log2(n) ** (12 / 13)
            # The natural-log vs log2 choice shifts constants; the exponent matches.
            assert predicted == pytest.approx(expected, rel=0.35)

    def test_small_n(self):
        assert solve_g(linear(), 1) == 1.0
        assert solve_g(linear(), 0.5) == 1.0

    def test_tiny_f_returns_n(self):
        # If even g = n cannot reach the target, solve_g caps at n.
        f = polylog(1, scale=1e-6)
        assert solve_g(f, 100) == 100

    def test_monotone_in_n(self):
        f = polylog(2)
        values = [solve_g(f, n) for n in (10, 10**3, 10**6, 10**12)]
        assert values == sorted(values)


class TestChooseKAndPredictions:
    def test_choose_k_minimum(self):
        assert choose_k(quadratic(), 10) >= 2

    def test_choose_k_rho_scales(self):
        f = polylog(2)
        n = 10**9
        assert choose_k(f, n, rho=2) >= choose_k(f, n, rho=1)

    def test_tree_prediction_strongly_sublogarithmic_for_polylog(self):
        from repro.core.complexity import (
            mm_mis_tree_bound_from_log2,
            predicted_rounds_tree_from_log2,
        )

        f = polylog(12)
        # The log^{12/13} n vs log n / log log n separation is asymptotic;
        # for exponent 12 it only manifests at enormous sizes, so the check
        # is done purely in log-space (n = 2^(10^35)).
        log2_n = 1e35
        predicted = predicted_rounds_tree_from_log2(f, log2_n)
        barrier = mm_mis_tree_bound_from_log2(log2_n)
        assert predicted < barrier  # beats the MIS/MM Ω(log n / log log n) barrier
        # For a milder truly local complexity (log² Δ) the separation already
        # shows up at n = 2^10000.
        assert predicted_rounds_tree_from_log2(polylog(2), 1e4) < mm_mis_tree_bound_from_log2(1e4)

    def test_tree_prediction_matches_mm_bound_for_linear(self):
        # f(Δ) = Δ reproduces the Θ(log n / log log n) bound of [BE10/BE13].
        f = linear()
        n = 2.0**64
        predicted = predicted_rounds_tree(f, n)
        reference = mm_mis_tree_bound(n)
        assert 0.3 * reference <= predicted <= 3.5 * reference

    def test_arboricity_prediction_requires_large_enough_rho(self):
        f = polylog(12)
        with pytest.raises(ValueError):
            predicted_rounds_arboricity(f, 2.0**40, arboricity=10**9, rho=1)

    def test_arboricity_prediction_within_constant_factor_of_tree_case(self):
        # With rho = 2 the arboricity formula charges f(g^2) <= 2^12 * f(g),
        # a constant factor: the prediction stays within that factor of the
        # plain tree prediction (Theorem 3's O(·) absorbs it).
        f = polylog(12)
        n = 2.0**200
        tree_like = predicted_rounds_arboricity(f, n, arboricity=1, rho=2)
        tree = predicted_rounds_tree(f, n)
        assert tree <= tree_like <= 2**12 * tree + 10

    def test_mm_mis_bound_monotone(self):
        values = [mm_mis_tree_bound(n) for n in (10, 100, 10**4, 10**8)]
        assert values == sorted(values)

    def test_predictions_zero_for_tiny_n(self):
        assert predicted_rounds_tree(linear(), 1) == 0.0
        assert predicted_rounds_arboricity(linear(), 1, 1) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(["linear", "quadratic", "polylog2", "polylog12", "sqrt"]),
    st.floats(min_value=10.0, max_value=1e30),
)
def test_property_solve_g_satisfies_defining_equation(kind, n):
    f = {
        "linear": linear(),
        "quadratic": quadratic(),
        "polylog2": polylog(2),
        "polylog12": polylog(12),
        "sqrt": sqrt_delta_log(),
    }[kind]
    g = solve_g(f, n)
    assert 1.0 <= g <= n
    if g < n:  # interior solution: the defining equation holds
        assert f(g) * math.log(g) == pytest.approx(math.log(n), rel=1e-4, abs=1e-6)


class TestOracleCostModelChargedRounds:
    """The analytic black-box charge: rounding convention and validation."""

    def _model(self, fn, name="test-model"):
        from repro.core.complexity import ComplexityFunction
        from repro.core.interfaces import OracleCostModel

        return OracleCostModel(name, ComplexityFunction("test-f", fn))

    def test_charge_is_f_plus_log_star(self):
        model = self._model(lambda x: 100.0)
        assert model.charged_rounds(8, 2**16) == 100 + log_star(2**16)

    def test_rounding_convention_is_bankers(self):
        """int(round(...)) rounds halves to the even neighbour: 2.5 -> 2,
        3.5 -> 4.  Pinned so a reimplementation cannot silently change the
        charged account by one round."""
        assert self._model(lambda x: 2.5).charged_rounds(3, 2) == 2 + log_star(2)
        assert self._model(lambda x: 3.5).charged_rounds(3, 2) == 4 + log_star(2)
        assert self._model(lambda x: 3.4999).charged_rounds(3, 2) == 3 + log_star(2)

    def test_degree_and_n_floors(self):
        seen = []
        model = self._model(lambda x: seen.append(x) or float(x))
        model.charged_rounds(0, 0)
        assert seen == [1]  # degree floored to 1; n floored to 2 in log*

    def test_zero_complexity_is_a_valid_charge(self):
        # polylog models legitimately return 0 at degree 1.
        model = self._model(polylog(12).fn)
        assert model.charged_rounds(1, 2**16) == log_star(2**16)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf"), -1.0, -0.001]
    )
    def test_invalid_complexity_output_raises_with_model_name(self, bad):
        model = self._model(lambda x: bad, name="broken-oracle")
        with pytest.raises(ValueError, match="broken-oracle"):
            model.charged_rounds(8, 100)

    def test_error_names_the_offending_value(self):
        model = self._model(lambda x: -7.0, name="negative-oracle")
        with pytest.raises(ValueError, match="-7.0"):
            model.charged_rounds(8, 100)
