"""Tests for the truly local baselines: edge colouring, MIS, maximal matching."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    edge_degree_plus_one_coloring,
    maximal_independent_set,
    maximal_matching,
)
from repro.generators import (
    balanced_regular_tree,
    caterpillar,
    random_graph_with_max_degree,
    random_tree,
)
from repro.problems.classic import (
    is_edge_degree_plus_one_coloring,
    is_maximal_independent_set,
    is_maximal_matching,
)

GRAPHS = {
    "path": nx.path_graph(40),
    "cycle": nx.cycle_graph(25),
    "star": nx.star_graph(12),
    "clique": nx.complete_graph(6),
    "balanced-tree": balanced_regular_tree(3, 4),
    "caterpillar": caterpillar(15, 2),
    "random-tree": random_tree(70, seed=2),
    "bounded-degree": random_graph_with_max_degree(60, 4, seed=9),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestEdgeColoringBaseline:
    def test_valid_coloring(self, name):
        graph = GRAPHS[name]
        run = edge_degree_plus_one_coloring(graph)
        assert is_edge_degree_plus_one_coloring(graph, run.colours)

    def test_round_accounting(self, name):
        graph = GRAPHS[name]
        run = edge_degree_plus_one_coloring(graph)
        assert run.rounds == 2 * run.line_graph_rounds


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestMISBaseline:
    def test_valid_mis(self, name):
        graph = GRAPHS[name]
        run = maximal_independent_set(graph)
        assert is_maximal_independent_set(graph, run.independent_set)

    def test_round_breakdown(self, name):
        graph = GRAPHS[name]
        run = maximal_independent_set(graph)
        assert run.rounds == run.coloring_rounds + run.sweep_rounds


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestMatchingBaseline:
    def test_valid_matching(self, name):
        graph = GRAPHS[name]
        run = maximal_matching(graph)
        matching = [tuple(edge) for edge in run.matching]
        assert is_maximal_matching(graph, matching)

    def test_round_breakdown(self, name):
        graph = GRAPHS[name]
        run = maximal_matching(graph)
        assert run.rounds == run.edge_coloring_rounds + run.sweep_rounds


class TestTrulyLocalScaling:
    """The baselines' round counts depend on Δ, not on n (the defining
    property of a truly local algorithm)."""

    def test_mis_rounds_independent_of_n_on_paths(self):
        rounds = [maximal_independent_set(nx.path_graph(n)).rounds for n in (50, 400, 1500)]
        assert max(rounds) - min(rounds) <= 3

    def test_matching_rounds_independent_of_n_on_paths(self):
        rounds = [maximal_matching(nx.path_graph(n)).rounds for n in (50, 400)]
        assert max(rounds) - min(rounds) <= 6

    def test_mis_rounds_grow_with_degree(self):
        low = maximal_independent_set(random_graph_with_max_degree(80, 3, seed=1)).rounds
        high = maximal_independent_set(random_graph_with_max_degree(80, 10, seed=1)).rounds
        assert high > low

    def test_empty_graphs(self):
        assert maximal_independent_set(nx.Graph()).independent_set == set()
        assert maximal_matching(nx.Graph()).matching == set()
        assert edge_degree_plus_one_coloring(nx.Graph()).colours == {}

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        run = maximal_independent_set(graph)
        assert run.independent_set == set(range(5))
        assert maximal_matching(graph).matching == set()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=2000))
def test_property_baselines_on_random_trees(n, seed):
    tree = random_tree(n, seed=seed)
    assert is_maximal_independent_set(tree, maximal_independent_set(tree).independent_set)
    assert is_maximal_matching(tree, [tuple(e) for e in maximal_matching(tree).matching])
    assert is_edge_degree_plus_one_coloring(tree, edge_degree_plus_one_coloring(tree).colours)
