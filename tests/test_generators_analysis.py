"""Tests for the instance generators and the analysis helpers."""

import math

import networkx as nx
import pytest

from repro.analysis import Measurement, MeasurementTable, fit_power_of_log, growth_exponent
from repro.generators import (
    balanced_regular_tree,
    binary_tree,
    broom,
    caterpillar,
    forest_union,
    grid_graph,
    path_graph,
    planar_triangulation_like,
    random_graph_with_max_degree,
    random_tree,
    spider,
    star_graph,
)


class TestTreeGenerators:
    def test_path_and_star(self):
        assert nx.is_tree(path_graph(10))
        assert path_graph(10).number_of_nodes() == 10
        assert nx.is_tree(star_graph(10))
        assert star_graph(10).degree(0) == 9

    def test_binary_tree(self):
        tree = binary_tree(15)
        assert nx.is_tree(tree)
        assert max(d for _, d in tree.degree()) == 3

    def test_balanced_regular_tree_structure(self):
        tree = balanced_regular_tree(4, 3)
        assert nx.is_tree(tree)
        leaves = [v for v in tree.nodes() if tree.degree(v) == 1]
        internal = [v for v in tree.nodes() if tree.degree(v) > 1]
        assert all(tree.degree(v) == 4 for v in internal)
        distances = nx.single_source_shortest_path_length(tree, 0)
        assert {distances[leaf] for leaf in leaves} == {3}

    def test_balanced_regular_tree_rejects_degree_one(self):
        with pytest.raises(ValueError):
            balanced_regular_tree(1, 3)

    def test_caterpillar_and_spider_and_broom(self):
        assert nx.is_tree(caterpillar(10, 3))
        assert caterpillar(10, 3).number_of_nodes() == 10 + 30
        assert nx.is_tree(spider(5, 4))
        assert spider(5, 4).degree(0) == 5
        assert nx.is_tree(broom(10, 7))

    def test_random_tree_is_tree_and_seeded(self):
        first = random_tree(50, seed=3)
        second = random_tree(50, seed=3)
        different = random_tree(50, seed=4)
        assert nx.is_tree(first)
        assert set(first.edges()) == set(second.edges())
        assert set(first.edges()) != set(different.edges())

    def test_random_tree_tiny_sizes(self):
        assert random_tree(0).number_of_nodes() == 0
        assert random_tree(1).number_of_nodes() == 1
        assert random_tree(2).number_of_edges() == 1


class TestBoundedArboricityGenerators:
    def test_forest_union_edge_budget(self):
        for a in (1, 2, 4):
            graph = forest_union(80, a, seed=1)
            assert graph.number_of_nodes() == 80
            assert graph.number_of_edges() <= a * 79

    def test_grid_is_planar_sized(self):
        graph = grid_graph(6, 7)
        assert graph.number_of_nodes() == 42
        assert graph.number_of_edges() == 6 * 6 + 7 * 5

    def test_planar_triangulation_like_edge_count(self):
        graph = planar_triangulation_like(50, seed=2)
        assert graph.number_of_nodes() == 50
        assert graph.number_of_edges() == 3 * 50 - 6  # maximal planar edge count
        assert nx.check_planarity(graph)[0]

    def test_random_graph_with_max_degree(self):
        graph = random_graph_with_max_degree(100, 5, seed=3)
        assert max(d for _, d in graph.degree()) <= 5


class TestAnalysis:
    def test_measurement_table_rendering(self):
        table = MeasurementTable("Demo", ["n", "rounds"])
        table.add_row(100, 12)
        table.add_row(1000, 15.5)
        text = table.render()
        assert "Demo" in text and "rounds" in text and "15.50" in text

    def test_measurement_table_row_width_checked(self):
        table = MeasurementTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_measurement_dataclass(self):
        m = Measurement("E1", "random-tree", 100, 12.0)
        assert m.unit == "rounds"

    def test_fit_power_of_log_recovers_exponent(self):
        ns = [2**e for e in range(4, 40, 4)]
        beta_true, c_true = 0.75, 3.0
        values = [c_true * math.log2(n) ** beta_true for n in ns]
        beta, c = fit_power_of_log(ns, values)
        assert beta == pytest.approx(beta_true, abs=1e-6)
        assert c == pytest.approx(c_true, rel=1e-6)

    def test_growth_exponent_distinguishes_log_from_sublog(self):
        ns = [2**e for e in range(6, 60, 6)]
        logarithmic = [math.log2(n) for n in ns]
        sublogarithmic = [math.log2(n) ** 0.6 for n in ns]
        assert growth_exponent(ns, logarithmic) == pytest.approx(1.0, abs=0.01)
        assert growth_exponent(ns, sublogarithmic) == pytest.approx(0.6, abs=0.01)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_of_log([2], [1.0])
