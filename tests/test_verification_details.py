"""Additional coverage for the verification layer and transform bookkeeping."""

import networkx as nx

from repro.baselines import MISAlgorithm
from repro.core import solve_on_tree
from repro.generators import random_tree
from repro.problems import MaximalIndependentSetProblem, verify_solution
from repro.problems.mis import IN_MIS, OUT
from repro.problems.verification import VerificationResult, Violation
from repro.semigraph import HalfEdge, HalfEdgeLabeling, semigraph_from_graph
from repro.semigraph.builders import edge_id_for

MIS = MaximalIndependentSetProblem()


class TestVerificationReporting:
    def test_partial_verification_skips_unlabeled_subjects(self):
        graph = nx.path_graph(3)
        semigraph = semigraph_from_graph(graph)
        labeling = HalfEdgeLabeling(
            {
                HalfEdge(0, edge_id_for(0, 1)): IN_MIS,
                HalfEdge(1, edge_id_for(0, 1)): OUT,
            }
        )
        strict = verify_solution(MIS, semigraph, labeling)
        assert not strict.ok
        assert all(v.kind == "unlabeled" for v in strict.violations)
        relaxed = verify_solution(MIS, semigraph, labeling, require_complete=False)
        # Node 1 and edge (1,2) are only partially labeled and therefore not
        # checked; the labeled edge (0,1) is valid, so nothing is reported.
        assert relaxed.ok

    def test_violation_rendering_and_summary(self):
        violation = Violation("node", 7, (IN_MIS, OUT), "node configuration not allowed")
        text = str(violation)
        assert "node" in text and "7" in text
        result = VerificationResult(ok=False, violations=[violation])
        assert not bool(result)
        assert "1 violations" in result.summary()
        assert VerificationResult(ok=True).summary() == "valid solution"

    def test_invalid_labels_are_reported_per_subject(self):
        graph = nx.path_graph(2)
        semigraph = semigraph_from_graph(graph)
        labeling = HalfEdgeLabeling(
            {
                HalfEdge(0, edge_id_for(0, 1)): IN_MIS,
                HalfEdge(1, edge_id_for(0, 1)): IN_MIS,
            }
        )
        result = verify_solution(MIS, semigraph, labeling)
        kinds = {v.kind for v in result.violations}
        assert kinds == {"edge"}  # both node configurations are fine (all-M)


class TestTransformBookkeeping:
    def test_labeling_covers_every_half_edge_exactly_once(self):
        tree = random_tree(80, seed=19)
        result = solve_on_tree(tree, MISAlgorithm())
        semigraph = semigraph_from_graph(tree)
        assert result.labeling.is_complete(semigraph)
        assert len(result.labeling) == 2 * tree.number_of_edges()

    def test_details_report_partition_sizes(self):
        tree = random_tree(80, seed=20)
        result = solve_on_tree(tree, MISAlgorithm())
        details = result.details
        assert details["compressed_nodes"] + details["raked_nodes"] == 80
        assert details["iterations"] >= 1
        assert isinstance(details["raked_component_diameters"], list)

    def test_repr_smoke(self):
        tree = random_tree(20, seed=21)
        result = solve_on_tree(tree, MISAlgorithm())
        assert "TransformResult" in repr(result)
        assert "RoundLedger" in repr(result.ledger)
