"""End-to-end integration tests tied to the paper's claims.

These tests exercise the full stack (generators → decomposition → truly
local baselines on the simulator → sequential list solvers → verification)
and cross-check the outputs against independent implementations
(networkx, the classic verifiers, the backtracking solver).
"""

import math

import networkx as nx
import pytest

from repro.baselines import (
    DegPlusOneColoringAlgorithm,
    EdgeColoringAlgorithm,
    MISAlgorithm,
    MaximalMatchingAlgorithm,
    OracleCostModel,
)
from repro.core import (
    polylog,
    solve_on_bounded_arboricity,
    solve_on_tree,
)
from repro.core.complexity import (
    linear,
    mm_mis_tree_bound,
    predicted_rounds_tree,
    solve_g,
)
from repro.generators import balanced_regular_tree, planar_triangulation_like, random_tree
from repro.problems.classic import (
    is_deg_plus_one_coloring,
    is_edge_degree_plus_one_coloring,
    is_maximal_independent_set,
    is_maximal_matching,
)


class TestTheorem3EndToEnd:
    """Theorem 3: (edge-degree+1)-edge colouring on trees and planar graphs."""

    def test_tree_output_uses_few_colours(self):
        tree = balanced_regular_tree(3, 6)
        result = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
        colours = dict(result.classic)
        assert is_edge_degree_plus_one_coloring(tree, colours)
        # Edge-degree of a 3-regular tree is at most 4, so at most 5 colours.
        assert max(colours.values()) <= 5

    def test_planar_graph(self):
        graph = planar_triangulation_like(250, seed=3)
        result = solve_on_bounded_arboricity(graph, 3, EdgeColoringAlgorithm())
        assert result.verification.ok
        assert is_edge_degree_plus_one_coloring(graph, dict(result.classic))

    def test_number_of_colours_never_exceeds_two_delta_minus_one(self):
        # (2Δ-1)-edge colouring is implied by (edge-degree+1)-edge colouring.
        tree = random_tree(300, seed=5)
        max_degree = max(d for _, d in tree.degree())
        result = solve_on_bounded_arboricity(tree, 1, EdgeColoringAlgorithm())
        assert max(dict(result.classic).values()) <= 2 * max_degree - 1

    def test_charged_rounds_below_barrier_requires_asymptotics(self):
        """At practical n the log^12 constant dominates; the separation is an
        asymptotic statement (checked analytically in E8), so at n=1000 the
        charged rounds are far above log n — and that is expected."""
        tree = random_tree(1000, seed=6)
        model = OracleCostModel("bbko22b", polylog(12))
        result = solve_on_bounded_arboricity(
            tree, 1, EdgeColoringAlgorithm(), cost_model=model
        )
        assert result.charged_rounds > math.log2(1000)


class TestTheorem12Claims:
    def test_mis_on_trees_matches_networkx_maximality(self):
        tree = random_tree(400, seed=7)
        result = solve_on_tree(tree, MISAlgorithm())
        mis = result.classic
        assert is_maximal_independent_set(tree, mis)
        # Cross-check with networkx: our MIS is at least as large as half of
        # a greedy networkx MIS is not guaranteed, but both must dominate the
        # graph; check domination explicitly.
        dominated = set(mis)
        for node in mis:
            dominated.update(tree.neighbors(node))
        assert dominated == set(tree.nodes())

    def test_coloring_on_trees_uses_at_most_three_colours_when_k_small(self):
        # (deg+1)-colouring on a path must use at most 3 colours.
        path = nx.path_graph(200)
        result = solve_on_tree(path, DegPlusOneColoringAlgorithm())
        assert is_deg_plus_one_coloring(path, result.classic)
        assert max(result.classic.values()) <= 3

    def test_every_node_labelled_exactly_once(self):
        tree = random_tree(250, seed=8)
        result = solve_on_tree(tree, MISAlgorithm())
        labelled_half_edges = len(result.labeling)
        assert labelled_half_edges == 2 * tree.number_of_edges()


class TestMatchingClaims:
    def test_matching_on_tree_and_planar(self):
        for graph, arboricity in [
            (random_tree(500, seed=9), 1),
            (planar_triangulation_like(200, seed=10), 3),
        ]:
            result = solve_on_bounded_arboricity(graph, arboricity, MaximalMatchingAlgorithm())
            assert is_maximal_matching(graph, [tuple(e) for e in result.classic])

    def test_matching_round_shape_tracks_mm_bound(self):
        """With the linear-f cost model the charged rounds scale like the
        Θ(log n / log log n) bound the paper re-derives for matching."""
        model = OracleCostModel("pr01", linear())
        values = {}
        for n in (200, 3000):
            tree = random_tree(n, seed=11)
            result = solve_on_bounded_arboricity(
                tree, 1, MaximalMatchingAlgorithm(), cost_model=model
            )
            values[n] = result.charged_rounds
        # Larger instances need at least as many charged rounds, and the
        # growth is modest (logarithmic-ish), not linear in n.
        assert values[3000] >= values[200]
        assert values[3000] <= 10 * values[200]


class TestGFunctionConsistency:
    def test_k_choice_matches_g(self):
        tree = random_tree(800, seed=12)
        algorithm = MISAlgorithm()
        result = solve_on_tree(tree, algorithm)
        g_value = solve_g(algorithm.complexity, 800)
        assert result.k == max(2, math.ceil(g_value))

    def test_predicted_rounds_for_linear_f_matches_bound_shape(self):
        for n in (10**3, 10**6, 10**9):
            predicted = predicted_rounds_tree(linear(), n)
            barrier = mm_mis_tree_bound(n)
            assert 0.25 * barrier <= predicted <= 4 * barrier + 10


class TestCrossSolverConsistency:
    def test_backtracking_agrees_with_pipeline_on_tiny_trees(self):
        """On tiny instances the generic backtracking solver must also find a
        valid completion of the residual instance produced by the pipeline —
        an independent witness that the residual instances are solvable."""
        from repro.core.sequential import BacktrackingListSolver
        from repro.decomposition import rake_and_compress
        from repro.problems import MaximalIndependentSetProblem
        from repro.problems.lists import build_edge_list_instance, verify_edge_list_solution
        from repro.problems.mis import IN_MIS, OUT, POINTER
        from repro.semigraph import restrict_to_nodes, semigraph_from_graph

        problem = MaximalIndependentSetProblem()
        algorithm = MISAlgorithm()
        for seed in range(3):
            tree = random_tree(12, seed=seed)
            semigraph = semigraph_from_graph(tree)
            decomposition = rake_and_compress(tree, 2)
            compressed = decomposition.compressed_nodes
            raked = decomposition.raked_nodes
            if not compressed or not raked:
                continue
            partial, _ = algorithm.solve_semigraph(restrict_to_nodes(semigraph, compressed))
            instance = build_edge_list_instance(
                problem, semigraph, restrict_to_nodes(semigraph, raked), partial
            )
            labeling = BacktrackingListSolver([IN_MIS, POINTER, OUT]).solve_edge_list(instance)
            assert verify_edge_list_solution(instance, labeling).ok
