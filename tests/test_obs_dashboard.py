"""Dashboard rendering, the ``metrics``/``dashboard`` CLI subcommands
and the CI SLO burn-check script."""

import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import ResultStore, get_suite, run_cell
from repro.experiments.cli import main
from repro.experiments.spec import ANALYTIC_GENERATOR
from repro.obs import MetricsRegistry
from repro.obs.dashboard import render_dashboard
from repro.service import ResultCollector

REPO_ROOT = Path(__file__).resolve().parent.parent
BURN_CHECK = REPO_ROOT / "scripts" / "slo_burn_check.py"
TOKEN = "dashboard-suite-token"


def clean_scrape() -> str:
    """A healthy scrape: every SLO passes and one histogram renders."""
    registry = MetricsRegistry()
    registry.counter("collector_records_ingested_total", "x").inc(3)
    fates = registry.counter("collector_records_total", "x", ("fate",))
    fates.labels(fate="accepted").inc(3)
    fates.labels(fate="dropped")  # present with value 0
    latency = registry.histogram(
        "service_request_seconds", "x", ("server", "verb"),
        buckets=(0.01, 0.1, 1.0),
    )
    latency.labels(server="collector", verb="push").observe(0.005)
    return registry.render()


def burning_scrape() -> str:
    registry = MetricsRegistry()
    registry.counter(
        "collector_records_total", "x", ("fate",)
    ).labels(fate="dropped").inc(2)
    return registry.render()


class FakeTable:
    def __init__(self, title):
        self.title = title
        self.columns = ["n", "value"]
        self.rows = [[10, "1.5"], [20, "2.5"]]


class FakeBundle:
    """Duck-typed stand-in for ReportBundle."""

    def __init__(self, all_verified=True, theorem3_beta=0.5):
        self.all_verified = all_verified
        self.theorem3_beta = theorem3_beta
        self.summaries = {"a": None, "b": None}
        self.scaling = FakeTable("Scaling <table>")
        self.fits = FakeTable("Fits")
        self.scenario_tables = [FakeTable("Scenario a")]


class TestRenderDashboard:
    def test_empty_inputs_render_a_placeholder(self):
        html = render_dashboard()
        assert "Nothing to show" in html
        assert "<!DOCTYPE html>" in html

    def test_metrics_only_page(self):
        html = render_dashboard(metrics_text=clean_scrape())
        assert "Service-level objectives" in html
        # Status is icon + label, never colour alone.
        assert "✓ all ok" in html
        assert "BURNING" not in html
        # Histogram family gets a quantile row; raw scrape is included.
        assert "service_request_seconds" in html
        assert "Raw Prometheus exposition" in html

    def test_burning_slo_is_flagged(self):
        html = render_dashboard(metrics_text=burning_scrape())
        assert "✗" in html and "BURNING" in html
        assert "1 burning" in html

    def test_bundle_tables_and_tiles(self):
        html = render_dashboard(bundle=FakeBundle())
        assert "All cells verified" in html and "✓ yes" in html
        assert "0.500" in html and "sublogarithmic" in html
        # Table titles are HTML-escaped.
        assert "Scaling &lt;table&gt;" in html
        assert "<th>n</th>" in html

    def test_unverified_bundle_shows_a_cross(self):
        html = render_dashboard(bundle=FakeBundle(all_verified=False))
        assert "✗ NO" in html

    def test_metrics_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "c_total", "x", ("verb",)
        ).labels(verb="<script>alert(1)</script>").inc()
        html = render_dashboard(metrics_text=registry.render())
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_title_is_escaped(self):
        html = render_dashboard(
            metrics_text=clean_scrape(), title="<b>sweep</b>"
        )
        assert "<title>&lt;b&gt;sweep&lt;/b&gt;</title>" in html


class TestBurnCheckScript:
    def run_check(self, *argv):
        return subprocess.run(
            [sys.executable, str(BURN_CHECK), *map(str, argv)],
            capture_output=True, text=True,
        )

    def test_clean_scrape_passes(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")
        proc = self.run_check(scrape)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "BURNING" not in proc.stdout

    def test_burning_scrape_fails(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(burning_scrape(), encoding="utf-8")
        proc = self.run_check(scrape)
        assert proc.returncode == 1
        assert "BURNING" in proc.stdout
        assert "zero-dropped-records" in proc.stdout

    def test_unreadable_scrape_is_exit_2(self, tmp_path):
        assert self.run_check(tmp_path / "missing.prom").returncode == 2

    def test_store_count_match_passes(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")  # ingested = 3
        store = tmp_path / "results.jsonl"
        store.write_text('{"a":1}\n{"a":2}\n{"a":3}\n', encoding="utf-8")
        proc = self.run_check(scrape, "--store", store)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ingest-completeness: counter=3 store_records=3" in proc.stdout

    def test_store_count_mismatch_burns(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")  # ingested = 3
        store = tmp_path / "results.jsonl"
        store.write_text('{"a":1}\n', encoding="utf-8")
        proc = self.run_check(scrape, "--store", store)
        assert proc.returncode == 1
        assert "counter=3 store_records=1" in proc.stdout

    def test_store_without_ingest_counter_burns(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(burning_scrape(), encoding="utf-8")
        store = tmp_path / "results.jsonl"
        store.write_text("", encoding="utf-8")
        proc = self.run_check(scrape, "--store", store)
        assert proc.returncode == 1
        assert "no collector_records_ingested_total" in proc.stdout


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)
class TestMetricsAndDashboardCLI:
    @pytest.fixture()
    def collector(self, tmp_path):
        collector = ResultCollector(
            out=tmp_path / "central",
            socket_path=tmp_path / "obs.sock",
            token=TOKEN,
        )
        collector.start()
        yield collector
        collector.close()

    def test_metrics_scrape_to_file(self, collector, tmp_path, capsys):
        out = tmp_path / "scrapes" / "metrics.prom"
        code = main([
            "metrics", "--connect", str(collector.socket_path),
            "--token", TOKEN, "--out", str(out),
        ])
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert "# TYPE collector_records_ingested_total counter" in text
        assert "collector_uptime_seconds" in text

    def test_metrics_scrape_to_stdout(self, collector, capsys):
        code = main([
            "metrics", "--connect", str(collector.socket_path), "--token", TOKEN,
        ])
        assert code == 0
        assert "# HELP collector_records_total" in capsys.readouterr().out

    def test_metrics_bad_endpoint_is_exit_2(self, tmp_path, capsys):
        code = main(["metrics", "--connect", str(tmp_path / "nope.sock")])
        assert code == 2

    def test_dashboard_from_saved_scrape(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")
        html_path = tmp_path / "pages" / "dash.html"
        code = main([
            "dashboard", "--no-report", "--metrics", str(scrape),
            "--html", str(html_path), "--title", "CI snapshot",
        ])
        assert code == 0
        html = html_path.read_text(encoding="utf-8")
        assert "<title>CI snapshot</title>" in html
        assert "Service-level objectives" in html

    def test_dashboard_from_live_collector(self, collector, tmp_path, capsys):
        html_path = tmp_path / "dash.html"
        code = main([
            "dashboard", "--no-report", "--connect", str(collector.socket_path),
            "--token", TOKEN, "--html", str(html_path),
        ])
        assert code == 0
        assert "collector_uptime_seconds" in html_path.read_text(encoding="utf-8")

    def test_dashboard_metrics_and_connect_conflict(self, tmp_path, capsys):
        code = main([
            "dashboard", "--metrics", "x.prom", "--connect", "y.sock",
            "--html", str(tmp_path / "dash.html"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dashboard_with_nothing_to_render_is_exit_2(self, tmp_path, capsys):
        code = main([
            "dashboard", "--out", str(tmp_path / "empty-store"),
            "--html", str(tmp_path / "dash.html"),
        ])
        assert code == 2
        assert "nothing to render" in capsys.readouterr().err

    def test_dashboard_over_a_result_store(self, tmp_path, capsys):
        """The report path: analytic cells are cheap to run for real."""
        store = ResultStore(tmp_path / "store")
        suite = get_suite("paper-claims")
        cells = [c for c in suite.cells() if c.generator == ANALYTIC_GENERATOR]
        assert cells
        for cell in cells[:4]:
            store.append(run_cell("analytic-only", cell))
        html_path = tmp_path / "dash.html"
        code = main([
            "dashboard", "--out", str(tmp_path / "store"),
            "--html", str(html_path),
        ])
        assert code == 0
        html = html_path.read_text(encoding="utf-8")
        assert "All cells verified" in html
        assert "Per-scenario detail" in html
