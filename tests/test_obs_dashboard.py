"""Dashboard rendering, the ``metrics``/``dashboard`` CLI subcommands
and the CI SLO burn-check script."""

import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import ResultStore, get_suite, run_cell
from repro.experiments.cli import main
from repro.experiments.spec import ANALYTIC_GENERATOR
from repro.obs import MetricsRegistry
from repro.obs.dashboard import render_dashboard
from repro.service import ResultCollector

REPO_ROOT = Path(__file__).resolve().parent.parent
BURN_CHECK = REPO_ROOT / "scripts" / "slo_burn_check.py"
TOKEN = "dashboard-suite-token"


def clean_scrape() -> str:
    """A healthy scrape: every SLO passes and one histogram renders."""
    registry = MetricsRegistry()
    registry.counter("collector_records_ingested_total", "x").inc(3)
    fates = registry.counter("collector_records_total", "x", ("fate",))
    fates.labels(fate="accepted").inc(3)
    fates.labels(fate="dropped")  # present with value 0
    latency = registry.histogram(
        "service_request_seconds", "x", ("server", "verb"),
        buckets=(0.01, 0.1, 1.0),
    )
    latency.labels(server="collector", verb="push").observe(0.005)
    return registry.render()


def burning_scrape() -> str:
    registry = MetricsRegistry()
    registry.counter(
        "collector_records_total", "x", ("fate",)
    ).labels(fate="dropped").inc(2)
    return registry.render()


class FakeTable:
    def __init__(self, title):
        self.title = title
        self.columns = ["n", "value"]
        self.rows = [[10, "1.5"], [20, "2.5"]]


class FakeBundle:
    """Duck-typed stand-in for ReportBundle."""

    def __init__(self, all_verified=True, theorem3_beta=0.5):
        self.all_verified = all_verified
        self.theorem3_beta = theorem3_beta
        self.summaries = {"a": None, "b": None}
        self.scaling = FakeTable("Scaling <table>")
        self.fits = FakeTable("Fits")
        self.scenario_tables = [FakeTable("Scenario a")]


class TestRenderDashboard:
    def test_empty_inputs_render_a_placeholder(self):
        html = render_dashboard()
        assert "Nothing to show" in html
        assert "<!DOCTYPE html>" in html

    def test_metrics_only_page(self):
        html = render_dashboard(metrics_text=clean_scrape())
        assert "Service-level objectives" in html
        # Status is icon + label, never colour alone.
        assert "✓ all ok" in html
        assert "BURNING" not in html
        # Histogram family gets a quantile row; raw scrape is included.
        assert "service_request_seconds" in html
        assert "Raw Prometheus exposition" in html

    def test_burning_slo_is_flagged(self):
        html = render_dashboard(metrics_text=burning_scrape())
        assert "✗" in html and "BURNING" in html
        assert "1 burning" in html

    def test_bundle_tables_and_tiles(self):
        html = render_dashboard(bundle=FakeBundle())
        assert "All cells verified" in html and "✓ yes" in html
        assert "0.500" in html and "sublogarithmic" in html
        # Table titles are HTML-escaped.
        assert "Scaling &lt;table&gt;" in html
        assert "<th>n</th>" in html

    def test_unverified_bundle_shows_a_cross(self):
        html = render_dashboard(bundle=FakeBundle(all_verified=False))
        assert "✗ NO" in html

    def test_metrics_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "c_total", "x", ("verb",)
        ).labels(verb="<script>alert(1)</script>").inc()
        html = render_dashboard(metrics_text=registry.render())
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_title_is_escaped(self):
        html = render_dashboard(
            metrics_text=clean_scrape(), title="<b>sweep</b>"
        )
        assert "<title>&lt;b&gt;sweep&lt;/b&gt;</title>" in html


class TestBurnCheckScript:
    def run_check(self, *argv):
        return subprocess.run(
            [sys.executable, str(BURN_CHECK), *map(str, argv)],
            capture_output=True, text=True,
        )

    def test_clean_scrape_passes(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")
        proc = self.run_check(scrape)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "BURNING" not in proc.stdout

    def test_burning_scrape_fails(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(burning_scrape(), encoding="utf-8")
        proc = self.run_check(scrape)
        assert proc.returncode == 1
        assert "BURNING" in proc.stdout
        assert "zero-dropped-records" in proc.stdout

    def test_unreadable_scrape_is_exit_2(self, tmp_path):
        assert self.run_check(tmp_path / "missing.prom").returncode == 2

    def test_store_count_match_passes(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")  # ingested = 3
        store = tmp_path / "results.jsonl"
        store.write_text('{"a":1}\n{"a":2}\n{"a":3}\n', encoding="utf-8")
        proc = self.run_check(scrape, "--store", store)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ingest-completeness: counter=3 store_records=3" in proc.stdout

    def test_store_count_mismatch_burns(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")  # ingested = 3
        store = tmp_path / "results.jsonl"
        store.write_text('{"a":1}\n', encoding="utf-8")
        proc = self.run_check(scrape, "--store", store)
        assert proc.returncode == 1
        assert "counter=3 store_records=1" in proc.stdout

    def test_store_without_ingest_counter_burns(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(burning_scrape(), encoding="utf-8")
        store = tmp_path / "results.jsonl"
        store.write_text("", encoding="utf-8")
        proc = self.run_check(scrape, "--store", store)
        assert proc.returncode == 1
        assert "no collector_records_ingested_total" in proc.stdout


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)
class TestMetricsAndDashboardCLI:
    @pytest.fixture()
    def collector(self, tmp_path):
        collector = ResultCollector(
            out=tmp_path / "central",
            socket_path=tmp_path / "obs.sock",
            token=TOKEN,
        )
        collector.start()
        yield collector
        collector.close()

    def test_metrics_scrape_to_file(self, collector, tmp_path, capsys):
        out = tmp_path / "scrapes" / "metrics.prom"
        code = main([
            "metrics", "--connect", str(collector.socket_path),
            "--token", TOKEN, "--out", str(out),
        ])
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert "# TYPE collector_records_ingested_total counter" in text
        assert "collector_uptime_seconds" in text

    def test_metrics_scrape_to_stdout(self, collector, capsys):
        code = main([
            "metrics", "--connect", str(collector.socket_path), "--token", TOKEN,
        ])
        assert code == 0
        assert "# HELP collector_records_total" in capsys.readouterr().out

    def test_metrics_bad_endpoint_is_exit_2(self, tmp_path, capsys):
        code = main(["metrics", "--connect", str(tmp_path / "nope.sock")])
        assert code == 2

    def test_dashboard_from_saved_scrape(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")
        html_path = tmp_path / "pages" / "dash.html"
        code = main([
            "dashboard", "--no-report", "--metrics", str(scrape),
            "--html", str(html_path), "--title", "CI snapshot",
        ])
        assert code == 0
        html = html_path.read_text(encoding="utf-8")
        assert "<title>CI snapshot</title>" in html
        assert "Service-level objectives" in html

    def test_dashboard_from_live_collector(self, collector, tmp_path, capsys):
        html_path = tmp_path / "dash.html"
        code = main([
            "dashboard", "--no-report", "--connect", str(collector.socket_path),
            "--token", TOKEN, "--html", str(html_path),
        ])
        assert code == 0
        assert "collector_uptime_seconds" in html_path.read_text(encoding="utf-8")

    def test_dashboard_metrics_and_connect_conflict(self, tmp_path, capsys):
        code = main([
            "dashboard", "--metrics", "x.prom", "--connect", "y.sock",
            "--html", str(tmp_path / "dash.html"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dashboard_with_nothing_to_render_is_exit_2(self, tmp_path, capsys):
        code = main([
            "dashboard", "--out", str(tmp_path / "empty-store"),
            "--html", str(tmp_path / "dash.html"),
        ])
        assert code == 2
        assert "nothing to render" in capsys.readouterr().err

    def test_dashboard_over_a_result_store(self, tmp_path, capsys):
        """The report path: analytic cells are cheap to run for real."""
        store = ResultStore(tmp_path / "store")
        suite = get_suite("paper-claims")
        cells = [c for c in suite.cells() if c.generator == ANALYTIC_GENERATOR]
        assert cells
        for cell in cells[:4]:
            store.append(run_cell("analytic-only", cell))
        html_path = tmp_path / "dash.html"
        code = main([
            "dashboard", "--out", str(tmp_path / "store"),
            "--html", str(html_path),
        ])
        assert code == 0
        html = html_path.read_text(encoding="utf-8")
        assert "All cells verified" in html
        assert "Per-scenario detail" in html


def write_history(tmp_path, name, build):
    """Write a spill file by driving a registry through ``build(registry,
    snap)`` where ``snap(now)`` takes one timestamped snapshot."""
    from repro.obs import ScrapeHistory

    path = tmp_path / name
    registry = MetricsRegistry()
    history = ScrapeHistory(registry, interval_s=5.0, spill_path=path)
    build(registry, history.snapshot)
    return path


class TestBurnCheckHistoryMode:
    run_check = TestBurnCheckScript.run_check

    def test_healthy_history_passes(self, tmp_path):
        def build(registry, snap):
            ingested = registry.counter("collector_records_ingested_total", "x")
            ingested.inc(5)
            snap(now=1000.0)
            ingested.inc(5)
            snap(now=1060.0)

        path = write_history(tmp_path, "ok.jsonl", build)
        proc = self.run_check("--history", path, "--window", "5m")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "dual-window burn" in proc.stdout

    def test_sustained_stall_burns(self, tmp_path):
        def build(registry, snap):
            ingested = registry.counter("collector_records_ingested_total", "x")
            ingested.inc(10)
            snap(now=1000.0)
            snap(now=1060.0)
            snap(now=1120.0)

        path = write_history(tmp_path, "stalled.jsonl", build)
        proc = self.run_check("--history", path)
        assert proc.returncode == 1
        assert "ingest-not-stalled" in proc.stdout
        assert "FAILED" in proc.stderr

    def test_empty_series_history_is_exit_3(self, tmp_path):
        def build(registry, snap):
            snap(now=1000.0)
            snap(now=1060.0)

        path = write_history(tmp_path, "nodata.jsonl", build)
        proc = self.run_check("--history", path)
        assert proc.returncode == 3
        assert "no data" in proc.stderr

    def test_usage_errors_are_exit_2(self, tmp_path):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(clean_scrape(), encoding="utf-8")
        # both inputs, neither input, window without history, bad file
        assert self.run_check(scrape, "--history", "x.jsonl").returncode == 2
        assert self.run_check().returncode == 2
        assert self.run_check(scrape, "--window", "5m").returncode == 2
        assert self.run_check("--history", tmp_path / "nope.jsonl").returncode == 2

    def test_corrupt_history_is_exit_2(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        proc = self.run_check("--history", path)
        assert proc.returncode == 2
        assert "cannot read history" in proc.stderr


class TestDiffPrimitives:
    def test_metrics_diff_flags_bad_counter_growth(self):
        from repro.obs.dashboard import render_metrics_diff

        before = clean_scrape()
        registry = MetricsRegistry()
        registry.counter("collector_records_ingested_total", "x").inc(3)
        registry.counter(
            "service_auth_failures_total", "x", ("server",)
        ).labels(server="collector").inc(2)
        html, regressions = render_metrics_diff(before, registry.render())
        assert any("service_auth_failures_total" in r for r in regressions)
        assert "REGRESSION" in html

    def test_metrics_diff_clean_is_empty(self):
        from repro.obs.dashboard import render_metrics_diff

        html, regressions = render_metrics_diff(clean_scrape(), clean_scrape())
        assert regressions == []
        assert "no regressions" in html

    @staticmethod
    def bench_payload(wall_s, scenario="mis", engine="python", n=1000):
        return {
            "entries": [{
                "scenario": scenario, "n": n, "wall_clock_s": wall_s,
                "rounds": 5, "messages": 10, "engine": engine,
            }],
        }

    def test_bench_regression_gated_by_ratio(self):
        from repro.obs.dashboard import diff_bench_payloads

        diff = diff_bench_payloads(
            self.bench_payload(1.0), self.bench_payload(3.0)
        )
        assert len(diff.regressions) == 1
        assert diff.pair_summary()[("mis", "python")] == pytest.approx(3.0)
        ok = diff_bench_payloads(
            self.bench_payload(1.0), self.bench_payload(1.5)
        )
        assert ok.regressions == []

    def test_bench_noise_floor_never_gates(self):
        from repro.obs.dashboard import diff_bench_payloads

        diff = diff_bench_payloads(
            self.bench_payload(0.001), self.bench_payload(0.04)
        )
        assert diff.regressions == []
        assert not diff.rows[0].gated

    def test_bench_only_old_and_new_entries_reported(self):
        from repro.obs.dashboard import diff_bench_payloads

        old = self.bench_payload(1.0, scenario="a")
        new = self.bench_payload(1.0, scenario="b")
        diff = diff_bench_payloads(old, new)
        assert diff.only_old and diff.only_new

    def test_bench_payload_without_entries_rejected(self):
        from repro.obs.dashboard import diff_bench_payloads

        with pytest.raises(ValueError):
            diff_bench_payloads({}, self.bench_payload(1.0))

    def test_render_bench_diff_highlights(self):
        from repro.obs.dashboard import diff_bench_payloads, render_bench_diff

        diff = diff_bench_payloads(
            self.bench_payload(1.0), self.bench_payload(3.0)
        )
        html = render_bench_diff(diff, label_old="base", label_new="pr")
        assert "REGRESSION" in html and "class=\"regression\"" in html

    def test_sparklines_render_from_history(self, tmp_path):
        from repro.obs.timeseries import load_history_jsonl

        def build(registry, snap):
            counter = registry.counter("t_total", "x")
            for t in range(4):
                counter.inc()
                snap(now=1000.0 + 60 * t)

        path = write_history(tmp_path, "spark.jsonl", build)
        html = render_dashboard(history=load_history_jsonl(path))
        assert "<svg" in html and "polyline" in html
        assert "Dual-window burn" in html


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)
class TestHistoryAndDiffCLI:
    collector = TestMetricsAndDashboardCLI.collector

    def test_metrics_history_summary(self, collector, capsys):
        collector.history.snapshot()
        code = main([
            "metrics", "--connect", str(collector.socket_path),
            "--token", TOKEN, "--history", "--window", "5m",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "history:" in out
        assert "histogram" in out

    def test_metrics_history_jsonl_round_trip(self, collector, tmp_path, capsys):
        from repro.obs.timeseries import load_history_jsonl

        collector.history.snapshot()
        out = tmp_path / "hist.jsonl"
        code = main([
            "metrics", "--connect", str(collector.socket_path),
            "--token", TOKEN, "--history", "--out", str(out),
        ])
        assert code == 0
        points = load_history_jsonl(out)
        assert len(points) >= 2

        html_path = tmp_path / "dash.html"
        code = main([
            "dashboard", "--no-report", "--history", str(out),
            "--html", str(html_path),
        ])
        assert code == 0
        html = html_path.read_text(encoding="utf-8")
        assert "<svg" in html
        assert "Dual-window burn" in html

    def test_metrics_window_requires_history(self, capsys):
        code = main(["metrics", "--connect", "x.sock", "--window", "5m"])
        assert code == 2
        assert "--window requires --history" in capsys.readouterr().err

    def test_failure_messages_name_the_endpoint(self, tmp_path, capsys):
        endpoint = tmp_path / "nope.sock"
        code = main(["metrics", "--connect", str(endpoint), "--history"])
        assert code == 2
        assert str(endpoint) in capsys.readouterr().err
        code = main([
            "dashboard", "--no-report", "--connect", str(endpoint),
            "--html", str(tmp_path / "x.html"),
        ])
        assert code == 2
        assert str(endpoint) in capsys.readouterr().err

    def test_dashboard_history_and_connect_conflict(self, tmp_path, capsys):
        code = main([
            "dashboard", "--history", "h.jsonl", "--connect", "y.sock",
            "--html", str(tmp_path / "dash.html"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_diff_bench_cli_gates(self, tmp_path, capsys):
        import json as json_module

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json_module.dumps(
            TestDiffPrimitives.bench_payload(1.0)), encoding="utf-8")
        new.write_text(json_module.dumps(
            TestDiffPrimitives.bench_payload(3.0)), encoding="utf-8")
        html_path = tmp_path / "bench-diff.html"
        code = main([
            "dashboard", "--diff-bench", str(old), str(new),
            "--html", str(html_path),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert "REGRESSION" in html_path.read_text(encoding="utf-8")
        # A looser gate lets the same pair pass.
        code = main([
            "dashboard", "--diff-bench", str(old), str(new),
            "--max-regression", "4.0", "--html", str(html_path),
        ])
        assert code == 0

    def test_diff_bench_bad_json_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        code = main([
            "dashboard", "--diff-bench", str(bad), str(bad),
            "--html", str(tmp_path / "x.html"),
        ])
        assert code == 2
        assert "bad.json" in capsys.readouterr().err

    def test_metrics_diff_cli(self, tmp_path, capsys):
        a = tmp_path / "a.prom"
        b = tmp_path / "b.prom"
        a.write_text(clean_scrape(), encoding="utf-8")
        b.write_text(clean_scrape(), encoding="utf-8")
        html_path = tmp_path / "mdiff.html"
        code = main([
            "dashboard", "--diff", str(a), str(b), "--html", str(html_path),
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out
        assert html_path.exists()

    def test_diff_modes_conflict(self, tmp_path, capsys):
        code = main([
            "dashboard", "--diff", "a", "b", "--diff-bench", "c", "d",
            "--html", str(tmp_path / "x.html"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err
