"""Tests for the (deg+1)- and (Δ+1)-vertex colouring encodings."""

import networkx as nx
import pytest

from repro.problems import DegreePlusOneColoring, DeltaPlusOneColoring, verify_solution
from repro.problems.classic import (
    is_deg_plus_one_coloring,
    is_delta_plus_one_coloring,
    is_proper_vertex_coloring,
)
from repro.semigraph import HalfEdge, HalfEdgeLabeling, semigraph_from_graph

DEG = DegreePlusOneColoring()


class TestDegreePlusOneConstraints:
    def test_node_same_colour_within_bound(self):
        assert DEG.node_config_ok((2, 2, 2))

    def test_node_colour_above_degree_plus_one_rejected(self):
        assert not DEG.node_config_ok((4, 4))  # degree 2, bound 3

    def test_node_inconsistent_colours_rejected(self):
        assert not DEG.node_config_ok((1, 2))

    def test_node_empty_is_valid(self):
        assert DEG.node_config_ok(())

    def test_node_non_integer_rejected(self):
        assert not DEG.node_config_ok(("red",))
        assert not DEG.node_config_ok((0,))

    def test_edge_distinct_colours(self):
        assert DEG.edge_config_ok((1, 2), 2)
        assert not DEG.edge_config_ok((3, 3), 2)

    def test_edge_rank_one_any_colour(self):
        assert DEG.edge_config_ok((5,), 1)
        assert not DEG.edge_config_ok(("x",), 1)

    def test_edge_rank_zero(self):
        assert DEG.edge_config_ok((), 0)


class TestDeltaPlusOne:
    def test_bound_is_global(self):
        problem = DeltaPlusOneColoring(3)
        assert problem.node_config_ok((3,))
        assert not problem.node_config_ok((4,))
        # A degree-5 node may still use colour 3 (the global bound applies).
        assert problem.node_config_ok((3,) * 5)

    def test_invalid_palette_size(self):
        with pytest.raises(ValueError):
            DeltaPlusOneColoring(0)


class TestConversions:
    def test_roundtrip(self):
        graph = nx.path_graph(4)
        semigraph = semigraph_from_graph(graph)
        classic = {0: 1, 1: 2, 2: 1, 3: 2}
        labeling = DEG.from_classic(semigraph, classic)
        assert verify_solution(DEG, semigraph, labeling).ok
        assert DEG.to_classic(semigraph, labeling) == classic

    def test_isolated_node_gets_colour_one(self):
        graph = nx.Graph()
        graph.add_node(0)
        semigraph = semigraph_from_graph(graph)
        labeling = DEG.from_classic(semigraph, {0: 7})
        assert DEG.to_classic(semigraph, labeling) == {0: 1}

    def test_to_classic_rejects_inconsistent_node(self):
        graph = nx.path_graph(3)
        semigraph = semigraph_from_graph(graph)
        labeling = DEG.from_classic(semigraph, {0: 1, 1: 2, 2: 1})
        # Corrupt one half-edge of node 1.
        bad = HalfEdgeLabeling(dict(labeling.items()))
        edge = next(iter(semigraph.incident_edges(0)))
        corrupted = {h: lab for h, lab in bad.items()}
        corrupted[HalfEdge(1, edge)] = 3
        with pytest.raises(ValueError):
            DEG.to_classic(semigraph, HalfEdgeLabeling(corrupted))

    def test_verification_catches_adjacent_same_colour(self):
        graph = nx.path_graph(3)
        semigraph = semigraph_from_graph(graph)
        labeling = DEG.from_classic(semigraph, {0: 1, 1: 1, 2: 2})
        assert not verify_solution(DEG, semigraph, labeling).ok


class TestClassicVerifiers:
    def test_proper(self):
        graph = nx.cycle_graph(4)
        assert is_proper_vertex_coloring(graph, {0: 1, 1: 2, 2: 1, 3: 2})
        assert not is_proper_vertex_coloring(graph, {0: 1, 1: 1, 2: 1, 3: 2})
        assert not is_proper_vertex_coloring(graph, {0: 1})

    def test_deg_plus_one(self):
        graph = nx.star_graph(3)
        assert is_deg_plus_one_coloring(graph, {0: 4, 1: 1, 2: 1, 3: 1})
        # A leaf (degree 1) may not use colour 3.
        assert not is_deg_plus_one_coloring(graph, {0: 4, 1: 3, 2: 1, 3: 1})

    def test_delta_plus_one(self):
        graph = nx.path_graph(4)
        assert is_delta_plus_one_coloring(graph, {0: 1, 1: 2, 2: 3, 3: 1})
        assert not is_delta_plus_one_coloring(graph, {0: 1, 1: 2, 2: 4, 3: 1})
