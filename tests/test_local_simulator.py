"""Tests for the synchronous LOCAL-model simulator."""

import networkx as nx
import pytest

from repro.local import Network, NodeContext, RoundLedger, SynchronousAlgorithm, run_synchronous


class CountNeighboursWithinTwoHops(SynchronousAlgorithm):
    """Each node outputs the number of nodes within distance 2 (excluding itself)."""

    name = "two-hop-count"

    def initial_state(self, ctx: NodeContext) -> dict:
        return {"round": 0, "known": {ctx.node}}

    def messages(self, state, ctx):
        return {neighbor: frozenset(state["known"]) for neighbor in ctx.neighbors}

    def transition(self, state, inbox, ctx):
        known = set(state["known"])
        for message in inbox.values():
            known |= message
        return {"round": state["round"] + 1, "known": known}

    def has_terminated(self, state, ctx):
        return state["round"] >= 2

    def output(self, state, ctx):
        return len(state["known"]) - 1


class NeverTerminates(SynchronousAlgorithm):
    name = "never-terminates"

    def initial_state(self, ctx):
        return 0

    def messages(self, state, ctx):
        return {}

    def transition(self, state, inbox, ctx):
        return state + 1

    def has_terminated(self, state, ctx):
        return False

    def output(self, state, ctx):
        return state


class MessagesNonNeighbour(SynchronousAlgorithm):
    name = "messages-non-neighbour"

    def initial_state(self, ctx):
        return 0

    def messages(self, state, ctx):
        return {"not-a-neighbour": 1}

    def transition(self, state, inbox, ctx):
        return state + 1

    def has_terminated(self, state, ctx):
        return state >= 1

    def output(self, state, ctx):
        return state


class TestNetwork:
    def test_default_identifiers_are_unique(self):
        network = Network(nx.path_graph(5))
        ids = list(network.identifiers.values())
        assert sorted(ids) == [1, 2, 3, 4, 5]
        assert network.num_nodes == 5
        assert network.max_degree == 2
        assert network.max_identifier == 5

    def test_explicit_identifiers_validated(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            Network(graph, identifiers={0: 1, 1: 1, 2: 2})
        with pytest.raises(ValueError):
            Network(graph, identifiers={0: 1, 1: 2})
        with pytest.raises(ValueError):
            Network(graph, identifiers={0: 0, 1: 1, 2: 2})

    def test_rejects_directed_graph(self):
        with pytest.raises(ValueError):
            Network(nx.DiGraph([(0, 1)]))

    def test_neighbors_sorted_by_identifier(self):
        graph = nx.star_graph(3)
        network = Network(graph, identifiers={0: 10, 1: 3, 2: 1, 3: 2})
        assert network.neighbors(0) == (2, 3, 1)
        # memoized: repeated calls return the same cached tuple
        assert network.neighbors(0) is network.neighbors(0)

    def test_nodes_returns_cached_tuple(self):
        network = Network(nx.path_graph(4))
        assert network.nodes() == (0, 1, 2, 3)
        assert network.nodes() is network.nodes()

    def test_cached_scalars_match_graph(self):
        graph = nx.star_graph(5)
        network = Network(graph)
        assert network.max_degree == 5
        assert network.max_identifier == 6
        assert network.degree(0) == 5
        assert network.degree(3) == 1

    def test_shared_and_inputs_propagate_to_context(self):
        graph = nx.path_graph(2)
        network = Network(graph, node_inputs={0: "root"}, shared={"a": 1})
        from repro.local.simulator import build_contexts

        contexts = build_contexts(network)
        assert contexts[0].node_input == "root"
        assert contexts[1].node_input is None
        assert contexts[0].shared == {"a": 1}
        assert contexts[0].neighbor_ids == {1: network.identifiers[1]}


class TestSimulator:
    def test_round_counting_and_outputs(self):
        graph = nx.path_graph(4)
        result = run_synchronous(Network(graph), CountNeighboursWithinTwoHops())
        assert result.rounds == 2
        assert result.outputs == {0: 2, 1: 3, 2: 3, 3: 2}
        # 2 rounds, each node sends to each neighbour: 2 * 2 * |E|.
        assert result.messages_sent == 2 * 2 * graph.number_of_edges()

    def test_zero_round_algorithm(self):
        class Immediate(CountNeighboursWithinTwoHops):
            def has_terminated(self, state, ctx):
                return True

        result = run_synchronous(Network(nx.path_graph(3)), Immediate())
        assert result.rounds == 0
        assert result.messages_sent == 0

    def test_round_cap_enforced(self):
        with pytest.raises(RuntimeError):
            run_synchronous(Network(nx.path_graph(3)), NeverTerminates(), max_rounds=5)

    def test_messaging_non_neighbour_rejected(self):
        with pytest.raises(ValueError):
            run_synchronous(Network(nx.path_graph(3)), MessagesNonNeighbour())

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node(42)
        result = run_synchronous(Network(graph), CountNeighboursWithinTwoHops())
        assert result.outputs == {42: 0}


class TestRoundLedger:
    def test_charge_and_total(self):
        ledger = RoundLedger()
        ledger.charge("a", 3)
        ledger.charge("a", 2)
        ledger.charge("b", 1)
        assert ledger.total == 6
        assert ledger.breakdown() == {"a": 5, "b": 1}

    def test_charge_max(self):
        ledger = RoundLedger()
        ledger.charge_max("parallel", 3)
        ledger.charge_max("parallel", 2)
        ledger.charge_max("parallel", 7)
        assert ledger.breakdown() == {"parallel": 7}

    def test_negative_charge_rejected(self):
        ledger = RoundLedger()
        with pytest.raises(ValueError):
            ledger.charge("x", -1)
        with pytest.raises(ValueError):
            ledger.charge_max("x", -1)

    def test_merge(self):
        first = RoundLedger({"a": 1})
        second = RoundLedger({"a": 2, "b": 3})
        merged = first.merge(second)
        assert merged.breakdown() == {"a": 3, "b": 3}
        assert first.breakdown() == {"a": 1}
