"""Tests for the rake-and-compress decomposition (Algorithm 1, Lemmas 9-11)."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import rake_and_compress
from repro.generators import (
    balanced_regular_tree,
    broom,
    caterpillar,
    path_graph,
    random_tree,
    spider,
    star_graph,
)

TREES = {
    "path": path_graph(100),
    "star": star_graph(50),
    "binary": balanced_regular_tree(3, 5),
    "five-regular": balanced_regular_tree(5, 3),
    "caterpillar": caterpillar(30, 4),
    "spider": spider(10, 8),
    "broom": broom(20, 15),
    "random-200": random_tree(200, seed=0),
    "random-500": random_tree(500, seed=1),
}


@pytest.mark.parametrize("name", sorted(TREES))
@pytest.mark.parametrize("k", [2, 3, 8])
class TestAlgorithmOne:
    def test_lemma_9_all_nodes_marked(self, name, k):
        tree = TREES[name]
        decomposition = rake_and_compress(tree, k)
        marked = decomposition.compressed_nodes | decomposition.raked_nodes
        assert marked == set(tree.nodes())
        assert decomposition.compressed_nodes.isdisjoint(decomposition.raked_nodes)

    def test_iteration_bound(self, name, k):
        tree = TREES[name]
        decomposition = rake_and_compress(tree, k)
        assert decomposition.iterations <= decomposition.theoretical_iteration_bound
        assert decomposition.rounds == 2 * decomposition.iterations

    def test_lemma_10_compress_edge_degree(self, name, k):
        tree = TREES[name]
        decomposition = rake_and_compress(tree, k)
        assert decomposition.compress_edge_max_degree() <= k
        # The compressed-node-induced subgraph is a subgraph of the Lemma 10
        # graph, so the same bound applies (this is what Theorem 12 uses).
        assert decomposition.compressed_subgraph_max_degree() <= k

    def test_lemma_11_raked_component_diameter(self, name, k):
        tree = TREES[name]
        decomposition = rake_and_compress(tree, k)
        bound = decomposition.lemma_11_diameter_bound()
        for diameter in decomposition.raked_component_diameters():
            assert diameter <= bound

    def test_order_is_total(self, name, k):
        tree = TREES[name]
        decomposition = rake_and_compress(tree, k)
        keys = [decomposition.order_key(v) for v in tree.nodes()]
        assert len(set(keys)) == len(keys)


class TestAlgorithmOneEdgeCases:
    def test_singleton_tree(self):
        tree = nx.Graph()
        tree.add_node(0)
        decomposition = rake_and_compress(tree, 2)
        assert decomposition.raked_nodes | decomposition.compressed_nodes == {0}

    def test_two_node_tree(self):
        decomposition = rake_and_compress(nx.path_graph(2), 2)
        assert decomposition.iterations == 1

    def test_empty_graph(self):
        decomposition = rake_and_compress(nx.Graph(), 2)
        assert decomposition.iterations == 0

    def test_forest_input_allowed(self):
        forest = nx.Graph()
        forest.add_edges_from([(0, 1), (2, 3), (3, 4)])
        forest.add_node(10)
        decomposition = rake_and_compress(forest, 2)
        assert decomposition.compressed_nodes | decomposition.raked_nodes == set(
            forest.nodes()
        )

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            rake_and_compress(nx.cycle_graph(5), 2)

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            rake_and_compress(nx.path_graph(3), 1)

    def test_path_compresses_in_one_iteration(self):
        decomposition = rake_and_compress(nx.path_graph(64), 2)
        assert decomposition.iterations == 1
        # On a path every node has degree at most 2 = k, so the very first
        # compress step marks all of them (the compress step runs before rake).
        assert decomposition.compressed_nodes == set(range(64))
        assert decomposition.raked_nodes == set()

    def test_star_center_survives_first_iteration(self):
        decomposition = rake_and_compress(nx.star_graph(40), 3)
        assert decomposition.iterations == 2
        # Leaves are raked in the first iteration (their neighbour has a high
        # degree, so they cannot be compressed); the centre becomes isolated
        # and is compressed in the second iteration.
        assert decomposition.raked_nodes == set(range(1, 41))
        assert decomposition.compressed_nodes == {0}

    def test_higher_lower_relation(self):
        decomposition = rake_and_compress(random_tree(60, seed=5), 3)
        nodes = list(decomposition.tree.nodes())
        u, v = nodes[0], nodes[1]
        assert decomposition.is_higher(u, v) != decomposition.is_higher(v, u)
        assert decomposition.lower_endpoint(u, v) in (u, v)

    def test_strict_iteration_bound_flag(self):
        # The bound holds on these instances, so strict mode succeeds.
        decomposition = rake_and_compress(random_tree(100, seed=2), 4, strict_iteration_bound=True)
        assert decomposition.iterations <= decomposition.theoretical_iteration_bound


class TestLayerStructure:
    def test_layers_partition_nodes(self):
        tree = random_tree(150, seed=9)
        decomposition = rake_and_compress(tree, 3)
        counted = sum(len(layer.nodes) for layer in decomposition.layers)
        assert counted == tree.number_of_nodes()

    def test_compress_layer_lower_than_same_iteration_rake_layer(self):
        tree = caterpillar(10, 2)
        decomposition = rake_and_compress(tree, 2)
        by_iteration = {}
        for layer in decomposition.layers:
            by_iteration.setdefault(layer.iteration, {})[layer.kind] = layer
        for kinds in by_iteration.values():
            if "compress" in kinds and "rake" in kinds:
                assert kinds["compress"].order_index < kinds["rake"].order_index

    def test_number_of_layers_scales_with_log_k_n(self):
        tree = balanced_regular_tree(3, 8)
        small_k = rake_and_compress(tree, 2)
        large_k = rake_and_compress(tree, 16)
        assert large_k.iterations <= small_k.iterations


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=80),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=2, max_value=10),
)
def test_property_rake_compress_invariants(n, seed, k):
    tree = random_tree(n, seed=seed)
    decomposition = rake_and_compress(tree, k)
    assert decomposition.compressed_nodes | decomposition.raked_nodes == set(tree.nodes())
    assert decomposition.compress_edge_max_degree() <= k
    bound = decomposition.lemma_11_diameter_bound()
    assert all(d <= bound for d in decomposition.raked_component_diameters())
    assert decomposition.iterations <= decomposition.theoretical_iteration_bound
