"""Tests for the (edge-degree+1)-edge colouring encoding of Section 5.1."""

import networkx as nx
import pytest

from repro.problems import DUMMY, EdgeDegreePlusOneEdgeColoring, verify_solution
from repro.problems.classic import (
    edge_degree,
    is_edge_degree_plus_one_coloring,
    is_proper_edge_coloring,
)
from repro.semigraph import HalfEdge, HalfEdgeLabeling, semigraph_from_graph
from repro.semigraph.builders import edge_id_for

PROBLEM = EdgeDegreePlusOneEdgeColoring()


class TestNodeConstraint:
    def test_empty_configuration_is_valid(self):
        assert PROBLEM.node_config_ok(())

    def test_all_dummies_is_valid(self):
        assert PROBLEM.node_config_ok((DUMMY, DUMMY))

    def test_distinct_colours_within_degree_bound(self):
        assert PROBLEM.node_config_ok(((1, 5), (2, 7), (2, 3)))

    def test_degree_part_exceeding_pair_count_rejected(self):
        # Three pairs, but a degree part of 4 > 3.
        assert not PROBLEM.node_config_ok(((4, 5), (2, 7), (2, 3)))

    def test_repeated_colour_part_rejected(self):
        assert not PROBLEM.node_config_ok(((1, 5), (2, 5)))

    def test_dummies_do_not_count_towards_degree_parts(self):
        # Two pairs plus two dummies: degree parts must be at most 2.
        assert PROBLEM.node_config_ok(((2, 5), (1, 7), DUMMY, DUMMY))
        assert not PROBLEM.node_config_ok(((3, 5), (1, 7), DUMMY, DUMMY))

    def test_malformed_labels_rejected(self):
        assert not PROBLEM.node_config_ok(((0, 5),))
        assert not PROBLEM.node_config_ok((("x", 5),))
        assert not PROBLEM.node_config_ok((42,))


class TestEdgeConstraint:
    def test_rank_zero(self):
        assert PROBLEM.edge_config_ok((), 0)
        assert not PROBLEM.edge_config_ok(((1, 1),), 0)

    def test_rank_one_requires_dummy(self):
        assert PROBLEM.edge_config_ok((DUMMY,), 1)
        assert not PROBLEM.edge_config_ok(((1, 1),), 1)

    def test_rank_two_matching_colour_and_degree_sum(self):
        assert PROBLEM.edge_config_ok(((2, 3), (2, 3)), 2)
        assert PROBLEM.edge_config_ok(((1, 1), (1, 1)), 2)

    def test_rank_two_colour_mismatch_rejected(self):
        assert not PROBLEM.edge_config_ok(((2, 3), (2, 4)), 2)

    def test_rank_two_degree_sum_too_small_rejected(self):
        # 1 + 1 = 2 < 3 + 1.
        assert not PROBLEM.edge_config_ok(((1, 3), (1, 3)), 2)

    def test_rank_two_with_dummy_rejected(self):
        assert not PROBLEM.edge_config_ok((DUMMY, (1, 1)), 2)


class TestClassicConversions:
    def test_roundtrip_on_path(self):
        graph = nx.path_graph(5)
        semigraph = semigraph_from_graph(graph)
        classic = {edge_id_for(i, i + 1): (i % 2) + 1 for i in range(4)}
        labeling = PROBLEM.from_classic(semigraph, classic)
        assert verify_solution(PROBLEM, semigraph, labeling).ok
        assert PROBLEM.to_classic(semigraph, labeling) == classic

    def test_from_classic_on_star(self):
        graph = nx.star_graph(4)
        semigraph = semigraph_from_graph(graph)
        classic = {edge_id_for(0, leaf): leaf for leaf in range(1, 5)}
        labeling = PROBLEM.from_classic(semigraph, classic)
        assert verify_solution(PROBLEM, semigraph, labeling).ok

    def test_from_classic_assigns_dummy_to_rank_one(self):
        from repro.semigraph import restrict_to_nodes

        graph = nx.path_graph(3)
        semigraph = restrict_to_nodes(semigraph_from_graph(graph), {1})
        labeling = PROBLEM.from_classic(semigraph, {})
        for edge in semigraph.edges_of_rank(1):
            (node,) = semigraph.endpoints(edge)
            assert labeling[HalfEdge(node, edge)] == DUMMY

    def test_to_classic_rejects_inconsistent_labels(self):
        graph = nx.path_graph(2)
        semigraph = semigraph_from_graph(graph)
        edge = edge_id_for(0, 1)
        labeling = HalfEdgeLabeling(
            {HalfEdge(0, edge): (1, 1), HalfEdge(1, edge): (1, 2)}
        )
        with pytest.raises(ValueError):
            PROBLEM.to_classic(semigraph, labeling)

    def test_verification_catches_improper_colouring(self):
        graph = nx.path_graph(3)
        semigraph = semigraph_from_graph(graph)
        classic = {edge_id_for(0, 1): 1, edge_id_for(1, 2): 1}
        labeling = PROBLEM.from_classic(semigraph, classic)
        result = verify_solution(PROBLEM, semigraph, labeling)
        assert not result.ok
        assert any(v.kind == "node" for v in result.violations)

    def test_verification_catches_colour_above_edge_degree(self):
        graph = nx.path_graph(2)  # single edge, edge-degree 0, budget 1
        semigraph = semigraph_from_graph(graph)
        classic = {edge_id_for(0, 1): 2}
        labeling = PROBLEM.from_classic(semigraph, classic)
        assert not verify_solution(PROBLEM, semigraph, labeling).ok


class TestClassicVerifiers:
    def test_edge_degree(self):
        graph = nx.star_graph(3)
        assert edge_degree(graph, (0, 1)) == 2

    def test_proper_and_bounded(self):
        graph = nx.path_graph(4)
        colours = {(0, 1): 1, (1, 2): 2, (2, 3): 1}
        assert is_proper_edge_coloring(graph, colours)
        assert is_edge_degree_plus_one_coloring(graph, colours)

    def test_rejects_missing_edge(self):
        graph = nx.path_graph(3)
        assert not is_proper_edge_coloring(graph, {(0, 1): 1})

    def test_rejects_adjacent_same_colour(self):
        graph = nx.path_graph(3)
        assert not is_proper_edge_coloring(graph, {(0, 1): 1, (1, 2): 1})

    def test_rejects_colour_above_budget(self):
        graph = nx.path_graph(3)
        colours = {(0, 1): 1, (1, 2): 3}  # edge-degree+1 = 2
        assert is_proper_edge_coloring(graph, colours)
        assert not is_edge_degree_plus_one_coloring(graph, colours)

    def test_accepts_reversed_edge_keys(self):
        graph = nx.path_graph(3)
        colours = {(1, 0): 1, (2, 1): 2}
        assert is_edge_degree_plus_one_coloring(graph, colours)
