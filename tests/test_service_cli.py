"""CLI tests for the service subcommands: run --shard, merge, serve, submit."""

import json
import socket
import threading
import time

import pytest

from repro.experiments.cli import main
from repro.service import ServiceClient


class TestRunShard:
    def test_shard_run_merge_report_roundtrip(self, tmp_path, capsys):
        for index in range(2):
            assert main([
                "run", "paper-claims", "--smoke", "--jobs", "1", "--quiet",
                "--shard", f"{index}/2", "--out", str(tmp_path / f"s{index}"),
            ]) == 0
        out = capsys.readouterr().out
        assert "[shard 0/2]" in out and "[shard 1/2]" in out

        merged = tmp_path / "merged" / "results.jsonl"
        assert main([
            "merge", "--out", str(merged),
            str(tmp_path / "s0" / "results.jsonl"),
            str(tmp_path / "s1" / "results.jsonl"),
        ]) == 0
        assert "0 conflicts" in capsys.readouterr().out

        assert main(["report", "--out", str(tmp_path / "merged")]) == 0
        assert "Theorem 3 shape" in capsys.readouterr().out

    def test_malformed_shard_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "paper-claims", "--shard", "2of3"])
        assert "i/k" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["5/2", "1/2/3", "a/b", "0/0"])
    def test_every_shard_parse_failure_carries_format_hint(self, bad, capsys):
        """ShardSpec's own range errors ("index must be in [0, k)") do not
        mention the syntax; the CLI converter must append the i/k hint so
        users see the expected format whatever the failure mode."""
        with pytest.raises(SystemExit):
            main(["run", "paper-claims", "--shard", bad])
        err = capsys.readouterr().err
        assert "argument --shard" in err
        assert "i/k" in err and "--shard 0/2" in err

    def test_shard_converter_has_readable_name(self):
        """argparse's fallback error is "invalid <type.__name__> value";
        the private converter name must not leak into user output."""
        from repro.experiments.cli import _shard_spec

        assert _shard_spec.__name__ == "shard spec"


class TestMergeCli:
    def test_all_inputs_missing_exits_2(self, tmp_path, capsys):
        assert main([
            "merge", "--out", str(tmp_path / "m.jsonl"),
            str(tmp_path / "ghost.jsonl"),
        ]) == 2
        assert "missing input" in capsys.readouterr().err

    def test_conflict_exits_1_and_reports(self, tmp_path, capsys):
        record = {
            "fingerprint": "ab" * 8, "suite": "s", "scenario": "x",
            "generator": "g", "algorithm": "a", "n": 10, "seed": 1,
            "rounds": 5, "messages": 1, "wall_clock_s": 0.1,
            "verified": True, "k": None, "extras": {},
        }
        (tmp_path / "a.jsonl").write_text(json.dumps(record) + "\n")
        record["rounds"] = 99
        (tmp_path / "b.jsonl").write_text(json.dumps(record) + "\n")
        assert main([
            "merge", "--out", str(tmp_path / "m.jsonl"),
            str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
        ]) == 1
        captured = capsys.readouterr()
        assert "1 conflicts" in captured.out
        assert "CONFLICT" in captured.err


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)
class TestServeSubmitCli:
    def test_serve_submit_shutdown(self, tmp_path, capsys):
        sock_path = str(tmp_path / "svc.sock")
        server = threading.Thread(
            target=main,
            args=(["serve", "--socket", sock_path, "--workers", "1"],),
            daemon=True,
        )
        server.start()
        client = ServiceClient(sock_path)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except Exception:
                time.sleep(0.05)
        else:
            pytest.fail("serve did not come up in time")

        assert main([
            "submit", "paper-claims", "--socket", sock_path, "--smoke",
            "--out", str(tmp_path / "store"), "--wait", "--timeout", "120",
        ]) == 0
        out = capsys.readouterr().out
        assert "submitted 'paper-claims'" in out
        assert "done" in out and "0 unverified" in out
        assert (tmp_path / "store" / "results.jsonl").exists()

        client.shutdown()
        server.join(timeout=30)
        assert not server.is_alive()

    def test_serve_on_busy_socket_exits_2(self, tmp_path, capsys):
        from repro.service import SweepDaemon

        with SweepDaemon(socket_path=tmp_path / "busy.sock", workers=1):
            assert main([
                "serve", "--socket", str(tmp_path / "busy.sock"),
            ]) == 2
        assert "another daemon" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--workers", "0"],
            ["serve", "--batch-size", "0"],
            ["run", "paper-claims", "--jobs", "0"],
        ],
    )
    def test_nonpositive_counts_rejected_by_argparse(self, argv, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv + ["--socket", str(tmp_path / "x.sock")] if argv[0] == "serve" else argv)
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_submit_without_daemon_exits_2(self, tmp_path, capsys):
        assert main([
            "submit", "paper-claims",
            "--socket", str(tmp_path / "nope.sock"),
        ]) == 2
        assert "cannot reach" in capsys.readouterr().err


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)
class TestCollectCli:
    def test_collect_run_report_connect_roundtrip(self, tmp_path, capsys, monkeypatch):
        """The CLI face of the streamed transport: `collect --listen`,
        `run --collector`, `report --connect` — token via the env var."""
        monkeypatch.setenv("REPRO_SERVICE_TOKEN", "cli-token")
        from repro.service import ResultCollector

        collector = ResultCollector(
            out=tmp_path / "central", listen="127.0.0.1:0"
        )
        collector.start()
        host, port = collector.tcp_address
        try:
            assert main([
                "run", "paper-claims", "--smoke", "--jobs", "1", "--quiet",
                "--out", str(tmp_path / "local"),
                "--collector", f"{host}:{port}",
            ]) == 0
            out = capsys.readouterr().out
            assert "streamed" in out and f"{host}:{port}" in out
            assert main(["report", "--connect", f"{host}:{port}"]) == 0
            assert "Theorem 3 shape" in capsys.readouterr().out
        finally:
            collector.close()

    def test_collect_requires_an_endpoint(self, capsys):
        assert main(["collect", "--out", "nowhere"]) == 2
        assert "needs an endpoint" in capsys.readouterr().err

    def test_collect_listen_without_token_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_TOKEN", raising=False)
        assert main(["collect", "--listen", "127.0.0.1:0"]) == 2
        assert "REPRO_SERVICE_TOKEN" in capsys.readouterr().err

    def test_serve_listen_without_token_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_TOKEN", raising=False)
        assert main([
            "serve", "--socket", str(tmp_path / "s.sock"),
            "--listen", "127.0.0.1:0",
        ]) == 2
        assert "auth token" in capsys.readouterr().err

    def test_report_job_without_connect_exits_2(self, capsys):
        assert main(["report", "--job", "job-1"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_report_suite_with_connect_exits_2(self, capsys):
        assert main([
            "report", "--connect", "127.0.0.1:7919", "--suite", "charged",
        ]) == 2
        assert "--suite" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["run", "paper-claims", "--smoke", "--collector", "127.0.0.1:99999"],
        ["report", "--connect", "127.0.0.1:99999"],
        ["submit", "paper-claims", "--socket", "127.0.0.1:99999"],
    ])
    def test_bad_endpoint_exits_2_not_traceback(self, argv, capsys):
        assert main(argv) == 2
        assert "out of range" in capsys.readouterr().err

    def test_report_connect_unreachable_exits_2(self, tmp_path, capsys):
        assert main([
            "report", "--connect", str(tmp_path / "ghost.sock"),
        ]) == 2
        assert "cannot reach" in capsys.readouterr().err
