"""Tests for the maximal matching (Section 5.2) and MIS encodings."""

import networkx as nx
import pytest

from repro.problems import (
    DUMMY,
    MaximalIndependentSetProblem,
    MaximalMatchingProblem,
    verify_solution,
)
from repro.problems.classic import (
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
)
from repro.problems.matching import MATCHED, POINTER, UNMATCHED
from repro.problems.mis import IN_MIS, OUT, POINTER as MIS_POINTER
from repro.semigraph import HalfEdge, HalfEdgeLabeling, restrict_to_nodes, semigraph_from_graph
from repro.semigraph.builders import edge_id_for

MATCHING = MaximalMatchingProblem()
MIS = MaximalIndependentSetProblem()


class TestMatchingConstraints:
    def test_node_with_one_matched_edge(self):
        assert MATCHING.node_config_ok((MATCHED, POINTER, UNMATCHED, DUMMY))

    def test_node_with_two_matched_edges_rejected(self):
        assert not MATCHING.node_config_ok((MATCHED, MATCHED))

    def test_unmatched_node(self):
        assert MATCHING.node_config_ok((UNMATCHED, UNMATCHED, DUMMY))

    def test_pointer_without_matched_edge_rejected(self):
        # P claims "matched elsewhere", so a node with a P must carry an M.
        assert not MATCHING.node_config_ok((POINTER, UNMATCHED))

    def test_unknown_label_rejected(self):
        assert not MATCHING.node_config_ok(("Z",))

    def test_edge_constraints(self):
        assert MATCHING.edge_config_ok((MATCHED, MATCHED), 2)
        assert MATCHING.edge_config_ok((POINTER, POINTER), 2)
        assert MATCHING.edge_config_ok((POINTER, UNMATCHED), 2)
        assert not MATCHING.edge_config_ok((UNMATCHED, UNMATCHED), 2)
        assert not MATCHING.edge_config_ok((MATCHED, POINTER), 2)
        assert MATCHING.edge_config_ok((DUMMY,), 1)
        assert not MATCHING.edge_config_ok((MATCHED,), 1)
        assert MATCHING.edge_config_ok((), 0)


class TestMatchingConversions:
    def test_roundtrip_on_path(self):
        graph = nx.path_graph(4)
        semigraph = semigraph_from_graph(graph)
        matching = {edge_id_for(1, 2)}
        labeling = MATCHING.from_classic(semigraph, matching)
        assert verify_solution(MATCHING, semigraph, labeling).ok
        assert MATCHING.to_classic(semigraph, labeling) == matching

    def test_non_maximal_matching_fails_verification(self):
        graph = nx.path_graph(5)
        semigraph = semigraph_from_graph(graph)
        labeling = MATCHING.from_classic(semigraph, {edge_id_for(0, 1)})
        result = verify_solution(MATCHING, semigraph, labeling)
        assert not result.ok  # edge {2,3} or {3,4} has two unmatched endpoints

    def test_rank_one_edges_get_dummy(self):
        graph = nx.path_graph(3)
        semigraph = restrict_to_nodes(semigraph_from_graph(graph), {1})
        labeling = MATCHING.from_classic(semigraph, set())
        for edge in semigraph.edges_of_rank(1):
            (node,) = semigraph.endpoints(edge)
            assert labeling[HalfEdge(node, edge)] == DUMMY


class TestMatchingClassicVerifiers:
    def test_is_matching(self):
        graph = nx.path_graph(4)
        assert is_matching(graph, [(0, 1), (2, 3)])
        assert not is_matching(graph, [(0, 1), (1, 2)])
        assert not is_matching(graph, [(0, 2)])

    def test_is_maximal_matching(self):
        graph = nx.path_graph(5)
        assert is_maximal_matching(graph, [(1, 2), (3, 4)])
        assert not is_maximal_matching(graph, [(0, 1)])


class TestMISConstraints:
    def test_node_all_in(self):
        assert MIS.node_config_ok((IN_MIS, IN_MIS))

    def test_node_out_needs_pointer(self):
        assert MIS.node_config_ok((MIS_POINTER, OUT))
        assert not MIS.node_config_ok((OUT, OUT))

    def test_mixed_in_out_rejected(self):
        assert not MIS.node_config_ok((IN_MIS, OUT))

    def test_empty_is_valid(self):
        assert MIS.node_config_ok(())

    def test_edge_constraints(self):
        assert MIS.edge_config_ok((IN_MIS, MIS_POINTER), 2)
        assert MIS.edge_config_ok((IN_MIS, OUT), 2)
        assert MIS.edge_config_ok((OUT, OUT), 2)
        assert not MIS.edge_config_ok((IN_MIS, IN_MIS), 2)
        assert not MIS.edge_config_ok((MIS_POINTER, OUT), 2)
        assert MIS.edge_config_ok((IN_MIS,), 1)
        assert MIS.edge_config_ok((OUT,), 1)
        assert not MIS.edge_config_ok((MIS_POINTER,), 1)


class TestMISConversions:
    def test_roundtrip_on_star(self):
        graph = nx.star_graph(4)
        semigraph = semigraph_from_graph(graph)
        labeling = MIS.from_classic(semigraph, {0})
        assert verify_solution(MIS, semigraph, labeling).ok
        assert MIS.to_classic(semigraph, labeling) == {0}

    def test_leaves_as_mis(self):
        graph = nx.star_graph(4)
        semigraph = semigraph_from_graph(graph)
        labeling = MIS.from_classic(semigraph, {1, 2, 3, 4})
        assert verify_solution(MIS, semigraph, labeling).ok

    def test_non_maximal_set_fails(self):
        graph = nx.path_graph(5)
        semigraph = semigraph_from_graph(graph)
        labeling = MIS.from_classic(semigraph, {0})
        assert not verify_solution(MIS, semigraph, labeling).ok

    def test_dependent_set_fails(self):
        graph = nx.path_graph(3)
        semigraph = semigraph_from_graph(graph)
        labeling = MIS.from_classic(semigraph, {0, 1})
        assert not verify_solution(MIS, semigraph, labeling).ok

    def test_isolated_node_joins_classic_mis(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1)
        graph.add_node(7)
        semigraph = semigraph_from_graph(graph)
        labeling = MIS.from_classic(semigraph, {0, 7})
        assert verify_solution(MIS, semigraph, labeling).ok
        assert 7 in MIS.to_classic(semigraph, labeling)


class TestMISClassicVerifiers:
    def test_is_independent_set(self):
        graph = nx.path_graph(4)
        assert is_independent_set(graph, {0, 2})
        assert not is_independent_set(graph, {0, 1})
        assert not is_independent_set(graph, {99})

    def test_is_maximal_independent_set(self):
        graph = nx.path_graph(4)
        assert is_maximal_independent_set(graph, {0, 2})
        assert is_maximal_independent_set(graph, {1, 3})
        assert not is_maximal_independent_set(graph, {0})
