"""Protocol conformance/fuzz suite: the framing contract both transports
must satisfy.

Every test that talks to a live server runs twice — once over a
Unix-domain socket and once over token-authenticated TCP — against the
shared :class:`~repro.service.protocol.LineServer` with a trivial echo
handler, so what is pinned here is the *protocol layer* (one JSON object
per ``\\n``-terminated line, one response per request, error responses
for malformed input, per-request TCP auth), independent of any verb
table the daemon or collector put on top.
"""

import io
import json
import socket
import threading
import time

import pytest

import repro.service.protocol as protocol
from repro.service.protocol import (
    MAX_LINE_BYTES,
    Endpoint,
    LineServer,
    ProtocolError,
    ServiceError,
    connect_endpoint,
    error_response,
    ok_response,
    parse_endpoint,
    recv_message,
    send_message,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)

TOKEN = "conformance-suite-token"


@pytest.fixture(params=["unix", "tcp"])
def transport(request):
    return request.param


@pytest.fixture()
def echo_server(transport, tmp_path):
    """A started LineServer echoing each request back, on one transport."""
    server = LineServer(
        lambda request: ok_response(echo=request),
        token=TOKEN,
        name="conformance",
        close_after=lambda request, _: request.get("op") == "bye",
    )
    if transport == "unix":
        server.listen_unix(tmp_path / "conformance.sock")
        endpoint = parse_endpoint(tmp_path / "conformance.sock")
    else:
        host, port = server.listen_tcp("127.0.0.1", 0)
        endpoint = parse_endpoint(f"{host}:{port}")
    server.start()
    yield server, endpoint
    server.close()


def open_connection(endpoint):
    sock = connect_endpoint(endpoint, timeout=10)
    sock.settimeout(10)
    return sock


def framed(payload: dict, endpoint: Endpoint) -> bytes:
    """One authenticated request line for ``endpoint``'s transport."""
    if endpoint.is_tcp:
        payload = {**payload, "token": TOKEN}
    return json.dumps(payload).encode("utf-8") + b"\n"


class TestEndpointGrammar:
    """parse_endpoint: the one address grammar both roles share."""

    @pytest.mark.parametrize("text,host,port", [
        ("127.0.0.1:7919", "127.0.0.1", 7919),
        ("0.0.0.0:0", "0.0.0.0", 0),
        ("sweeps.example.org:65535", "sweeps.example.org", 65535),
        ("[::1]:7919", "::1", 7919),
    ])
    def test_tcp_addresses(self, text, host, port):
        endpoint = parse_endpoint(text)
        assert endpoint.is_tcp
        assert (endpoint.host, endpoint.port) == (host, port)

    @pytest.mark.parametrize("text", [
        "/tmp/svc.sock",
        "experiments/service.sock",
        "relative.sock",
        "weird:name",        # non-numeric tail → a (strange) filename
        "dir/with:colon/s",  # path separator wins over the colon
        ":123",              # no host → not a TCP address
    ])
    def test_everything_else_is_a_unix_path(self, text):
        endpoint = parse_endpoint(text)
        assert not endpoint.is_tcp
        assert endpoint.path == text

    def test_out_of_range_port_rejected(self):
        with pytest.raises(ValueError, match="port out of range"):
            parse_endpoint("host:70000")

    def test_empty_endpoint_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_endpoint("")

    def test_endpoint_passthrough_and_str_roundtrip(self):
        endpoint = parse_endpoint("127.0.0.1:7919")
        assert parse_endpoint(endpoint) is endpoint
        assert parse_endpoint(str(endpoint)) == endpoint
        bracketed = parse_endpoint("[::1]:7919")
        assert parse_endpoint(str(bracketed)) == bracketed


class TestRoundTrip:
    """Every verb shape round-trips as one line in, one line out."""

    @pytest.mark.parametrize("payload", [
        {"op": "ping"},
        {"op": "submit", "suite": "paper-claims", "smoke": True, "shard": "0/2"},
        {"op": "status", "job": "job-1"},
        {"op": "results", "job": "job-1"},
        {"op": "report", "job": "job-1"},
        {"op": "push", "records": [{"fingerprint": "ab" * 8, "nested": {"k": [1, None]}}]},
        {"op": "shutdown"},
        {"op": "ünïcode", "päyload": "∂x/∂t ≤ β·log²n"},
    ])
    def test_request_payload_reaches_handler_intact(self, echo_server, payload):
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            sock.sendall(framed(payload, endpoint))
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["ok"] is True
        # The token (when any) is stripped before the handler runs: the
        # echo must be exactly the caller's payload, transport-independent.
        assert response["echo"] == payload

    def test_many_requests_one_connection_in_order(self, echo_server):
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            with sock.makefile("rb") as reader:
                for index in range(20):
                    sock.sendall(framed({"op": "ping", "i": index}, endpoint))
                    assert recv_message(reader)["echo"]["i"] == index
        finally:
            sock.close()

    def test_pipelined_requests_each_get_one_response(self, echo_server):
        """Two lines sent in one write are two requests — framing is the
        newline, not the segment boundary."""
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            sock.sendall(
                framed({"op": "ping", "i": 0}, endpoint)
                + framed({"op": "ping", "i": 1}, endpoint)
            )
            with sock.makefile("rb") as reader:
                assert recv_message(reader)["echo"]["i"] == 0
                assert recv_message(reader)["echo"]["i"] == 1
        finally:
            sock.close()

    def test_close_after_verb_half_closes_cleanly(self, echo_server):
        """After a terminal verb (the daemon's ``shutdown``), the response
        still arrives, then the server closes the connection."""
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            sock.sendall(framed({"op": "bye"}, endpoint))
            with sock.makefile("rb") as reader:
                assert recv_message(reader)["ok"] is True
                assert recv_message(reader) is None  # EOF: connection closed
        finally:
            sock.close()


class TestPartialReads:
    """Framing must survive arbitrary write segmentation."""

    def test_byte_by_byte_request_still_parses(self, echo_server):
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            for byte in framed({"op": "ping", "slow": True}, endpoint):
                sock.sendall(bytes([byte]))
                time.sleep(0.001)
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["echo"]["slow"] is True

    def test_request_split_mid_token_still_parses(self, echo_server):
        _, endpoint = echo_server
        line = framed({"op": "ping", "marker": "split-me"}, endpoint)
        sock = open_connection(endpoint)
        try:
            middle = len(line) // 2
            sock.sendall(line[:middle])
            time.sleep(0.05)
            sock.sendall(line[middle:])
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["echo"]["marker"] == "split-me"


class TestMalformedInput:
    """Garbage in → one error line out (or a clean close), never a hang."""

    @pytest.mark.parametrize("line,match", [
        (b"this is not json\n", "malformed"),
        (b'{"op": "ping",}\n', "malformed"),
        (b"\n", "malformed"),
        (b"\x00\xff\xfe\xfd\n", "malformed"),
        (b"[1, 2, 3]\n", "objects"),
        (b'"just a string"\n', "objects"),
        (b"42\n", "objects"),
        (b"null\n", "objects"),
    ])
    def test_bad_line_answered_with_error_and_close(self, echo_server, line, match):
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            sock.sendall(line)
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
                assert response["ok"] is False
                assert match in response["error"]
                # A framing error poisons the stream; the server closes
                # rather than resynchronise on guesswork.
                assert recv_message(reader) is None
        finally:
            sock.close()

    def test_truncated_json_at_eof_is_malformed(self, echo_server):
        """A client dying mid-line must not be mistaken for a request."""
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            sock.sendall(b'{"op": "pi')  # no newline, then write half-close
            sock.shutdown(socket.SHUT_WR)
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_oversized_line_rejected(self, echo_server, monkeypatch):
        """A line past MAX_LINE_BYTES is refused without buffering it all."""
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 4096)
        _, endpoint = echo_server
        sock = open_connection(endpoint)
        try:
            sock.sendall(b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n')
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["ok"] is False
        assert "exceeds" in response["error"]

    def test_handler_exception_becomes_error_response(self, transport, tmp_path):
        def explosive(request):
            raise RuntimeError("handler blew up")

        server = LineServer(explosive, token=TOKEN, name="explosive")
        if transport == "unix":
            server.listen_unix(tmp_path / "explosive.sock")
            endpoint = parse_endpoint(tmp_path / "explosive.sock")
        else:
            host, port = server.listen_tcp("127.0.0.1", 0)
            endpoint = parse_endpoint(f"{host}:{port}")
        server.start()
        try:
            sock = open_connection(endpoint)
            try:
                sock.sendall(framed({"op": "ping", "i": 1}, endpoint))
                # the connection survives a handler exception
                sock.sendall(framed({"op": "ping", "i": 2}, endpoint))
                with sock.makefile("rb") as reader:
                    first = recv_message(reader)
                    second = recv_message(reader)
            finally:
                sock.close()
        finally:
            server.close()
        for response in (first, second):
            assert response["ok"] is False
            assert "handler blew up" in response["error"]


class TestRecvMessageUnit:
    """The reader side of the contract, pinned without sockets."""

    def test_eof_is_none(self):
        assert recv_message(io.BytesIO(b"")) is None

    def test_exact_limit_line_accepted(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
        padding = 64 - len('{"k": ""}\n')
        line = ('{"k": "' + "x" * padding + '"}\n').encode()
        assert len(line) == 64
        assert recv_message(io.BytesIO(line)) == {"k": "x" * padding}

    def test_one_past_limit_rejected(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
        line = ('{"k": "' + "x" * 64 + '"}\n').encode()
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(io.BytesIO(line))

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="objects"):
            recv_message(io.BytesIO(b"[1, 2]\n"))

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            recv_message(io.BytesIO(b"{nope\n"))

    def test_send_message_is_one_line(self):
        class Sink:
            def __init__(self):
                self.data = b""

            def sendall(self, data):
                self.data += data

        sink = Sink()
        send_message(sink, {"op": "ping", "nested": {"a": [1, 2]}})
        assert sink.data.endswith(b"\n")
        assert sink.data.count(b"\n") == 1
        assert json.loads(sink.data) == {"op": "ping", "nested": {"a": [1, 2]}}


class TestInterleavedClients:
    def test_two_connections_interleaved(self, echo_server):
        """Requests alternating across two live connections never leak a
        response to the wrong client."""
        _, endpoint = echo_server
        sock_a, sock_b = open_connection(endpoint), open_connection(endpoint)
        try:
            with sock_a.makefile("rb") as reader_a, sock_b.makefile("rb") as reader_b:
                for round_index in range(5):
                    sock_a.sendall(framed({"who": "a", "i": round_index}, endpoint))
                    sock_b.sendall(framed({"who": "b", "i": round_index}, endpoint))
                    response_b = recv_message(reader_b)
                    response_a = recv_message(reader_a)
                    assert response_a["echo"] == {"who": "a", "i": round_index}
                    assert response_b["echo"] == {"who": "b", "i": round_index}
        finally:
            sock_a.close()
            sock_b.close()

    def test_concurrent_clients_each_see_their_own_echoes(self, echo_server):
        _, endpoint = echo_server
        errors = []

        def hammer(client_id):
            try:
                sock = open_connection(endpoint)
                try:
                    with sock.makefile("rb") as reader:
                        for index in range(25):
                            sock.sendall(
                                framed({"c": client_id, "i": index}, endpoint)
                            )
                            echo = recv_message(reader)["echo"]
                            assert echo == {"c": client_id, "i": index}
                finally:
                    sock.close()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(repr(error))

        threads = [
            threading.Thread(target=hammer, args=(client_id,)) for client_id in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors


class TestAuthentication:
    """TCP requires the shared token per request; Unix sockets never do."""

    def test_unix_needs_no_token(self, tmp_path):
        server = LineServer(lambda r: ok_response(echo=r), token=TOKEN)
        server.listen_unix(tmp_path / "auth.sock")
        server.start()
        try:
            sock = open_connection(parse_endpoint(tmp_path / "auth.sock"))
            try:
                sock.sendall(json.dumps({"op": "ping"}).encode() + b"\n")
                with sock.makefile("rb") as reader:
                    assert recv_message(reader)["ok"] is True
            finally:
                sock.close()
        finally:
            server.close()

    @pytest.mark.parametrize("request_payload", [
        {"op": "ping"},                        # token missing
        {"op": "ping", "token": "wrong"},      # token wrong
        {"op": "ping", "token": 12345},        # token not even a string
    ])
    def test_tcp_refuses_bad_token_and_closes(self, request_payload):
        server = LineServer(lambda r: ok_response(echo=r), token=TOKEN)
        host, port = server.listen_tcp("127.0.0.1", 0)
        server.start()
        try:
            sock = open_connection(parse_endpoint(f"{host}:{port}"))
            try:
                sock.sendall(json.dumps(request_payload).encode() + b"\n")
                with sock.makefile("rb") as reader:
                    response = recv_message(reader)
                    assert response["ok"] is False
                    assert "authentication failed" in response["error"]
                    assert recv_message(reader) is None  # connection closed
            finally:
                sock.close()
        finally:
            server.close()

    def test_tcp_accepts_good_token_and_strips_it(self):
        server = LineServer(lambda r: ok_response(echo=r), token=TOKEN)
        host, port = server.listen_tcp("127.0.0.1", 0)
        server.start()
        try:
            sock = open_connection(parse_endpoint(f"{host}:{port}"))
            try:
                sock.sendall(
                    json.dumps({"op": "ping", "token": TOKEN}).encode() + b"\n"
                )
                with sock.makefile("rb") as reader:
                    response = recv_message(reader)
            finally:
                sock.close()
        finally:
            server.close()
        assert response["ok"] is True
        assert "token" not in response["echo"]

    def test_non_ascii_token_authenticates(self):
        """Tokens are compared as UTF-8 bytes: a non-ASCII shared token
        must authenticate, not blow up hmac.compare_digest."""
        token = "tökén-∆"
        server = LineServer(lambda r: ok_response(echo=r), token=token)
        host, port = server.listen_tcp("127.0.0.1", 0)
        server.start()
        try:
            sock = open_connection(parse_endpoint(f"{host}:{port}"))
            try:
                sock.sendall(
                    json.dumps({"op": "ping", "token": token}).encode() + b"\n"
                )
                with sock.makefile("rb") as reader:
                    good = recv_message(reader)
            finally:
                sock.close()
            sock = open_connection(parse_endpoint(f"{host}:{port}"))
            try:
                sock.sendall(
                    json.dumps({"op": "ping", "token": "tökén-X"}).encode() + b"\n"
                )
                with sock.makefile("rb") as reader:
                    bad = recv_message(reader)
            finally:
                sock.close()
        finally:
            server.close()
        assert good["ok"] is True
        assert bad["ok"] is False and "authentication failed" in bad["error"]

    def test_tcp_listener_refused_without_token(self):
        server = LineServer(lambda r: ok_response())
        with pytest.raises(ServiceError, match="without an auth token"):
            server.listen_tcp("127.0.0.1", 0)

    def test_error_names_the_env_var(self):
        server = LineServer(lambda r: ok_response())
        with pytest.raises(ServiceError, match="REPRO_SERVICE_TOKEN"):
            server.listen_tcp("127.0.0.1", 0)


class TestMetricsVerb:
    """The ``metrics`` verb round-trips valid Prometheus text on both
    transports, served by a real verb table (the collector's)."""

    @pytest.fixture()
    def collector(self, transport, tmp_path):
        from repro.service.collector import ResultCollector

        if transport == "unix":
            served = ResultCollector(
                out=tmp_path / "store",
                socket_path=tmp_path / "metrics.sock",
                token=TOKEN,
            )
            served.start()
            endpoint = parse_endpoint(tmp_path / "metrics.sock")
        else:
            served = ResultCollector(
                out=tmp_path / "store", listen="127.0.0.1:0", token=TOKEN
            )
            served.start()
            host, port = served.tcp_address
            endpoint = parse_endpoint(f"{host}:{port}")
        yield served, endpoint
        served.close()

    def test_metrics_round_trip(self, collector):
        from repro.obs import parse_exposition

        _, endpoint = collector
        sock = open_connection(endpoint)
        try:
            with sock.makefile("rb") as reader:
                sock.sendall(framed({"op": "ping"}, endpoint))
                assert recv_message(reader)["ok"] is True
                sock.sendall(framed({"op": "metrics"}, endpoint))
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["ok"] is True
        text = response["metrics"]
        # Valid exposition: parses in full, and self-describes with
        # HELP/TYPE comment lines.
        samples = parse_exposition(text)
        assert "# HELP service_requests_total " in text
        assert "# TYPE service_request_seconds histogram" in text
        # The ping we just made is counted under its own verb label.
        assert any(
            sample.name == "service_requests_total"
            and sample.label("verb") == "ping"
            and sample.label("outcome") == "ok"
            and sample.value >= 1
            for sample in samples
        ), [s for s in samples if s.name == "service_requests_total"]

    def test_unknown_verbs_clamp_to_other(self, collector):
        from repro.obs import parse_exposition

        _, endpoint = collector
        sock = open_connection(endpoint)
        try:
            with sock.makefile("rb") as reader:
                sock.sendall(framed({"op": "mint-a-label-a"}, endpoint))
                assert recv_message(reader)["ok"] is False
                sock.sendall(framed({"op": "mint-a-label-b"}, endpoint))
                assert recv_message(reader)["ok"] is False
                sock.sendall(framed({"op": "metrics"}, endpoint))
                response = recv_message(reader)
        finally:
            sock.close()
        samples = parse_exposition(response["metrics"])
        verbs = {
            sample.label("verb")
            for sample in samples
            if sample.name == "service_requests_total"
        }
        # Arbitrary op strings must not mint label values.
        assert "mint-a-label-a" not in verbs
        assert "mint-a-label-b" not in verbs
        assert any(
            sample.name == "service_requests_total"
            and sample.label("verb") == "other"
            and sample.label("outcome") == "error"
            and sample.value == 2
            for sample in samples
        )

class TestFleetVerbsConformance:
    """The fleet control-plane verbs (``register`` / ``heartbeat`` /
    ``lease`` / ``fleet_status``) speak the same one-line contract on
    both transports, with TCP auth and typed-parameter validation."""

    @pytest.fixture()
    def collector(self, transport, tmp_path):
        from repro.service.collector import ResultCollector

        if transport == "unix":
            served = ResultCollector(
                out=tmp_path / "store",
                socket_path=tmp_path / "fleet.sock",
                token=TOKEN,
            )
            served.start()
            endpoint = parse_endpoint(tmp_path / "fleet.sock")
        else:
            served = ResultCollector(
                out=tmp_path / "store", listen="127.0.0.1:0", token=TOKEN
            )
            served.start()
            host, port = served.tcp_address
            endpoint = parse_endpoint(f"{host}:{port}")
        yield served, endpoint
        served.close()

    @staticmethod
    def ask(endpoint, payload):
        sock = open_connection(endpoint)
        try:
            with sock.makefile("rb") as reader:
                sock.sendall(framed(payload, endpoint))
                return recv_message(reader)
        finally:
            sock.close()

    def test_full_lifecycle_round_trips(self, collector):
        _, endpoint = collector
        registered = self.ask(endpoint, {"op": "register", "worker": "w1"})
        assert registered["ok"] is True
        worker_id = registered["worker_id"]
        assert registered["heartbeat_interval_s"] > 0
        assert registered["lease_ttl_s"] >= registered["heartbeat_interval_s"]

        beat = self.ask(endpoint, {"op": "heartbeat", "worker_id": worker_id})
        assert beat["ok"] is True and beat["known"] is True

        grant = self.ask(endpoint, {
            "op": "lease", "worker_id": worker_id,
            "fingerprints": ["fp-a", "fp-b"], "limit": 1,
        })
        assert grant["ok"] is True and grant["known"] is True
        assert grant["granted"] == ["fp-a"]
        assert grant["done"] is False

        status = self.ask(endpoint, {"op": "fleet_status"})
        assert status["ok"] is True
        assert status["active_leases"] == 1
        assert [w["worker_id"] for w in status["workers"]] == [worker_id]

    def test_unknown_ids_answer_known_false_not_error(self, collector):
        _, endpoint = collector
        beat = self.ask(endpoint, {"op": "heartbeat", "worker_id": "worker-9"})
        assert beat["ok"] is True and beat["known"] is False
        grant = self.ask(endpoint, {
            "op": "lease", "worker_id": "worker-9", "fingerprints": ["fp"],
        })
        assert grant["ok"] is True and grant["known"] is False
        assert grant["granted"] == []

    @pytest.mark.parametrize("payload,match", [
        ({"op": "register"}, "worker"),
        ({"op": "register", "worker": ""}, "worker"),
        ({"op": "register", "worker": ["w"]}, "worker"),
        ({"op": "heartbeat"}, "worker_id"),
        ({"op": "heartbeat", "worker_id": None}, "worker_id"),
        ({"op": "lease", "worker_id": "w"}, "fingerprints"),
        ({"op": "lease", "worker_id": "w", "fingerprints": {"fp": 1}},
         "fingerprints"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [""]},
         "fingerprints"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [], "limit": -2},
         "limit"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [],
          "limit": "ten"}, "limit"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [],
          "release": [3]}, "release"),
    ])
    def test_malformed_parameters_are_error_responses(
        self, collector, payload, match
    ):
        _, endpoint = collector
        response = self.ask(endpoint, payload)
        assert response["ok"] is False
        assert match in response["error"]

    @pytest.mark.parametrize("op", [
        "register", "heartbeat", "lease", "fleet_status",
    ])
    def test_tcp_requires_auth(self, tmp_path, op):
        from repro.service.collector import ResultCollector

        served = ResultCollector(
            out=tmp_path / "store", listen="127.0.0.1:0", token=TOKEN
        )
        served.start()
        try:
            host, port = served.tcp_address
            sock = open_connection(parse_endpoint(f"{host}:{port}"))
            try:
                sock.sendall(json.dumps({"op": op}).encode() + b"\n")
                with sock.makefile("rb") as reader:
                    response = recv_message(reader)
                    assert response["ok"] is False
                    assert "authentication failed" in response["error"]
                    assert recv_message(reader) is None
            finally:
                sock.close()
        finally:
            served.close()


class TestMetricsHistoryVerb:
    """The ``metrics_history`` verb serves the retained scrape ring
    buffer on both transports, with TCP auth and a bounded response."""

    @pytest.fixture()
    def collector(self, transport, tmp_path):
        from repro.service.collector import ResultCollector

        if transport == "unix":
            served = ResultCollector(
                out=tmp_path / "store",
                socket_path=tmp_path / "history.sock",
                token=TOKEN,
            )
            served.start()
            endpoint = parse_endpoint(tmp_path / "history.sock")
        else:
            served = ResultCollector(
                out=tmp_path / "store", listen="127.0.0.1:0", token=TOKEN
            )
            served.start()
            host, port = served.tcp_address
            endpoint = parse_endpoint(f"{host}:{port}")
        yield served, endpoint
        served.close()

    @staticmethod
    def request_history(endpoint, payload=None):
        sock = open_connection(endpoint)
        try:
            with sock.makefile("rb") as reader:
                sock.sendall(
                    framed({"op": "metrics_history", **(payload or {})}, endpoint)
                )
                return recv_message(reader)
        finally:
            sock.close()

    def test_history_round_trips(self, collector):
        from repro.obs.timeseries import points_from_payload

        served, endpoint = collector
        served.history.snapshot()
        response = self.request_history(endpoint)
        assert response["ok"] is True
        assert response["interval_s"] == served.history.interval_s
        assert response["retained"] >= 2
        points = points_from_payload(response)
        assert len(points) >= 2
        # Each point is a full exposition the single-scrape tooling reads.
        assert any(
            sample.name == "collector_uptime_seconds"
            for sample in points[-1].samples
        )
        # Reading the verb snapshots first, so the reply includes "now".
        assert points[-1].unix_s >= points[0].unix_s

    def test_window_restricts_to_recent_points(self, collector):
        served, endpoint = collector
        # Two points stamped far in the past fall outside any trailing
        # window ending at the snapshot the verb itself takes.
        served.history.snapshot(now=1000.0)
        served.history.snapshot(now=1060.0)
        response = self.request_history(endpoint, {"window_s": 300.0})
        assert response["ok"] is True
        ancient = {
            point["unix_s"] for point in response["points"]
        } & {1000.0, 1060.0}
        assert not ancient
        assert response["points"]  # the read-time snapshot is included

    def test_response_is_bounded_for_large_histories(self, collector):
        from repro.obs.timeseries import MAX_HISTORY_POINTS_PER_RESPONSE

        served, endpoint = collector
        for t in range(MAX_HISTORY_POINTS_PER_RESPONSE + 40):
            served.history.snapshot(now=float(t))
        response = self.request_history(endpoint)
        assert response["ok"] is True
        assert len(response["points"]) == MAX_HISTORY_POINTS_PER_RESPONSE
        assert response["truncated"] is True
        assert response["retained"] > MAX_HISTORY_POINTS_PER_RESPONSE

    def test_max_points_keeps_most_recent(self, collector):
        served, endpoint = collector
        for t in range(10):
            served.history.snapshot(now=float(t))
        response = self.request_history(endpoint, {"max_points": 3})
        assert response["ok"] is True
        assert len(response["points"]) == 3
        assert response["truncated"] is True
        # Most recent survive: the verb's own read-time snapshot is last.
        returned = [point["unix_s"] for point in response["points"]]
        assert returned == sorted(returned)
        assert returned[-1] >= 9.0

    @pytest.mark.parametrize("bad", [
        {"window_s": "5m"},
        {"window_s": -1},
        {"window_s": True},
        {"max_points": 0},
        {"max_points": 2.5},
        {"max_points": True},
    ])
    def test_invalid_parameters_are_errors(self, collector, bad):
        _, endpoint = collector
        response = self.request_history(endpoint, bad)
        assert response["ok"] is False
        assert "window_s" in response["error"] or "max_points" in response["error"]

    def test_tcp_requires_auth(self, tmp_path):
        from repro.service.collector import ResultCollector

        served = ResultCollector(
            out=tmp_path / "store", listen="127.0.0.1:0", token=TOKEN
        )
        served.start()
        try:
            host, port = served.tcp_address
            endpoint = parse_endpoint(f"{host}:{port}")
            sock = open_connection(endpoint)
            try:
                with sock.makefile("rb") as reader:
                    sock.sendall(
                        json.dumps({"op": "metrics_history"}).encode() + b"\n"
                    )
                    response = recv_message(reader)
                    assert response["ok"] is False
                    assert "authentication failed" in response["error"]
                    assert recv_message(reader) is None  # connection closed
            finally:
                sock.close()
        finally:
            served.close()
