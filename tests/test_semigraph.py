"""Unit tests for the semi-graph object model (Section 2 of the paper)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semigraph import (
    HalfEdge,
    HalfEdgeLabeling,
    SemiGraph,
    restrict_to_edges,
    restrict_to_nodes,
    semigraph_from_graph,
)
from repro.semigraph.builders import edge_id_for
from repro.semigraph.labeling import canonical_multiset


def small_tree() -> nx.Graph:
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (1, 3), (3, 4)])
    return graph


class TestSemiGraphConstruction:
    def test_empty(self):
        semigraph = SemiGraph()
        assert semigraph.num_nodes() == 0
        assert semigraph.num_edges() == 0
        assert semigraph.max_degree() == 0
        assert semigraph.underlying_degree() == 0

    def test_add_nodes_and_edges(self):
        semigraph = SemiGraph(["a", "b", "c"])
        semigraph.add_edge("e1", ("a", "b"))
        semigraph.add_edge("e2", ("c",))
        semigraph.add_edge("e3", ())
        assert semigraph.rank("e1") == 2
        assert semigraph.rank("e2") == 1
        assert semigraph.rank("e3") == 0
        assert semigraph.degree("a") == 1
        assert semigraph.degree("c") == 1
        assert semigraph.edges_of_rank(1) == ["e2"]

    def test_rejects_self_loop(self):
        semigraph = SemiGraph(["a"])
        with pytest.raises(ValueError):
            semigraph.add_edge("loop", ("a", "a"))

    def test_rejects_unknown_endpoint(self):
        semigraph = SemiGraph(["a"])
        with pytest.raises(ValueError):
            semigraph.add_edge("e", ("a", "zzz"))

    def test_rejects_duplicate_edge_id(self):
        semigraph = SemiGraph(["a", "b"])
        semigraph.add_edge("e", ("a", "b"))
        with pytest.raises(ValueError):
            semigraph.add_edge("e", ("a",))

    def test_rejects_three_endpoints(self):
        semigraph = SemiGraph(["a", "b", "c"])
        with pytest.raises(ValueError):
            semigraph.add_edge("e", ("a", "b", "c"))

    def test_add_node_idempotent(self):
        semigraph = SemiGraph(["a"])
        semigraph.add_node("a")
        semigraph.add_node("b")
        assert semigraph.num_nodes() == 2

    def test_contains_and_len(self):
        semigraph = SemiGraph(["a", "b"])
        assert "a" in semigraph
        assert "z" not in semigraph
        assert len(semigraph) == 2

    def test_copy_is_independent(self):
        semigraph = SemiGraph(["a", "b"], {"e": ("a", "b")})
        clone = semigraph.copy()
        clone.add_node("c")
        assert "c" not in semigraph


class TestSemiGraphQueries:
    def test_half_edges(self):
        semigraph = SemiGraph(["a", "b", "c"], {"e1": ("a", "b"), "e2": ("c",)})
        half_edges = set(semigraph.half_edges())
        assert half_edges == {
            HalfEdge("a", "e1"),
            HalfEdge("b", "e1"),
            HalfEdge("c", "e2"),
        }
        assert semigraph.half_edges_of_edge("e2") == [HalfEdge("c", "e2")]
        assert semigraph.half_edges_of_node("a") == [HalfEdge("a", "e1")]

    def test_other_endpoint(self):
        semigraph = SemiGraph(["a", "b", "c"], {"e1": ("a", "b"), "e2": ("c",)})
        assert semigraph.other_endpoint("e1", "a") == "b"
        assert semigraph.other_endpoint("e1", "b") == "a"
        assert semigraph.other_endpoint("e2", "c") is None
        with pytest.raises(ValueError):
            semigraph.other_endpoint("e1", "c")

    def test_neighbors_ignore_low_rank_edges(self):
        semigraph = SemiGraph(["a", "b", "c"], {"e1": ("a", "b"), "e2": ("a",)})
        assert semigraph.neighbors("a") == {"b"}

    def test_edge_degree(self):
        semigraph = semigraph_from_graph(small_tree())
        centre_edge = edge_id_for(1, 3)
        # Edge {1,3}: node 1 has 3 incident edges, node 3 has 2, minus itself twice.
        assert semigraph.edge_degree(centre_edge) == 3

    def test_underlying_graph_and_degree(self):
        semigraph = SemiGraph(["a", "b", "c"], {"e1": ("a", "b"), "e2": ("a",)})
        underlying = semigraph.underlying_graph()
        assert set(underlying.nodes()) == {"a", "b", "c"}
        assert underlying.number_of_edges() == 1
        assert semigraph.underlying_degree() == 1
        assert semigraph.max_degree() == 2  # "a" has two half-edges

    def test_connected_components_and_diameter(self):
        semigraph = semigraph_from_graph(small_tree())
        components = semigraph.connected_components()
        assert len(components) == 1
        assert semigraph.component_diameter(components[0]) == 3
        assert semigraph.is_connected()

    def test_isolated_nodes_are_components(self):
        semigraph = SemiGraph(["a", "b"], {})
        assert len(semigraph.connected_components()) == 2
        assert not semigraph.is_connected()


class TestBuilders:
    def test_from_graph_roundtrip(self):
        tree = small_tree()
        semigraph = semigraph_from_graph(tree)
        assert semigraph.num_nodes() == tree.number_of_nodes()
        assert semigraph.num_edges() == tree.number_of_edges()
        assert all(semigraph.rank(e) == 2 for e in semigraph.edges)
        underlying = semigraph.underlying_graph()
        assert nx.is_isomorphic(underlying, tree)
        assert semigraph.underlying_degree() == 3

    def test_restrict_to_nodes_keep_boundary(self):
        tree = small_tree()
        semigraph = semigraph_from_graph(tree)
        sub = restrict_to_nodes(semigraph, {1, 3})
        # Edges {0,1}, {1,2} and {3,4} become rank-1; {1,3} stays rank-2.
        assert sorted(sub.rank(e) for e in sub.edges) == [1, 1, 1, 2]
        assert sub.degree(1) == 3
        assert sub.underlying_degree() == 1

    def test_restrict_to_nodes_drop_boundary(self):
        tree = small_tree()
        semigraph = semigraph_from_graph(tree)
        sub = restrict_to_nodes(semigraph, {1, 3}, keep_boundary_edges=False)
        assert set(sub.edges) == {edge_id_for(1, 3)}
        assert sub.rank(edge_id_for(1, 3)) == 2

    def test_restrict_to_nodes_unknown_node(self):
        semigraph = semigraph_from_graph(small_tree())
        with pytest.raises(ValueError):
            restrict_to_nodes(semigraph, {999})

    def test_restrict_to_edges(self):
        semigraph = semigraph_from_graph(small_tree())
        chosen = {edge_id_for(0, 1), edge_id_for(1, 2)}
        sub = restrict_to_edges(semigraph, chosen)
        assert set(sub.edges) == chosen
        assert set(sub.nodes) == {0, 1, 2}
        assert all(sub.rank(e) == 2 for e in sub.edges)

    def test_restrict_to_edges_unknown_edge(self):
        semigraph = semigraph_from_graph(small_tree())
        with pytest.raises(ValueError):
            restrict_to_edges(semigraph, {("x", "y")})

    def test_edge_id_for_is_symmetric(self):
        assert edge_id_for(3, 1) == edge_id_for(1, 3)


class TestHalfEdgeLabeling:
    def test_assign_and_query(self):
        labeling = HalfEdgeLabeling()
        h = HalfEdge("a", "e")
        labeling.assign(h, "X")
        assert labeling[h] == "X"
        assert labeling.is_labeled(h)
        assert labeling.get(HalfEdge("b", "e"), "default") == "default"
        assert len(labeling) == 1

    def test_conflicting_assignment_raises(self):
        labeling = HalfEdgeLabeling()
        h = HalfEdge("a", "e")
        labeling.assign(h, "X")
        labeling.assign(h, "X")  # idempotent re-assignment is fine
        with pytest.raises(ValueError):
            labeling.assign(h, "Y")

    def test_merge(self):
        first = HalfEdgeLabeling({HalfEdge("a", "e"): 1})
        second = HalfEdgeLabeling({HalfEdge("b", "e"): 2})
        merged = first.merge(second)
        assert len(merged) == 2
        conflicting = HalfEdgeLabeling({HalfEdge("a", "e"): 7})
        with pytest.raises(ValueError):
            first.merge(conflicting)

    def test_configurations(self):
        semigraph = SemiGraph(["a", "b"], {"e": ("a", "b"), "f": ("a",)})
        labeling = HalfEdgeLabeling(
            {HalfEdge("a", "e"): "X", HalfEdge("b", "e"): "Y", HalfEdge("a", "f"): "Z"}
        )
        assert labeling.node_configuration(semigraph, "a") == ("X", "Z")
        assert labeling.edge_configuration(semigraph, "e") == ("X", "Y")
        assert labeling.is_complete(semigraph)

    def test_partial_configuration(self):
        semigraph = SemiGraph(["a", "b"], {"e": ("a", "b")})
        labeling = HalfEdgeLabeling({HalfEdge("a", "e"): "X"})
        with pytest.raises(KeyError):
            labeling.node_configuration(semigraph, "b")
        assert labeling.node_configuration(semigraph, "b", partial=True) == ()
        assert not labeling.is_complete(semigraph)

    def test_restricted_to(self):
        semigraph = SemiGraph(["a", "b"], {"e": ("a", "b")})
        labeling = HalfEdgeLabeling(
            {HalfEdge("a", "e"): 1, HalfEdge("zzz", "qqq"): 2}
        )
        restricted = labeling.restricted_to(semigraph)
        assert len(restricted) == 1

    def test_label_counts(self):
        labeling = HalfEdgeLabeling(
            {HalfEdge("a", "e"): "X", HalfEdge("b", "e"): "X", HalfEdge("c", "f"): "Y"}
        )
        assert labeling.label_counts() == {"X": 2, "Y": 1}

    def test_canonical_multiset_mixed_types(self):
        assert canonical_multiset(["D", (1, 2)]) == canonical_multiset([(1, 2), "D"])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10_000))
def test_property_semigraph_from_random_tree(n, seed):
    """Converting a tree preserves node count, edge count and degrees."""
    from repro.generators import random_tree

    tree = random_tree(n, seed=seed)
    semigraph = semigraph_from_graph(tree)
    assert semigraph.num_nodes() == n
    assert semigraph.num_edges() == n - 1
    for node in tree.nodes():
        assert semigraph.degree(node) == tree.degree(node)
    # Restricting to the full node set is the identity on ranks.
    full = restrict_to_nodes(semigraph, tree.nodes())
    assert all(full.rank(e) == 2 for e in full.edges)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=30), st.integers(min_value=0, max_value=10_000))
def test_property_restriction_degree_split(n, seed):
    """Half-edge degrees in T_C plus degrees in T_R equal the tree degrees."""
    from repro.generators import random_tree

    tree = random_tree(n, seed=seed)
    semigraph = semigraph_from_graph(tree)
    nodes = sorted(tree.nodes())
    part = set(nodes[: n // 2])
    rest = set(nodes) - part
    sub_part = restrict_to_nodes(semigraph, part)
    sub_rest = restrict_to_nodes(semigraph, rest)
    for node in part:
        assert sub_part.degree(node) == tree.degree(node)
    for node in rest:
        assert sub_rest.degree(node) == tree.degree(node)
    # Every half-edge of the tree is covered by exactly one of the two parts.
    total = len(list(sub_part.half_edges())) + len(list(sub_rest.half_edges()))
    assert total == 2 * tree.number_of_edges()
