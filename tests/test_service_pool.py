"""Worker-pool tests: batched execution, warm reuse across sweeps,
equivalence with the serial runner, failures and resume."""

import pytest

from repro.experiments import (
    AlgorithmFamily,
    ResultStore,
    ScenarioSpec,
    Suite,
    SweepRunner,
    register_algorithm,
)
from repro.experiments.spec import ALGORITHMS, ANALYTIC_GENERATOR
from repro.service import ShardSpec, WorkerPool, batch_cells

SUITE = Suite(
    name="pool-test",
    description="small mixed suite",
    scenarios=(
        ScenarioSpec(
            name="forest/tree", generator="random-tree",
            algorithm="baseline-forest-3coloring", sizes=(16, 24), seeds=(1, 2, 3),
        ),
        ScenarioSpec(
            name="mis/tree", generator="random-tree",
            algorithm="baseline-mis", sizes=(16,), seeds=(1, 2),
        ),
        ScenarioSpec(
            name="shape", generator=ANALYTIC_GENERATOR,
            algorithm="predicted-edge-coloring-log12",
            sizes=(2**64, 2**128), seeds=(0,),
        ),
    ),
)


def normalized(store: ResultStore) -> dict[str, dict]:
    out = {}
    for record in store.records():
        record = dict(record)
        record["wall_clock_s"] = 0.0
        record["timings"] = None
        out[record["fingerprint"]] = record
    return out


class TestBatching:
    def test_batch_cells_chunks_and_covers(self):
        cells = SUITE.cells()
        batches = batch_cells(cells, 3)
        assert all(len(batch) <= 3 for batch in batches)
        assert [c for batch in batches for c in batch] == cells

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            batch_cells([], 0)
        with pytest.raises(ValueError):
            WorkerPool(batch_size=0)
        with pytest.raises(ValueError):
            WorkerPool(workers=0)


class TestPoolExecution:
    def test_matches_serial_runner_modulo_wall_clock(self, tmp_path):
        serial = ResultStore(tmp_path / "serial")
        SweepRunner(SUITE, serial, jobs=1).run()
        pooled = ResultStore(tmp_path / "pool")
        with WorkerPool(workers=2, batch_size=3) as pool:
            report = pool.run_suite(SUITE, pooled)
        assert report.ok
        assert report.executed == len(SUITE.cells())
        assert normalized(pooled) == normalized(serial)

    def test_warm_reuse_across_sweeps_same_processes(self, tmp_path):
        with WorkerPool(workers=2, batch_size=4) as pool:
            pool.run_suite(SUITE, ResultStore(tmp_path / "a"))
            pids_after_first = [p.pid for p in pool._processes]
            pool.run_suite(SUITE, ResultStore(tmp_path / "b"))
            pids_after_second = [p.pid for p in pool._processes]
        assert pids_after_first == pids_after_second
        assert pool.sweeps_served == 2
        assert pool.cells_executed == 2 * len(SUITE.cells())

    def test_resume_skips_completed(self, tmp_path):
        store = ResultStore(tmp_path)
        with WorkerPool(workers=2, batch_size=4) as pool:
            first = pool.run_suite(SUITE, store)
            second = pool.run_suite(SUITE, store)
        assert first.executed == len(SUITE.cells())
        assert second.executed == 0
        assert second.skipped == second.total_cells == len(SUITE.cells())

    def test_sharded_pool_run(self, tmp_path):
        with WorkerPool(workers=2, batch_size=4) as pool:
            reports = [
                pool.run_suite(
                    SUITE,
                    ResultStore(tmp_path / f"s{index}"),
                    shard=ShardSpec(index, 2),
                )
                for index in range(2)
            ]
        assert all(report.ok for report in reports)
        fps0 = set(normalized(ResultStore(tmp_path / "s0")))
        fps1 = set(normalized(ResultStore(tmp_path / "s1")))
        assert not (fps0 & fps1)
        assert fps0 | fps1 == {c.fingerprint for c in SUITE.cells()}

    def test_progress_callback_streams_every_cell(self, tmp_path):
        seen = []
        with WorkerPool(workers=2, batch_size=2) as pool:
            pool.run_suite(SUITE, ResultStore(tmp_path), progress=seen.append)
        assert len(seen) == len(SUITE.cells())

    def test_submit_sweep_streams_outcomes(self, tmp_path):
        cells = SUITE.cells()
        with WorkerPool(workers=2, batch_size=4) as pool:
            outcomes = list(pool.submit_sweep(SUITE.name, cells))
        assert len(outcomes) == len(cells)
        assert all(outcome.ok for outcome in outcomes)
        assert {o.cell.fingerprint for o in outcomes} == {
            c.fingerprint for c in cells
        }


class TestPoolFailures:
    def test_raising_cells_reported_not_stored(self, tmp_path):
        if "_test-boom" not in ALGORITHMS:
            def boom(graph, generator, n):
                raise RuntimeError("boom")

            register_algorithm(AlgorithmFamily(
                name="_test-boom", description="always raises", kind="baseline",
                run=boom,
            ))
        suite = Suite(
            name="boom", description="", scenarios=(
                ScenarioSpec(
                    name="boom", generator="random-tree", algorithm="_test-boom",
                    sizes=(10,),
                ),
                ScenarioSpec(
                    name="ok", generator="random-tree", algorithm="baseline-mis",
                    sizes=(10,),
                ),
            ),
        )
        store = ResultStore(tmp_path)
        with WorkerPool(workers=2, batch_size=1) as pool:
            report = pool.run_suite(suite, store)
        assert not report.ok
        assert len(report.failures) == 1
        assert "boom" in report.failures[0].error
        assert report.executed == 1
        assert len(store) == 1

    def test_workers_killed_while_idle_are_rebuilt_before_next_sweep(self, tmp_path):
        """Workers killed between sweeps are detected at the next start():
        the pool rebuilds its processes and queues (a worker dead on a
        queue may hold its lock) and the sweep runs cleanly."""
        pool = WorkerPool(workers=2, batch_size=4)
        try:
            assert pool.run_suite(SUITE, ResultStore(tmp_path / "first")).ok
            old_pids = [p.pid for p in pool._processes]
            for process in list(pool._processes):
                process.terminate()
                process.join(timeout=5)
            report = pool.run_suite(SUITE, ResultStore(tmp_path / "after"))
            assert report.ok and report.executed == len(SUITE.cells())
            assert len(pool._processes) == 2
            assert all(p.is_alive() for p in pool._processes)
            assert [p.pid for p in pool._processes] != old_pids
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent_and_blocks_reuse(self):
        pool = WorkerPool(workers=1)
        pool.start()
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.start()
