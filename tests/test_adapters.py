"""Tests for the TrulyLocalAlgorithm adapters: they must solve Π on semi-graphs.

The transformation hands the adapters semi-graphs that contain rank-1 edges
(edges whose other endpoint lies in the other part of the decomposition),
so the adapters must produce labels that are valid for the semi-graph
encodings of Section 5 — not just for plain graphs.
"""

import networkx as nx
import pytest

from repro.baselines import (
    DegPlusOneColoringAlgorithm,
    EdgeColoringAlgorithm,
    MISAlgorithm,
    MaximalMatchingAlgorithm,
    OracleCostModel,
)
from repro.core.complexity import polylog
from repro.generators import balanced_regular_tree, random_tree
from repro.problems import verify_solution
from repro.semigraph import restrict_to_edges, restrict_to_nodes, semigraph_from_graph
from repro.semigraph.builders import edge_id_for

ADAPTERS = {
    "deg+1-coloring": DegPlusOneColoringAlgorithm,
    "mis": MISAlgorithm,
    "edge-coloring": EdgeColoringAlgorithm,
    "matching": MaximalMatchingAlgorithm,
}


def semigraph_with_rank_one_edges():
    """The T_C-style semi-graph of a balanced tree restricted to its inner nodes."""
    tree = balanced_regular_tree(3, 3)
    semigraph = semigraph_from_graph(tree)
    leaves = {v for v in tree.nodes() if tree.degree(v) == 1}
    inner = set(tree.nodes()) - leaves
    return restrict_to_nodes(semigraph, inner)


def semigraph_rank_two_only():
    """A G[E2]-style semi-graph: an edge-induced sub-semi-graph of a tree."""
    tree = random_tree(60, seed=4)
    semigraph = semigraph_from_graph(tree)
    edges = sorted(semigraph.edges, key=repr)[: len(list(semigraph.edges)) // 2]
    return restrict_to_edges(semigraph, edges)


@pytest.mark.parametrize("name", sorted(ADAPTERS))
class TestAdaptersOnSemiGraphs:
    def test_full_graph(self, name):
        algorithm = ADAPTERS[name]()
        semigraph = semigraph_from_graph(random_tree(50, seed=1))
        labeling, rounds = algorithm.solve_semigraph(semigraph)
        assert verify_solution(algorithm.problem, semigraph, labeling).ok
        assert rounds >= 1

    def test_semigraph_with_rank_one_edges(self, name):
        algorithm = ADAPTERS[name]()
        semigraph = semigraph_with_rank_one_edges()
        labeling, _ = algorithm.solve_semigraph(semigraph)
        assert verify_solution(algorithm.problem, semigraph, labeling).ok

    def test_edge_induced_semigraph(self, name):
        algorithm = ADAPTERS[name]()
        semigraph = semigraph_rank_two_only()
        labeling, _ = algorithm.solve_semigraph(semigraph)
        assert verify_solution(algorithm.problem, semigraph, labeling).ok

    def test_declared_complexity_is_monotone(self, name):
        algorithm = ADAPTERS[name]()
        values = [algorithm.complexity(x) for x in (0, 1, 2, 5, 10, 100)]
        assert values[0] == 0
        assert all(later >= earlier for earlier, later in zip(values, values[1:]))


class TestOracleCostModel:
    def test_charged_rounds(self):
        model = OracleCostModel("bbko22b", polylog(12))
        cheap = model.charged_rounds(2, 1000)
        expensive = model.charged_rounds(16, 1000)
        assert expensive > cheap
        assert cheap >= 1

    def test_degree_one_charges_only_log_star(self):
        from repro.core.complexity import log_star

        model = OracleCostModel("bbko22b", polylog(12))
        assert model.charged_rounds(1, 10**6) == log_star(10**6)
