"""Tests for the truly local colouring subroutines (Cole–Vishkin, Linial, sweeps)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.color_reduction import reduce_to_deg_plus_one
from repro.baselines.coloring import deg_plus_one_coloring
from repro.baselines.forest_coloring import (
    cole_vishkin_step,
    color_forest_three,
    reduction_iterations,
)
from repro.baselines.linial import (
    choose_field,
    linial_coloring,
    linial_step,
    reduction_schedule,
)
from repro.baselines.primes import is_prime, next_prime
from repro.core.complexity import log_star
from repro.generators import balanced_regular_tree, caterpillar, random_tree
from repro.problems.classic import is_deg_plus_one_coloring, is_proper_vertex_coloring


def parents_via_bfs(tree: nx.Graph, root) -> dict:
    parents = {root: None}
    for parent, child in nx.bfs_edges(tree, root):
        parents[child] = parent
    return parents


class TestPrimes:
    def test_is_prime(self):
        assert [p for p in range(20) if is_prime(p)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17


class TestColeVishkin:
    def test_step_produces_small_distinct_values(self):
        assert cole_vishkin_step(0b1010, 0b1000) == 2 * 1 + 1
        assert cole_vishkin_step(0b1000, 0b1010) == 2 * 1 + 0

    def test_step_rejects_equal_colours(self):
        with pytest.raises(ValueError):
            cole_vishkin_step(5, 5)

    def test_reduction_iterations_grows_extremely_slowly(self):
        assert reduction_iterations(7) <= 2
        assert reduction_iterations(10**6) <= 5
        assert reduction_iterations(10**18) <= 6

    @pytest.mark.parametrize(
        "tree",
        [
            nx.path_graph(50),
            nx.star_graph(30),
            balanced_regular_tree(3, 4),
            caterpillar(20, 3),
            random_tree(120, seed=7),
        ],
        ids=["path", "star", "balanced", "caterpillar", "random"],
    )
    def test_three_coloring_is_proper(self, tree):
        root = next(iter(tree.nodes()))
        parents = parents_via_bfs(tree, root)
        colours, rounds = color_forest_three(tree, parents)
        assert is_proper_vertex_coloring(tree, colours)
        assert set(colours.values()) <= {1, 2, 3}
        assert rounds <= reduction_iterations(tree.number_of_nodes()) + 6

    def test_forest_with_multiple_roots(self):
        forest = nx.Graph()
        forest.add_edges_from([(0, 1), (2, 3), (3, 4)])
        forest.add_node(9)
        parents = {0: None, 1: 0, 2: None, 3: 2, 4: 3, 9: None}
        colours, _ = color_forest_three(forest, parents)
        assert is_proper_vertex_coloring(forest, colours)
        assert set(colours.values()) <= {1, 2, 3}

    def test_invalid_parent_rejected(self):
        tree = nx.path_graph(3)
        with pytest.raises(ValueError):
            color_forest_three(tree, {0: 2, 1: 0, 2: 1})

    def test_rounds_do_not_grow_with_n(self):
        small = nx.path_graph(30)
        large = nx.path_graph(3000)
        _, rounds_small = color_forest_three(small, parents_via_bfs(small, 0))
        _, rounds_large = color_forest_three(large, parents_via_bfs(large, 0))
        assert rounds_large <= rounds_small + 2  # log* growth only

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=5000))
    def test_property_random_trees(self, n, seed):
        tree = random_tree(n, seed=seed)
        root = min(tree.nodes())
        colours, _ = color_forest_three(tree, parents_via_bfs(tree, root))
        assert is_proper_vertex_coloring(tree, colours)
        assert set(colours.values()) <= {1, 2, 3}


class TestLinial:
    def test_choose_field_invariants(self):
        for num_colours in (10, 100, 10_000, 10**6):
            for delta in (1, 2, 5, 17):
                q, degree = choose_field(num_colours, delta)
                assert is_prime(q)
                assert q ** (degree + 1) >= num_colours
                assert q > delta * degree

    def test_reduction_schedule_shrinks(self):
        schedule, final = reduction_schedule(10**6, max_degree=4)
        assert len(schedule) >= 1
        sizes = [entry[2] for entry in schedule] + [final]
        assert all(later < earlier for earlier, later in zip(sizes, sizes[1:]))
        assert final <= 1000  # O(Δ²)-ish for Δ = 4

    def test_linial_step_separates_neighbours(self):
        q, degree = choose_field(100, 3)
        new = linial_step(17, [5, 9, 23], q, degree)
        others = [linial_step(c, [17], q, degree) for c in (5, 9, 23)]
        assert 0 <= new < q * q
        # The new colours of true neighbours need not differ from each other,
        # but a node always differs from each neighbour after a joint step
        # when both use the same evaluation-point rule on a proper colouring.

    @pytest.mark.parametrize(
        "graph",
        [
            nx.path_graph(64),
            nx.cycle_graph(33),
            nx.star_graph(20),
            balanced_regular_tree(4, 3),
            nx.complete_graph(6),
            random_tree(90, seed=11),
        ],
        ids=["path", "cycle", "star", "balanced", "clique", "random-tree"],
    )
    def test_linial_coloring_proper_and_bounded(self, graph):
        colours, palette, rounds = linial_coloring(graph)
        assert is_proper_vertex_coloring(graph, colours)
        assert all(1 <= c <= palette for c in colours.values())
        max_degree = max(d for _, d in graph.degree())
        assert palette <= 36 * (max_degree + 3) ** 2
        assert rounds <= log_star(graph.number_of_nodes()) + 6

    def test_linial_on_empty_graph(self):
        colours, palette, rounds = linial_coloring(nx.Graph())
        assert colours == {} and rounds == 0


class TestDegPlusOne:
    def test_reduce_to_deg_plus_one(self):
        graph = nx.cycle_graph(10)
        initial = {node: node + 1 for node in graph.nodes()}
        colours, rounds = reduce_to_deg_plus_one(graph, initial, 10)
        assert is_deg_plus_one_coloring(graph, colours)
        assert rounds == 10

    @pytest.mark.parametrize(
        "graph",
        [
            nx.path_graph(40),
            nx.star_graph(15),
            nx.complete_graph(7),
            balanced_regular_tree(3, 4),
            random_tree(80, seed=3),
        ],
        ids=["path", "star", "clique", "balanced", "random-tree"],
    )
    def test_deg_plus_one_coloring(self, graph):
        run = deg_plus_one_coloring(graph)
        assert is_deg_plus_one_coloring(graph, run.colours)
        assert run.rounds == run.linial_rounds + run.sweep_rounds
        assert run.sweep_rounds == run.palette_after_linial

    def test_rounds_depend_on_degree_not_size(self):
        small = nx.path_graph(50)
        large = nx.path_graph(2000)
        run_small = deg_plus_one_coloring(small)
        run_large = deg_plus_one_coloring(large)
        # Same maximum degree: the sweep length is identical and only the
        # log*-term may differ by a round or two.
        assert run_large.sweep_rounds == run_small.sweep_rounds
        assert abs(run_large.rounds - run_small.rounds) <= 3

    def test_empty_graph(self):
        run = deg_plus_one_coloring(nx.Graph())
        assert run.colours == {} and run.rounds == 0
