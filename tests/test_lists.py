"""Tests for the node-list and edge-list variants Π* and Π× (Definitions 7, 8)."""

import networkx as nx

from repro.problems import (
    DUMMY,
    DegreePlusOneColoring,
    EdgeDegreePlusOneEdgeColoring,
    MaximalIndependentSetProblem,
    MaximalMatchingProblem,
)
from repro.problems.lists import (
    EdgeListConstraint,
    NodeListConstraint,
    build_edge_list_instance,
    build_node_list_instance,
    verify_edge_list_solution,
    verify_node_list_solution,
)
from repro.problems.matching import MATCHED, POINTER, UNMATCHED
from repro.problems.mis import IN_MIS, OUT, POINTER as MIS_POINTER
from repro.semigraph import (
    HalfEdge,
    HalfEdgeLabeling,
    restrict_to_edges,
    restrict_to_nodes,
    semigraph_from_graph,
)
from repro.semigraph.builders import edge_id_for

EDGE_COLORING = EdgeDegreePlusOneEdgeColoring()
MATCHING = MaximalMatchingProblem()
MIS = MaximalIndependentSetProblem()
COLORING = DegreePlusOneColoring()


class TestConstraints:
    def test_node_list_constraint_edge_coloring(self):
        # A node that already carries the pair (2, 5) on a solved half-edge:
        # the completion may not reuse colour 5 and degree parts must respect
        # the combined count.
        constraint = NodeListConstraint(EDGE_COLORING, fixed=((2, 5),))
        assert constraint.allows(((2, 7),))
        assert not constraint.allows(((2, 5),))
        assert not constraint.allows(((3, 7),))  # only 2 pairs in total

    def test_node_list_constraint_trivial(self):
        constraint = NodeListConstraint(MATCHING)
        assert constraint.allows((MATCHED, POINTER))
        assert not constraint.allows((MATCHED, MATCHED))

    def test_edge_list_constraint_mis(self):
        # The other endpoint (outside the sub-instance) chose M.
        constraint = EdgeListConstraint(MIS, fixed=(IN_MIS,), full_rank=2)
        assert constraint.allows((MIS_POINTER,))
        assert constraint.allows((OUT,))
        assert not constraint.allows((IN_MIS,))
        # Wrong cardinality never matches the full rank.
        assert not constraint.allows((OUT, OUT))

    def test_edge_list_constraint_coloring(self):
        constraint = EdgeListConstraint(COLORING, fixed=(3,), full_rank=2)
        assert constraint.allows((1,))
        assert not constraint.allows((3,))


class TestInstanceConstruction:
    def build_tree_parts(self):
        tree = nx.path_graph(4)  # 0-1-2-3
        semigraph = semigraph_from_graph(tree)
        inner = restrict_to_nodes(semigraph, {1, 2})
        outer = restrict_to_nodes(semigraph, {0, 3})
        return semigraph, inner, outer

    def test_build_edge_list_instance_from_partial_mis(self):
        semigraph, inner, outer = self.build_tree_parts()
        # Solve the outer part first: nodes 0 and 3 join the MIS.
        partial = MIS.from_classic(outer, {0, 3})
        instance = build_edge_list_instance(MIS, semigraph, inner, partial)
        boundary = instance.list_for(edge_id_for(0, 1))
        assert boundary.fixed == (IN_MIS,)
        interior = instance.list_for(edge_id_for(1, 2))
        assert interior.fixed == ()
        # Nodes 1 and 2 must now stay out of the MIS and point at 0 resp. 3.
        labeling = HalfEdgeLabeling(
            {
                HalfEdge(1, edge_id_for(0, 1)): MIS_POINTER,
                HalfEdge(1, edge_id_for(1, 2)): OUT,
                HalfEdge(2, edge_id_for(1, 2)): OUT,
                HalfEdge(2, edge_id_for(2, 3)): MIS_POINTER,
            }
        )
        assert verify_edge_list_solution(instance, labeling).ok

    def test_edge_list_solution_rejects_joining_next_to_mis(self):
        semigraph, inner, outer = self.build_tree_parts()
        partial = MIS.from_classic(outer, {0, 3})
        instance = build_edge_list_instance(MIS, semigraph, inner, partial)
        labeling = HalfEdgeLabeling(
            {
                HalfEdge(1, edge_id_for(0, 1)): IN_MIS,
                HalfEdge(1, edge_id_for(1, 2)): IN_MIS,
                HalfEdge(2, edge_id_for(1, 2)): MIS_POINTER,
                HalfEdge(2, edge_id_for(2, 3)): OUT,
            }
        )
        result = verify_edge_list_solution(instance, labeling)
        assert not result.ok

    def test_build_node_list_instance_from_partial_edge_coloring(self):
        tree = nx.star_graph(3)  # centre 0, leaves 1..3
        semigraph = semigraph_from_graph(tree)
        first_two = restrict_to_edges(semigraph, {edge_id_for(0, 1), edge_id_for(0, 2)})
        partial = EDGE_COLORING.from_classic(
            first_two, {edge_id_for(0, 1): 1, edge_id_for(0, 2): 2}
        )
        rest = restrict_to_edges(semigraph, {edge_id_for(0, 3)})
        instance = build_node_list_instance(EDGE_COLORING, semigraph, rest, partial)
        centre_list = instance.list_for(0)
        assert len(centre_list.fixed) == 2
        leaf_list = instance.list_for(3)
        assert leaf_list.fixed == ()
        # Colour 3 with a large enough degree part completes the colouring.
        good = HalfEdgeLabeling(
            {
                HalfEdge(0, edge_id_for(0, 3)): (3, 3),
                HalfEdge(3, edge_id_for(0, 3)): (1, 3),
            }
        )
        assert verify_node_list_solution(instance, good).ok
        # Re-using colour 1 at the centre violates the centre's list.
        bad = HalfEdgeLabeling(
            {
                HalfEdge(0, edge_id_for(0, 3)): (3, 1),
                HalfEdge(3, edge_id_for(0, 3)): (1, 1),
            }
        )
        result = verify_node_list_solution(instance, bad)
        assert not result.ok
        assert any(v.kind == "node" and v.subject == 0 for v in result.violations)

    def test_incomplete_labeling_reported(self):
        semigraph, inner, outer = self.build_tree_parts()
        partial = MIS.from_classic(outer, {0, 3})
        instance = build_edge_list_instance(MIS, semigraph, inner, partial)
        result = verify_edge_list_solution(instance, HalfEdgeLabeling())
        assert not result.ok
        assert all(v.kind == "unlabeled" for v in result.violations)

    def test_list_for_defaults(self):
        semigraph = semigraph_from_graph(nx.path_graph(2))
        edge_instance = build_edge_list_instance(
            MIS, semigraph, semigraph, HalfEdgeLabeling()
        )
        assert edge_instance.list_for(edge_id_for(0, 1)).fixed == ()
        node_instance = build_node_list_instance(
            MATCHING, semigraph, semigraph, HalfEdgeLabeling()
        )
        assert node_instance.list_for(0).fixed == ()


class TestMatchingLists:
    def test_matching_node_list_blocks_second_matched_edge(self):
        constraint = NodeListConstraint(MATCHING, fixed=(MATCHED, DUMMY))
        assert constraint.allows((POINTER, UNMATCHED))
        assert not constraint.allows((MATCHED,))
