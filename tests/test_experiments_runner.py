"""Runner tests: execution, determinism, resume, parallel equivalence."""

import json

import pytest

from repro.experiments import (
    AlgorithmFamily,
    ResultStore,
    ScenarioSpec,
    Suite,
    SweepRunner,
    register_algorithm,
)
from repro.experiments.spec import ALGORITHMS, ANALYTIC_GENERATOR

TINY = Suite(
    name="tiny",
    description="test suite: two measured scenarios and one analytic",
    scenarios=(
        ScenarioSpec(
            name="edge/tree", generator="random-tree",
            algorithm="arb-edge-coloring", sizes=(24, 48), seeds=(1, 2),
        ),
        ScenarioSpec(
            name="mis/tree", generator="random-tree",
            algorithm="tree-mis", sizes=(24,), seeds=(1,),
        ),
        ScenarioSpec(
            name="shape", generator=ANALYTIC_GENERATOR,
            algorithm="predicted-edge-coloring-log12",
            sizes=(2**64, 2**128), seeds=(0,),
        ),
    ),
)


def records_without_wall_clock(store: ResultStore) -> list[dict]:
    records = store.records()
    for record in records:
        record.pop("wall_clock_s")
        record.pop("timings", None)
    return records


class TestExecution:
    def test_runs_all_cells_verified(self, tmp_path):
        store = ResultStore(tmp_path)
        report = SweepRunner(TINY, store, jobs=1).run()
        assert report.ok
        assert report.executed == len(TINY.cells()) == 7
        assert report.skipped == 0 and not report.failures
        results = store.results()
        assert all(result.verified for result in results)

    def test_measured_cells_carry_messages_analytic_none(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(TINY, store, jobs=1).run()
        for result in store.results():
            if result.generator == ANALYTIC_GENERATOR:
                assert result.messages is None
            else:
                assert result.messages > 0

    def test_progress_callback_sees_every_cell(self, tmp_path):
        seen = []
        store = ResultStore(tmp_path)
        SweepRunner(TINY, store, jobs=1).run(progress=seen.append)
        assert len(seen) == 7


class TestDeterminism:
    def test_same_seeds_identical_jsonl_modulo_wall_clock(self, tmp_path):
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        SweepRunner(TINY, store_a, jobs=1).run()
        SweepRunner(TINY, store_b, jobs=1).run()
        assert records_without_wall_clock(store_a) == records_without_wall_clock(store_b)

    def test_parallel_matches_serial_as_sets(self, tmp_path):
        store_serial = ResultStore(tmp_path / "serial")
        store_parallel = ResultStore(tmp_path / "parallel")
        SweepRunner(TINY, store_serial, jobs=1).run()
        report = SweepRunner(TINY, store_parallel, jobs=2).run()
        assert report.ok

        def keyed(store):
            return {
                record["fingerprint"]: record
                for record in records_without_wall_clock(store)
            }

        assert keyed(store_serial) == keyed(store_parallel)


class TestResume:
    def test_second_run_skips_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(TINY, store, jobs=1).run()
        report = SweepRunner(TINY, store, jobs=1).run()
        assert report.executed == 0
        assert report.skipped == report.total_cells == 7
        assert len(store) == 7

    def test_resume_after_simulated_crash(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(TINY, store, jobs=1).run()
        lines = store.path.read_text().splitlines()
        # Keep 3 complete records and a truncated 4th: a crash mid-append.
        store.path.write_text("\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2])
        crashed = ResultStore(tmp_path)
        assert len(crashed.records()) == 3
        report = SweepRunner(TINY, crashed, jobs=1).run()
        assert report.skipped == 3
        assert report.executed == 4
        assert crashed.completed_fingerprints() == {
            cell.fingerprint for cell in TINY.cells()
        }

    def test_corrupt_middle_line_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(TINY, store, jobs=1).run()
        lines = store.path.read_text().splitlines()
        lines[1] = lines[1][:10]
        store.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            ResultStore(tmp_path).records()

    def test_unverified_records_are_rerun(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(TINY, store, jobs=1).run()
        records = store.records()
        records[0]["verified"] = False
        store.path.write_text(
            "\n".join(json.dumps(record, sort_keys=True) for record in records) + "\n"
        )
        report = SweepRunner(TINY, ResultStore(tmp_path), jobs=1).run()
        assert report.executed == 1


class TestFailures:
    def test_raising_cells_reported_not_stored(self, tmp_path):
        if "_test-boom" not in ALGORITHMS:
            def boom(graph, generator, n):
                raise RuntimeError("boom")

            register_algorithm(AlgorithmFamily(
                name="_test-boom", description="always raises", kind="baseline",
                run=boom,
            ))
        suite = Suite(
            name="boom", description="", scenarios=(
                ScenarioSpec(
                    name="boom", generator="random-tree", algorithm="_test-boom",
                    sizes=(10,),
                ),
                ScenarioSpec(
                    name="ok", generator="random-tree", algorithm="baseline-mis",
                    sizes=(10,),
                ),
            ),
        )
        store = ResultStore(tmp_path)
        report = SweepRunner(suite, store, jobs=1).run()
        assert not report.ok
        assert len(report.failures) == 1
        assert "boom" in report.failures[0].error
        assert report.executed == 1  # the healthy cell still ran and stored
        assert len(store) == 1


class TestEngineProvenance:
    ENGINE_SUITE = Suite(
        name="engine-tiny",
        description="test suite: a kernel-capable baseline and a transform",
        scenarios=(
            ScenarioSpec(
                name="linial/tree", generator="random-tree",
                algorithm="baseline-linial", sizes=(40,), seeds=(1,),
            ),
            ScenarioSpec(
                name="mis/tree", generator="random-tree",
                algorithm="tree-mis", sizes=(24,), seeds=(1,),
            ),
        ),
    )

    def test_auto_mode_records_backend_per_family(self, tmp_path):
        from repro.local import numpy_available

        store = ResultStore(tmp_path)
        report = SweepRunner(self.ENGINE_SUITE, store, jobs=1).run()
        assert report.ok
        by_scenario = {result.scenario: result for result in store.results()}
        linial = by_scenario["linial/tree"]
        if numpy_available():
            assert linial.engine == "vectorized[numpy]"
            assert linial.engine_rounds
            assert any(
                key.startswith("vectorized/linial/") for key in linial.engine_rounds
            )
        else:
            assert linial.engine == "interpreted"
        assert by_scenario["mis/tree"].engine is not None

    def test_interpreted_override_forces_interpreted_everywhere(self, tmp_path):
        store = ResultStore(tmp_path)
        report = SweepRunner(
            self.ENGINE_SUITE, store, jobs=1, engine="interpreted"
        ).run()
        assert report.ok
        assert all(result.engine == "interpreted" for result in store.results())

    def test_semantic_payload_identical_across_engines(self, tmp_path):
        from repro.experiments.store import NONSEMANTIC_FIELDS

        payloads = []
        for engine in ("auto", "interpreted"):
            store = ResultStore(tmp_path / engine)
            SweepRunner(self.ENGINE_SUITE, store, jobs=1, engine=engine).run()
            payloads.append([
                {
                    key: value
                    for key, value in record.items()
                    if key not in NONSEMANTIC_FIELDS
                }
                for record in sorted(
                    store.records(), key=lambda r: r["fingerprint"]
                )
            ])
        assert payloads[0] == payloads[1]

    def test_effective_engine_mode_precedence(self):
        from repro.experiments.runner import _effective_engine_mode
        from repro.local import numpy_available

        assert _effective_engine_mode("auto", None) == "auto"
        # a family pin is a preference: it degrades to auto without numpy
        expected_pin = "vectorized" if numpy_available() else "auto"
        assert _effective_engine_mode("vectorized", None) == expected_pin
        assert _effective_engine_mode("vectorized", "interpreted") == "interpreted"
        assert _effective_engine_mode("auto", "vectorized") == "vectorized"


class TestPhaseTimings:
    """run_cell records a generate/run/verify/simulate breakdown as
    nonsemantic telemetry on CellResult.timings."""

    def measured_cell(self):
        from repro.experiments import run_cell

        cell = next(c for c in TINY.cells() if c.generator != ANALYTIC_GENERATOR)
        return run_cell(TINY.name, cell)

    def test_measured_cell_records_all_phases(self):
        result = self.measured_cell()
        timings = result.timings
        assert timings is not None
        assert {"generate", "run", "verify", "simulate"} <= set(timings)
        assert all(seconds >= 0 for seconds in timings.values())
        # verify and simulate are nested inside run's wall clock
        assert timings["simulate"] <= timings["run"] + 1e-6

    def test_analytic_cell_skips_generate_and_simulate(self):
        from repro.experiments import run_cell

        cell = next(c for c in TINY.cells() if c.generator == ANALYTIC_GENERATOR)
        timings = run_cell(TINY.name, cell).timings
        assert timings is not None and "run" in timings
        assert "generate" not in timings
        assert "simulate" not in timings

    def test_timings_round_trip_and_stay_nonsemantic(self):
        from repro.experiments import CellResult
        from repro.experiments.store import NONSEMANTIC_FIELDS

        assert "timings" in NONSEMANTIC_FIELDS
        result = self.measured_cell()
        record = result.to_record()
        assert set(record["timings"]) == set(result.timings)
        restored = CellResult.from_record(record)
        assert restored.timings == record["timings"]
        # a pre-observability record (no timings key) still loads
        legacy = dict(record)
        del legacy["timings"]
        assert CellResult.from_record(legacy).timings is None
