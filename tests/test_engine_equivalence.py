"""Equivalence of the fast engine against the seed reference engine.

Every registered synchronous baseline algorithm is run twice on each
seeded instance — once through the active-set / CSR engine
(:func:`run_synchronous`) and once through the preserved seed engine
(:func:`run_synchronous_reference`) — and the ``RunResult`` fields
``rounds``, ``messages_sent`` and ``outputs`` must be identical.

The CSR rewrites of the decomposition processes are cross-checked the
same way, against naive dict-of-set reimplementations of the seed
peeling loops kept inside this module.

The vectorized NumPy backend (:func:`run_vectorized`) is pinned
three-ways on every kernel-capable scenario — vectorized vs. fast vs.
seed engine, including :class:`MessageMeter` accounting — and the array
peeling variants of the decomposition processes are pinned field-by-field
against their interpreted counterparts.
"""

import networkx as nx
import pytest

from repro.baselines.color_reduction import ColorClassReduction
from repro.baselines.coloring import deg_plus_one_coloring
from repro.baselines.forest_coloring import ForestThreeColoring
from repro.baselines.linial import LinialColoring
from repro.baselines.mis import ColorClassMIS
from repro.decomposition import arboricity_decomposition, rake_and_compress
from repro.generators import (
    bfs_forest_parents,
    forest_union,
    random_graph_with_max_degree,
    random_tree,
)
from repro.local import (
    EngineScope,
    EngineUnavailable,
    MessageMeter,
    Network,
    run_synchronous,
    run_synchronous_reference,
    run_vectorized,
    select_engine,
    supports_vectorized,
)




def _tree_instances():
    yield "random-tree-40", random_tree(40, seed=3)
    yield "random-tree-90", random_tree(90, seed=17)
    yield "path-25", nx.path_graph(25)
    yield "star-30", nx.star_graph(29)


def _graph_instances():
    yield from _tree_instances()
    yield "forest-union-50", forest_union(50, arboricity=2, seed=5)
    yield "bounded-degree-60", random_graph_with_max_degree(60, 5, seed=9)


def _networks():
    """(label, Network, algorithm, max_rounds) for every registered baseline."""
    scenarios = []
    for name, graph in _graph_instances():
        scenarios.append((f"linial/{name}", Network(graph), LinialColoring(), None))

        coloring = deg_plus_one_coloring(graph)
        num_classes = max(coloring.colours.values(), default=1)
        scenarios.append(
            (
                f"color-class-mis/{name}",
                Network(
                    graph,
                    node_inputs=dict(coloring.colours),
                    shared={"num_classes": num_classes},
                ),
                ColorClassMIS(),
                num_classes + 2,
            )
        )
        scenarios.append(
            (
                f"color-class-reduction/{name}",
                Network(
                    graph,
                    node_inputs=dict(coloring.colours),
                    shared={"num_classes": num_classes},
                ),
                ColorClassReduction(),
                num_classes + 1,
            )
        )
    for name, tree in _tree_instances():
        parents = bfs_forest_parents(tree)
        scenarios.append(
            (
                f"forest-3-coloring/{name}",
                Network(tree, node_inputs=parents),
                ForestThreeColoring(),
                None,
            )
        )
    return scenarios


@pytest.mark.parametrize(
    "label, network, algorithm, max_rounds",
    _networks(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_fast_engine_matches_reference(label, network, algorithm, max_rounds):
    fast = run_synchronous(network, algorithm, max_rounds=max_rounds)
    reference = run_synchronous_reference(network, algorithm, max_rounds=max_rounds)
    assert fast.rounds == reference.rounds
    assert fast.messages_sent == reference.messages_sent
    assert fast.outputs == reference.outputs


# ----------------------------------------------------------------------
# vectorized backend: three-way equivalence on kernel-capable scenarios
# ----------------------------------------------------------------------
def _vectorized_networks():
    """The kernel-capable subset of :func:`_networks`."""
    return [
        scenario for scenario in _networks() if supports_vectorized(scenario[2])
    ]


@pytest.mark.parametrize(
    "label, network, algorithm, max_rounds",
    _vectorized_networks(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_vectorized_engine_matches_both(label, network, algorithm, max_rounds):
    with MessageMeter() as vectorized_meter:
        vectorized = run_vectorized(network, algorithm, max_rounds=max_rounds)
    with MessageMeter() as fast_meter:
        fast = run_synchronous(network, algorithm, max_rounds=max_rounds)
    reference = run_synchronous_reference(network, algorithm, max_rounds=max_rounds)
    assert vectorized.rounds == fast.rounds == reference.rounds
    assert vectorized.messages_sent == fast.messages_sent == reference.messages_sent
    assert vectorized.outputs == fast.outputs == reference.outputs
    assert vectorized_meter.messages == fast_meter.messages
    assert vectorized_meter.runs == fast_meter.runs


def test_every_kernel_capable_baseline_is_covered():
    """The vectorized backend claims exactly Linial + forest 3-colouring."""
    assert supports_vectorized(LinialColoring())
    assert supports_vectorized(ForestThreeColoring())
    assert not supports_vectorized(ColorClassMIS())
    assert not supports_vectorized(ColorClassReduction())


def test_select_engine_routes_by_mode_and_capability():
    capable, incapable = LinialColoring(), ColorClassMIS()
    assert select_engine(capable, "auto") is run_vectorized
    assert select_engine(capable, "vectorized") is run_vectorized
    assert select_engine(capable, "interpreted") is run_synchronous
    assert select_engine(incapable, "auto") is run_synchronous
    with pytest.raises(EngineUnavailable):
        select_engine(incapable, "vectorized")


def test_engine_scope_records_backend_provenance():
    tree = random_tree(30, seed=1)
    with EngineScope("auto") as scope:
        run_vectorized(Network(tree), LinialColoring())
    assert scope.engine_used == "vectorized"
    with EngineScope("interpreted") as scope:
        run_synchronous(Network(tree), LinialColoring())
    assert scope.engine_used == "interpreted"
    with EngineScope("auto") as scope:
        run_vectorized(Network(tree), LinialColoring())
        run_synchronous(Network(tree), LinialColoring())
    assert scope.engine_used == "mixed"


def test_baseline_entry_points_accept_engine_override():
    from repro.baselines.forest_coloring import color_forest_three
    from repro.baselines.linial import linial_coloring

    tree = random_tree(40, seed=7)
    parents = bfs_forest_parents(tree)
    for engine in (None, "auto", "interpreted", "vectorized"):
        assert linial_coloring(tree, engine=engine) == linial_coloring(
            tree, engine="interpreted"
        )
        assert color_forest_three(tree, parents, engine=engine) == color_forest_three(
            tree, parents, engine="interpreted"
        )


# ----------------------------------------------------------------------
# degenerate inputs on which the engines could diverge
# ----------------------------------------------------------------------
def test_self_loops_are_rejected_at_network_construction():
    """A self-loop counts once in the CSR degree but twice in the reference
    engine's ``graph.degree``, so the engines would disagree on Δ.  The
    Network constructor rejects such graphs, like directed/multigraphs."""
    graph = nx.path_graph(6)
    graph.add_edge(3, 3)
    with pytest.raises(ValueError, match="self-loop"):
        Network(graph)


def test_loop_free_graph_still_constructs():
    network = Network(nx.path_graph(6))
    assert network.max_degree == 2


# ----------------------------------------------------------------------
# decomposition peeling loops vs. naive seed reimplementations
# ----------------------------------------------------------------------
def _naive_rake_compress_layers(tree, k):
    """The seed peeling loop of rake_and_compress (dict-of-set version)."""
    remaining = dict(tree.degree())
    alive = set(tree.nodes())
    adjacency = {node: set(tree.neighbors(node)) for node in tree.nodes()}

    def remove(nodes):
        for node in nodes:
            alive.discard(node)
        for node in nodes:
            for neighbor in adjacency[node]:
                if neighbor in alive:
                    remaining[neighbor] -= 1
            remaining[node] = 0

    layers = []
    while alive:
        compressed = {
            node
            for node in alive
            if remaining[node] <= k
            and all(remaining[nbr] <= k for nbr in adjacency[node] if nbr in alive)
        }
        remove(compressed)
        if compressed:
            layers.append(("compress", frozenset(compressed)))
        raked = {node for node in alive if remaining[node] <= 1}
        remove(raked)
        if raked:
            layers.append(("rake", frozenset(raked)))
        assert compressed or raked
    return layers


def _naive_arboricity_layers(graph, k, b):
    """The seed peeling loop of Algorithm 3 (dict-of-set version)."""
    remaining = dict(graph.degree())
    alive = set(graph.nodes())
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}
    layers = []
    while alive:
        marked = {
            node
            for node in alive
            if remaining[node] <= k
            and sum(1 for nbr in adjacency[node] if nbr in alive and remaining[nbr] > k)
            <= b
        }
        assert marked
        layers.append(frozenset(marked))
        for node in marked:
            alive.discard(node)
        for node in marked:
            for neighbor in adjacency[node]:
                if neighbor in alive:
                    remaining[neighbor] -= 1
            remaining[node] = 0
    return layers


@pytest.mark.parametrize("n, k, seed", [(60, 3, 1), (150, 5, 2), (300, 8, 3)])
def test_rake_compress_layers_match_naive(n, k, seed):
    tree = random_tree(n, seed=seed)
    decomposition = rake_and_compress(tree, k=k)
    fast_layers = [(layer.kind, layer.nodes) for layer in decomposition.layers]
    assert fast_layers == _naive_rake_compress_layers(tree, k)


@pytest.mark.parametrize("n, a, seed", [(80, 2, 4), (200, 3, 5)])
def test_arboricity_layers_match_naive(n, a, seed):
    graph = forest_union(n, arboricity=a, seed=seed)
    k, b = 5 * a, 2 * a
    decomposition = arboricity_decomposition(graph, arboricity=a, k=k)
    assert decomposition.layers == _naive_arboricity_layers(graph, k, b)


# ----------------------------------------------------------------------
# vectorized peeling variants vs. the interpreted CSR loops
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n, k, seed", [(60, 3, 1), (150, 5, 2), (300, 8, 3)])
def test_rake_compress_vectorized_matches_interpreted(n, k, seed):
    tree = random_tree(n, seed=seed)
    vectorized = rake_and_compress(tree, k=k, engine="vectorized")
    interpreted = rake_and_compress(tree, k=k, engine="interpreted")
    assert vectorized.layers == interpreted.layers
    assert vectorized.node_layer == interpreted.node_layer
    assert vectorized.iterations == interpreted.iterations
    assert vectorized.rounds == interpreted.rounds
    assert (
        vectorized.theoretical_iteration_bound
        == interpreted.theoretical_iteration_bound
    )
    assert vectorized.identifiers == interpreted.identifiers


@pytest.mark.parametrize("n, a, seed", [(80, 2, 4), (200, 3, 5)])
def test_arboricity_vectorized_matches_interpreted(n, a, seed):
    graph = forest_union(n, arboricity=a, seed=seed)
    vectorized = arboricity_decomposition(
        graph, arboricity=a, k=5 * a, engine="vectorized"
    )
    interpreted = arboricity_decomposition(
        graph, arboricity=a, k=5 * a, engine="interpreted"
    )
    assert vectorized.layers == interpreted.layers
    assert vectorized.node_iteration == interpreted.node_iteration
    assert vectorized.iterations == interpreted.iterations
    assert vectorized.degree_snapshots == interpreted.degree_snapshots
    assert vectorized.typical_edges == interpreted.typical_edges
    assert vectorized.atypical_edges == interpreted.atypical_edges
    assert vectorized.forests == interpreted.forests
    assert vectorized.forest_colorings == interpreted.forest_colorings
    assert vectorized.star_collections == interpreted.star_collections
    assert vectorized.forest_coloring_rounds == interpreted.forest_coloring_rounds
    assert vectorized.rounds == interpreted.rounds
