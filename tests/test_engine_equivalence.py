"""Equivalence of the fast engine against the seed reference engine.

Every registered synchronous baseline algorithm is run twice on each
seeded instance — once through the active-set / CSR engine
(:func:`run_synchronous`) and once through the preserved seed engine
(:func:`run_synchronous_reference`) — and the ``RunResult`` fields
``rounds``, ``messages_sent`` and ``outputs`` must be identical.

The CSR rewrites of the decomposition processes are cross-checked the
same way, against naive dict-of-set reimplementations of the seed
peeling loops kept inside this module.

The vectorized array engine (:func:`run_vectorized`) is pinned
three-ways on every kernel-capable scenario — vectorized vs. fast vs.
seed engine, including :class:`MessageMeter` accounting — and the array
peeling variants of the decomposition processes are pinned field-by-field
against their interpreted counterparts.

The vectorized sections skip (not fail) without numpy: the no-numpy CI
step runs this module to pin that the interpreted engine and the
degrade-to-interpreted paths stay green on a numpy-free interpreter.
"""

import networkx as nx
import pytest

from repro.baselines.color_reduction import ColorClassReduction
from repro.baselines.coloring import deg_plus_one_coloring
from repro.baselines.forest_coloring import ForestThreeColoring
from repro.baselines.linial import LinialColoring
from repro.baselines.mis import ColorClassMIS
from repro.decomposition import arboricity_decomposition, rake_and_compress
from repro.generators import (
    bfs_forest_parents,
    forest_union,
    random_graph_with_max_degree,
    random_tree,
)
from repro.local import (
    EnginePolicy,
    EngineUnavailable,
    KERNELS,
    MessageMeter,
    Network,
    NodeContext,
    SynchronousAlgorithm,
    numpy_available,
    register_kernel,
    run_synchronous,
    run_synchronous_reference,
    run_vectorized,
    select_engine,
    supports_vectorized,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="requires the numpy array backend"
)




def _tree_instances():
    yield "random-tree-40", random_tree(40, seed=3)
    yield "random-tree-90", random_tree(90, seed=17)
    yield "path-25", nx.path_graph(25)
    yield "star-30", nx.star_graph(29)


def _graph_instances():
    yield from _tree_instances()
    yield "forest-union-50", forest_union(50, arboricity=2, seed=5)
    yield "bounded-degree-60", random_graph_with_max_degree(60, 5, seed=9)


def _networks():
    """(label, Network, algorithm, max_rounds) for every registered baseline."""
    scenarios = []
    for name, graph in _graph_instances():
        scenarios.append((f"linial/{name}", Network(graph), LinialColoring(), None))

        coloring = deg_plus_one_coloring(graph)
        num_classes = max(coloring.colours.values(), default=1)
        scenarios.append(
            (
                f"color-class-mis/{name}",
                Network(
                    graph,
                    node_inputs=dict(coloring.colours),
                    shared={"num_classes": num_classes},
                ),
                ColorClassMIS(),
                num_classes + 2,
            )
        )
        scenarios.append(
            (
                f"color-class-reduction/{name}",
                Network(
                    graph,
                    node_inputs=dict(coloring.colours),
                    shared={"num_classes": num_classes},
                ),
                ColorClassReduction(),
                num_classes + 1,
            )
        )
    for name, tree in _tree_instances():
        parents = bfs_forest_parents(tree)
        scenarios.append(
            (
                f"forest-3-coloring/{name}",
                Network(tree, node_inputs=parents),
                ForestThreeColoring(),
                None,
            )
        )
    return scenarios


@pytest.mark.parametrize(
    "label, network, algorithm, max_rounds",
    _networks(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_fast_engine_matches_reference(label, network, algorithm, max_rounds):
    fast = run_synchronous(network, algorithm, max_rounds=max_rounds)
    reference = run_synchronous_reference(network, algorithm, max_rounds=max_rounds)
    assert fast.rounds == reference.rounds
    assert fast.messages_sent == reference.messages_sent
    assert fast.outputs == reference.outputs


# ----------------------------------------------------------------------
# vectorized backend: three-way equivalence on kernel-capable scenarios
# ----------------------------------------------------------------------
def _vectorized_networks():
    """The kernel-capable subset of :func:`_networks`."""
    return [
        scenario for scenario in _networks() if supports_vectorized(scenario[2])
    ]


@requires_numpy
@pytest.mark.parametrize(
    "label, network, algorithm, max_rounds",
    _vectorized_networks(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_vectorized_engine_matches_both(label, network, algorithm, max_rounds):
    with MessageMeter() as vectorized_meter:
        vectorized = run_vectorized(network, algorithm, max_rounds=max_rounds)
    with MessageMeter() as fast_meter:
        fast = run_synchronous(network, algorithm, max_rounds=max_rounds)
    reference = run_synchronous_reference(network, algorithm, max_rounds=max_rounds)
    assert vectorized.rounds == fast.rounds == reference.rounds
    assert vectorized.messages_sent == fast.messages_sent == reference.messages_sent
    assert vectorized.outputs == fast.outputs == reference.outputs
    assert vectorized_meter.messages == fast_meter.messages
    assert vectorized_meter.runs == fast_meter.runs


class _KernelLess(SynchronousAlgorithm):
    """A baseline no kernel is registered for (capability tests)."""

    name = "kernel-less"

    def initial_state(self, ctx: NodeContext) -> int:
        return 0

    def messages(self, state: int, ctx: NodeContext) -> dict:
        return {}

    def transition(self, state: int, inbox: dict, ctx: NodeContext) -> int:
        return state + 1

    def has_terminated(self, state: int, ctx: NodeContext) -> bool:
        return state >= 1

    def output(self, state: int, ctx: NodeContext) -> int:
        return state


def test_every_kernel_capable_baseline_is_covered():
    """The registry claims Linial, forest 3-colouring, MIS and Δ+1 reduction."""
    assert supports_vectorized(LinialColoring())
    assert supports_vectorized(ForestThreeColoring())
    assert supports_vectorized(ColorClassMIS())
    assert supports_vectorized(ColorClassReduction())
    assert not supports_vectorized(_KernelLess())


def test_supports_vectorized_resolves_subclasses_via_mro():
    """A subclass of a kernel-capable algorithm inherits its kernel.

    Regression: the registry used to look up ``type(algorithm)``
    exactly, silently dropping subclasses to the interpreted engine.
    """

    class TunedLinial(LinialColoring):
        pass

    algorithm = TunedLinial()
    assert supports_vectorized(algorithm)
    spec = KERNELS.lookup(algorithm)
    assert spec is not None and spec.name == "linial"
    if numpy_available():
        tree = random_tree(30, seed=2)
        vectorized = run_vectorized(Network(tree), algorithm)
        fast = run_synchronous(Network(tree), algorithm)
        assert vectorized.outputs == fast.outputs
        assert vectorized.rounds == fast.rounds


def test_register_kernel_refuses_silent_overwrite():
    class Doomed(_KernelLess):
        name = "doomed"

    try:
        @register_kernel(Doomed, name="first")
        def first_kernel(xp, network, algorithm, max_rounds):
            raise NotImplementedError

        with pytest.raises(ValueError, match=r"second.*first|first.*second"):
            @register_kernel(Doomed, name="second")
            def second_kernel(xp, network, algorithm, max_rounds):
                raise NotImplementedError

        # Same backend pair still registered to the original kernel…
        assert KERNELS.lookup(Doomed()).name == "first"
        # …until the explicit escape hatch swaps it.
        @register_kernel(Doomed, name="second", replace=True)
        def second_kernel_replacing(xp, network, algorithm, max_rounds):
            raise NotImplementedError

        assert KERNELS.lookup(Doomed()).name == "second"
    finally:
        KERNELS._by_type.pop(Doomed, None)


@requires_numpy
def test_select_engine_routes_by_mode_and_capability():
    capable, incapable = LinialColoring(), _KernelLess()
    assert select_engine(capable, "auto") is run_vectorized
    assert select_engine(capable, "vectorized") is run_vectorized
    assert select_engine(capable, "interpreted") is run_synchronous
    assert select_engine(incapable, "auto") is run_synchronous
    with pytest.raises(EngineUnavailable):
        select_engine(incapable, "vectorized")


@requires_numpy
def test_engine_policy_records_backend_provenance():
    tree = random_tree(30, seed=1)
    with EnginePolicy("auto") as policy:
        run_vectorized(Network(tree), LinialColoring())
    assert policy.engine_used == "vectorized[numpy]"
    assert policy.backends_used == {"numpy"}
    with EnginePolicy("interpreted") as policy:
        run_synchronous(Network(tree), LinialColoring())
    assert policy.engine_used == "interpreted"
    with EnginePolicy("auto") as policy:
        run_vectorized(Network(tree), LinialColoring())
        run_synchronous(Network(tree), LinialColoring())
    assert policy.engine_used == "mixed"


@requires_numpy
def test_engine_policy_accounts_dispatch_rounds():
    tree = random_tree(30, seed=1)
    with EnginePolicy("auto") as policy:
        vectorized = run_vectorized(Network(tree), LinialColoring())
        interpreted = run_synchronous(Network(tree), LinialColoring())
    assert policy.dispatches == {
        "vectorized/linial/numpy": vectorized.rounds,
        "interpreted/linial-coloring/-": interpreted.rounds,
    }


@requires_numpy
def test_baseline_entry_points_respect_ambient_policy():
    from repro.baselines.forest_coloring import color_forest_three
    from repro.baselines.linial import linial_coloring

    tree = random_tree(40, seed=7)
    parents = bfs_forest_parents(tree)
    with EnginePolicy("interpreted"):
        expected_colours = linial_coloring(tree)
        expected_forest = color_forest_three(tree, parents)
    for mode in ("auto", "interpreted", "vectorized"):
        with EnginePolicy(mode):
            assert linial_coloring(tree) == expected_colours
            assert color_forest_three(tree, parents) == expected_forest
    # No policy at all behaves like "auto".
    assert linial_coloring(tree) == expected_colours
    assert color_forest_three(tree, parents) == expected_forest


# ----------------------------------------------------------------------
# degenerate inputs on which the engines could diverge
# ----------------------------------------------------------------------
def test_self_loops_are_rejected_at_network_construction():
    """A self-loop counts once in the CSR degree but twice in the reference
    engine's ``graph.degree``, so the engines would disagree on Δ.  The
    Network constructor rejects such graphs, like directed/multigraphs."""
    graph = nx.path_graph(6)
    graph.add_edge(3, 3)
    with pytest.raises(ValueError, match="self-loop"):
        Network(graph)


def test_loop_free_graph_still_constructs():
    network = Network(nx.path_graph(6))
    assert network.max_degree == 2


# ----------------------------------------------------------------------
# decomposition peeling loops vs. naive seed reimplementations
# ----------------------------------------------------------------------
def _naive_rake_compress_layers(tree, k):
    """The seed peeling loop of rake_and_compress (dict-of-set version)."""
    remaining = dict(tree.degree())
    alive = set(tree.nodes())
    adjacency = {node: set(tree.neighbors(node)) for node in tree.nodes()}

    def remove(nodes):
        for node in nodes:
            alive.discard(node)
        for node in nodes:
            for neighbor in adjacency[node]:
                if neighbor in alive:
                    remaining[neighbor] -= 1
            remaining[node] = 0

    layers = []
    while alive:
        compressed = {
            node
            for node in alive
            if remaining[node] <= k
            and all(remaining[nbr] <= k for nbr in adjacency[node] if nbr in alive)
        }
        remove(compressed)
        if compressed:
            layers.append(("compress", frozenset(compressed)))
        raked = {node for node in alive if remaining[node] <= 1}
        remove(raked)
        if raked:
            layers.append(("rake", frozenset(raked)))
        assert compressed or raked
    return layers


def _naive_arboricity_layers(graph, k, b):
    """The seed peeling loop of Algorithm 3 (dict-of-set version)."""
    remaining = dict(graph.degree())
    alive = set(graph.nodes())
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}
    layers = []
    while alive:
        marked = {
            node
            for node in alive
            if remaining[node] <= k
            and sum(1 for nbr in adjacency[node] if nbr in alive and remaining[nbr] > k)
            <= b
        }
        assert marked
        layers.append(frozenset(marked))
        for node in marked:
            alive.discard(node)
        for node in marked:
            for neighbor in adjacency[node]:
                if neighbor in alive:
                    remaining[neighbor] -= 1
            remaining[node] = 0
    return layers


@pytest.mark.parametrize("n, k, seed", [(60, 3, 1), (150, 5, 2), (300, 8, 3)])
def test_rake_compress_layers_match_naive(n, k, seed):
    tree = random_tree(n, seed=seed)
    decomposition = rake_and_compress(tree, k=k)
    fast_layers = [(layer.kind, layer.nodes) for layer in decomposition.layers]
    assert fast_layers == _naive_rake_compress_layers(tree, k)


@pytest.mark.parametrize("n, a, seed", [(80, 2, 4), (200, 3, 5)])
def test_arboricity_layers_match_naive(n, a, seed):
    graph = forest_union(n, arboricity=a, seed=seed)
    k, b = 5 * a, 2 * a
    decomposition = arboricity_decomposition(graph, arboricity=a, k=k)
    assert decomposition.layers == _naive_arboricity_layers(graph, k, b)


# ----------------------------------------------------------------------
# vectorized peeling variants vs. the interpreted CSR loops
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("n, k, seed", [(60, 3, 1), (150, 5, 2), (300, 8, 3)])
def test_rake_compress_vectorized_matches_interpreted(n, k, seed):
    tree = random_tree(n, seed=seed)
    with EnginePolicy("vectorized"):
        vectorized = rake_and_compress(tree, k=k)
    with EnginePolicy("interpreted"):
        interpreted = rake_and_compress(tree, k=k)
    assert vectorized.layers == interpreted.layers
    assert vectorized.node_layer == interpreted.node_layer
    assert vectorized.iterations == interpreted.iterations
    assert vectorized.rounds == interpreted.rounds
    assert (
        vectorized.theoretical_iteration_bound
        == interpreted.theoretical_iteration_bound
    )
    assert vectorized.identifiers == interpreted.identifiers


@requires_numpy
@pytest.mark.parametrize("n, a, seed", [(80, 2, 4), (200, 3, 5)])
def test_arboricity_vectorized_matches_interpreted(n, a, seed):
    graph = forest_union(n, arboricity=a, seed=seed)
    with EnginePolicy("vectorized"):
        vectorized = arboricity_decomposition(graph, arboricity=a, k=5 * a)
    with EnginePolicy("interpreted"):
        interpreted = arboricity_decomposition(graph, arboricity=a, k=5 * a)
    assert vectorized.layers == interpreted.layers
    assert vectorized.node_iteration == interpreted.node_iteration
    assert vectorized.iterations == interpreted.iterations
    assert vectorized.degree_snapshots == interpreted.degree_snapshots
    assert vectorized.typical_edges == interpreted.typical_edges
    assert vectorized.atypical_edges == interpreted.atypical_edges
    assert vectorized.forests == interpreted.forests
    assert vectorized.forest_colorings == interpreted.forest_colorings
    assert vectorized.star_collections == interpreted.star_collections
    assert vectorized.forest_coloring_rounds == interpreted.forest_coloring_rounds
    assert vectorized.rounds == interpreted.rounds
