"""Daemon/client tests: the line-JSON protocol verbs end to end over a
real Unix socket, plus protocol-level edge cases."""

import json
import socket
import time

import pytest

from repro.experiments import ResultStore, get_suite
from repro.service import ServiceClient, ServiceError, SweepDaemon
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    recv_message,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)


@pytest.fixture()
def daemon(tmp_path):
    daemon = SweepDaemon(
        socket_path=tmp_path / "svc.sock", workers=2, batch_size=4
    )
    daemon.start()
    yield daemon
    daemon.close()


@pytest.fixture()
def client(daemon):
    return ServiceClient(daemon.socket_path)


class TestVerbs:
    def test_ping_reports_pool(self, client):
        response = client.ping()
        assert response["ok"] is True
        assert response["pool"]["workers"] == 2
        assert response["jobs"] == 0

    def test_submit_wait_results(self, client, tmp_path):
        out = tmp_path / "store"
        job = client.submit("paper-claims", smoke=True, out=str(out))
        status = client.wait(job, timeout=120)
        assert status["state"] == "done"
        expected = len(get_suite("paper-claims").cells(smoke=True))
        assert status["executed"] == expected
        assert status["unverified"] == 0 and not status["failures"]
        records = client.results(job)
        assert len(records) == expected
        # the daemon's store is a normal resumable store on disk
        assert len(ResultStore(out).records()) == expected

    def test_submitted_jobs_resume_against_store(self, client, tmp_path):
        out = str(tmp_path / "store")
        first = client.wait(client.submit("paper-claims", smoke=True, out=out))
        second = client.wait(client.submit("paper-claims", smoke=True, out=out))
        assert first["executed"] > 0
        assert second["executed"] == 0
        assert second["skipped"] == second["total_cells"] == first["executed"]

    def test_sharded_submit(self, client, tmp_path):
        jobs = [
            client.submit(
                "paper-claims", smoke=True, shard=f"{index}/2",
                out=str(tmp_path / f"s{index}"),
            )
            for index in range(2)
        ]
        statuses = [client.wait(job) for job in jobs]
        assert all(status["state"] == "done" for status in statuses)
        total = sum(status["executed"] for status in statuses)
        assert total == len(get_suite("paper-claims").cells(smoke=True))

    def test_status_without_job_lists_all(self, client, tmp_path):
        job = client.submit("paper-claims", smoke=True, out=str(tmp_path / "x"))
        client.wait(job)
        overview = client.status()
        assert [entry["id"] for entry in overview["jobs"]] == [job]
        assert overview["pool"]["sweeps_served"] >= 1

    def test_submit_unknown_suite_fails_fast(self, client):
        with pytest.raises(ServiceError, match="unknown suite"):
            client.submit("no-such-suite")

    def test_submit_bad_shard_fails_fast(self, client):
        with pytest.raises(ServiceError, match="shard"):
            client.submit("paper-claims", shard="2/2")

    def test_submit_bad_engine_fails_fast(self, client):
        with pytest.raises(ServiceError, match="unknown engine"):
            client.submit("paper-claims", engine="warp")

    @pytest.mark.parametrize("field,value", [
        ("sizes", "24"),          # not a list at all
        ("sizes", {"n": 24}),
        ("sizes", [24, "big"]),   # an uncoercible element
        ("sizes", [True]),        # bools are not sizes
        ("sizes", [None]),
        ("seeds", 7),
        ("seeds", ["one"]),
        ("seeds", [1, False]),
    ])
    def test_submit_bad_sizes_and_seeds_fail_fast(self, client, field, value):
        """Malformed sweep overrides are rejected at submit time with an
        error naming the field — not accepted into the queue to fail
        minutes later inside the job runner."""
        with pytest.raises(ServiceError, match=field):
            client.request({
                "op": "submit", "suite": "paper-claims", field: value,
            })
        assert client.status()["jobs"] == []

    def test_submit_coerces_numeric_size_and_seed_strings(self, client, tmp_path):
        job = client.request({
            "op": "submit", "suite": "paper-claims", "smoke": True,
            "sizes": ["96", 128.0], "seeds": [1],
            "out": str(tmp_path / "coerced"),
        })["job"]
        status = client.wait(job, timeout=120)
        assert status["state"] == "done"
        assert status["sizes"] == [96, 128]
        assert status["seeds"] == [1]

    def test_describe_hands_out_a_snapshot_not_the_live_list(self):
        from repro.service.daemon import Job

        job = Job(id="job-1", suite="paper-claims")
        job.failures.append({"scenario": "s", "n": 1, "seed": 1, "error": "x"})
        snapshot = job.describe()
        snapshot["failures"].append({"scenario": "intruder"})
        assert len(job.failures) == 1
        assert len(job.describe()["failures"]) == 1

    def test_submit_with_engine_threads_through_to_records(self, client, tmp_path):
        out = tmp_path / "store"
        job = client.submit(
            "paper-claims", smoke=True, out=str(out), engine="interpreted"
        )
        status = client.wait(job, timeout=120)
        assert status["state"] == "done"
        assert status["engine"] == "interpreted"
        records = client.results(job)
        assert records
        # analytic prediction cells run no engine at all (engine None);
        # every measured cell must carry the forced backend
        measured = [r for r in records if r["engine"] is not None]
        assert measured
        assert all(record["engine"] == "interpreted" for record in measured)

    def test_unknown_job_and_unknown_op(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("job-999")
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "dance"})

    def test_failed_job_surfaces_error(self, client, tmp_path):
        # An unwritable store directory makes the job itself fail.
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        job = client.submit(
            "paper-claims", smoke=True, out=str(blocked / "sub")
        )
        status = client.wait(job)
        assert status["state"] == "failed"
        assert status["error"]


class TestBoundedMemory:
    def test_results_verb_reports_store_and_truncation_flag(self, client, tmp_path):
        out = tmp_path / "store"
        job = client.submit("paper-claims", smoke=True, out=str(out))
        client.wait(job)
        response = client.request({"op": "results", "job": job})
        assert response["truncated"] is False
        assert response["store"] == str(out / "results.jsonl")

    def test_finished_jobs_are_evicted_beyond_cap(self, daemon, client, tmp_path, monkeypatch):
        import repro.service.daemon as daemon_module

        monkeypatch.setattr(daemon_module, "MAX_FINISHED_JOBS", 1)
        out = str(tmp_path / "store")
        jobs = []
        for _ in range(3):
            job = client.submit("paper-claims", smoke=True, out=out)
            client.wait(job)
            jobs.append(job)
        # a fourth submit triggers eviction of all but the newest finished job
        jobs.append(client.submit("paper-claims", smoke=True, out=out))
        client.wait(jobs[-1])
        ids = {entry["id"] for entry in client.status()["jobs"]}
        assert jobs[-1] in ids
        assert jobs[0] not in ids

    def test_per_job_record_cap_sets_truncated(self, daemon, client, tmp_path, monkeypatch):
        import repro.service.daemon as daemon_module

        monkeypatch.setattr(daemon_module, "MAX_RESULT_RECORDS_IN_MEMORY", 5)
        job = client.submit("paper-claims", smoke=True, out=str(tmp_path / "s"))
        status = client.wait(job)
        response = client.request({"op": "results", "job": job})
        assert response["truncated"] is True
        assert len(response["records"]) == 5
        # the on-disk store still has everything
        assert status["executed"] == len(
            ResultStore(tmp_path / "s").records()
        )


class TestShutdown:
    def test_shutdown_verb_stops_daemon(self, tmp_path):
        daemon = SweepDaemon(socket_path=tmp_path / "s.sock", workers=1)
        daemon.start()
        client = ServiceClient(daemon.socket_path)
        client.shutdown()
        daemon.close()
        assert not daemon.socket_path.exists()
        with pytest.raises(ServiceError, match="cannot reach"):
            client.ping()

    def test_status_still_served_while_draining(self, daemon, client, tmp_path):
        """After shutdown is requested, queued jobs finish and clients can
        keep polling status/results for them; only new submits are refused."""
        job = client.submit("paper-claims", smoke=True, out=str(tmp_path / "s"))
        daemon.stop()
        status = client.wait(job, timeout=120)  # polls status during drain
        assert status["state"] == "done"
        with pytest.raises(ServiceError, match="shutting down"):
            client.submit("paper-claims", smoke=True, out=str(tmp_path / "s"))
        assert len(client.results(job)) == status["executed"]

    def test_unanswered_request_raises_service_error(self, tmp_path):
        """A daemon that accepts but never answers must surface a clean
        ServiceError, not a raw socket.timeout."""
        path = tmp_path / "mute.sock"
        mute = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        mute.bind(str(path))
        mute.listen(1)
        try:
            with pytest.raises(ServiceError, match="mid-flight"):
                ServiceClient(path, timeout=0.3).ping()
        finally:
            mute.close()

    def test_garbage_reply_raises_service_error(self, tmp_path):
        """A non-daemon socket answering non-JSON must surface ServiceError."""
        import threading

        path = tmp_path / "garbage.sock"
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(path))
        server.listen(1)

        def answer_garbage():
            connection, _ = server.accept()
            with connection:
                connection.recv(4096)
                connection.sendall(b"I am not JSON\n")

        thread = threading.Thread(target=answer_garbage, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServiceError, match="mid-flight"):
                ServiceClient(path, timeout=5).ping()
        finally:
            server.close()
            thread.join(timeout=5)

    def test_running_job_status_has_plan_denominator(self, client, tmp_path):
        """total_cells/skipped are published before the first cell runs."""
        job = client.submit("paper-claims", smoke=True, out=str(tmp_path / "s"))
        expected = len(get_suite("paper-claims").cells(smoke=True))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = client.status(job)
            if status["state"] in ("running", "done"):
                if status["state"] == "running":
                    assert status["total_cells"] in (0, expected)
                if status["total_cells"] == expected:
                    break
            time.sleep(0.01)
        assert client.wait(job)["total_cells"] == expected

    def test_two_daemons_cannot_share_a_socket(self, daemon, tmp_path):
        rival = SweepDaemon(socket_path=daemon.socket_path)
        with pytest.raises(RuntimeError, match="another daemon"):
            rival.start()
        # A failed rival's cleanup must not sever the live daemon: it
        # never bound the socket, so it must not unlink it either.
        rival.close()
        assert daemon.socket_path.exists()
        assert ServiceClient(daemon.socket_path).ping()["ok"] is True

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        path = tmp_path / "stale.sock"
        # a dead daemon's leftover socket file: bound once, never served
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(path))
        leftover.close()
        daemon = SweepDaemon(socket_path=path, workers=1)
        daemon.start()
        try:
            assert ServiceClient(path).ping()["ok"] is True
        finally:
            daemon.close()


class TestSocketPathLimit:
    """AF_UNIX sun_path is a ~104-byte buffer; the daemon must refuse an
    over-long path with a clear error instead of an opaque bind OSError."""

    def test_long_socket_path_raises_service_error_naming_path(self, tmp_path):
        deep = tmp_path / ("d" * 40) / ("e" * 40) / ("f" * 40) / "svc.sock"
        daemon = SweepDaemon(socket_path=deep, workers=1)
        with pytest.raises(ServiceError) as excinfo:
            daemon.start()
        message = str(excinfo.value)
        assert "AF_UNIX" in message
        assert str(deep) in message
        assert "--socket" in message
        # The refusal happened before any resource was acquired: the pool
        # never forked, the directory was never created, and close() after
        # the failed start is a clean no-op.
        assert not daemon.pool.started
        assert not deep.parent.exists()
        daemon.close()

    def test_limit_is_not_hit_by_short_paths(self, tmp_path):
        from repro.service.daemon import MAX_SOCKET_PATH_BYTES

        path = tmp_path / "ok.sock"
        if len(str(path).encode()) > MAX_SOCKET_PATH_BYTES:
            pytest.skip("test tmpdir itself exceeds the AF_UNIX limit")
        daemon = SweepDaemon(socket_path=path, workers=1)
        daemon.start()
        try:
            assert ServiceClient(path).ping()["ok"] is True
        finally:
            daemon.close()


class TestProtocol:
    def test_malformed_line_answered_with_error(self, daemon):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5)
        sock.connect(str(daemon.socket_path))
        try:
            sock.sendall(b"this is not json\n")
            with sock.makefile("rb") as reader:
                response = recv_message(reader)
        finally:
            sock.close()
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_recv_rejects_non_object(self):
        import io

        with pytest.raises(ProtocolError, match="objects"):
            recv_message(io.BytesIO(b"[1, 2]\n"))

    def test_recv_rejects_oversized_line(self):
        import io

        blob = b"x" * (MAX_LINE_BYTES + 10)
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(io.BytesIO(blob + b"\n"))

    def test_one_connection_many_requests(self, daemon):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5)
        sock.connect(str(daemon.socket_path))
        try:
            with sock.makefile("rb") as reader:
                for _ in range(3):
                    sock.sendall(json.dumps({"op": "ping"}).encode() + b"\n")
                    assert recv_message(reader)["ok"] is True
        finally:
            sock.close()


class TestObservability:
    def test_whole_daemon_status_reports_rates(self, client, tmp_path):
        job = client.submit("paper-claims", smoke=True, out=str(tmp_path / "x"))
        client.wait(job, timeout=120)
        overview = client.status()
        assert overview["uptime_s"] > 0
        assert overview["queue_depth"] == 0
        assert overview["cells_per_s"] > 0

    def test_metrics_verb_covers_daemon_pool_and_server(self, client, tmp_path):
        from repro.obs import parse_exposition
        from repro.obs.metrics import samples_named, sum_samples

        job = client.submit("paper-claims", smoke=True, out=str(tmp_path / "x"))
        client.wait(job, timeout=120)
        samples = parse_exposition(client.metrics())

        executed = len(get_suite("paper-claims").cells(smoke=True))
        assert sum_samples(samples, "daemon_cells_completed_total") == executed
        # phase breakdowns cross the worker-process boundary on CellResult
        phases = {
            sample.label("phase")
            for sample in samples_named(samples, "daemon_cell_phase_seconds_count")
        }
        assert {"generate", "run", "verify"} <= phases
        # done-job gauge and the pool/server layers are all in one scrape
        done = [
            sample.value
            for sample in samples_named(samples, "daemon_jobs")
            if sample.label("state") == "done"
        ]
        assert done == [1]
        assert sum_samples(samples, "pool_cells_executed_total") == executed
        submits = [
            sample
            for sample in samples_named(samples, "service_requests_total")
            if sample.label("verb") == "submit"
        ]
        assert submits and sum_samples(submits, "service_requests_total") == 1
        assert sum_samples(samples, "service_request_seconds_count") > 0

    def test_ping_does_not_inflate_latency_histograms(self, client):
        """ping stays cheap: it is counted, and nothing about the metrics
        path mutates job state."""
        from repro.obs import parse_exposition
        from repro.obs.metrics import samples_named

        client.ping()
        client.ping()
        samples = parse_exposition(client.metrics())
        pings = [
            sample.value
            for sample in samples_named(samples, "service_requests_total")
            if sample.label("verb") == "ping" and sample.label("outcome") == "ok"
        ]
        assert pings == [2]

    def test_metrics_history_verb_serves_retained_scrapes(self, daemon, client):
        from repro.obs.timeseries import points_from_payload

        daemon.history.snapshot()
        payload = client.metrics_history()
        assert payload["interval_s"] == daemon.history.interval_s
        points = points_from_payload(payload)
        assert len(points) >= 2  # the snapshot above plus the read-time one
        names = {sample.name for sample in points[-1].samples}
        assert "daemon_uptime_seconds" in names
        # The client surfaces invalid parameters as ServiceError.
        with pytest.raises(ServiceError, match="window_s"):
            client.metrics_history(window_s=-5)

    def test_history_spill_written_by_daemon(self, tmp_path):
        from repro.obs.timeseries import load_history_jsonl

        spill = tmp_path / "daemon-hist.jsonl"
        daemon = SweepDaemon(
            socket_path=tmp_path / "spill.sock", workers=1,
            scrape_interval_s=0.05, history_spill=spill,
        )
        daemon.start()
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if spill.exists() and len(spill.read_text().splitlines()) >= 2:
                    break
                time.sleep(0.02)
        finally:
            daemon.close()
        points = load_history_jsonl(spill)
        assert len(points) >= 2
        assert [p.unix_s for p in points] == sorted(p.unix_s for p in points)
