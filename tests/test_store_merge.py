"""Merge edge cases: conflicting payloads, truncated tails, empty and
missing inputs, incremental merges into an existing store — plus the
shared duplicate policy (`resolve_duplicate`) that the streaming
collector applies record-by-record."""

import json

import pytest

from repro.experiments import (
    CellResult,
    ResultStore,
    merge_result_files,
)
from repro.experiments.store import resolve_duplicate, semantic_payload


def make_result(
    seed: int,
    rounds: float = 7.0,
    verified: bool = True,
    wall_clock_s: float = 0.5,
    suite: str = "s",
) -> CellResult:
    return CellResult(
        fingerprint=f"{seed:016x}",
        suite=suite,
        scenario="scenario",
        generator="random-tree",
        algorithm="baseline-mis",
        n=10,
        seed=seed,
        rounds=rounds,
        messages=100,
        wall_clock_s=wall_clock_s,
        verified=verified,
    )


def write_store(path_dir, results) -> ResultStore:
    store = ResultStore(path_dir)
    for result in results:
        store.append(result)
    return store


class TestBasicUnion:
    def test_disjoint_inputs_union(self, tmp_path):
        a = write_store(tmp_path / "a", [make_result(1), make_result(2)])
        b = write_store(tmp_path / "b", [make_result(3)])
        out = tmp_path / "m.jsonl"
        report = merge_result_files([a.path, b.path], out)
        assert report.ok
        assert report.records_read == 3
        assert report.merged == 3
        assert report.duplicates == 0
        assert len(ResultStore.from_path(out).records()) == 3

    def test_identical_duplicates_are_not_conflicts(self, tmp_path):
        a = write_store(tmp_path / "a", [make_result(1)])
        b = write_store(tmp_path / "b", [make_result(1)])
        report = merge_result_files([a.path, b.path], tmp_path / "m.jsonl")
        assert report.ok
        assert report.duplicates == 1
        assert report.merged == 1

    def test_wall_clock_and_labels_do_not_conflict(self, tmp_path):
        """Timing and cosmetic grouping fields differ legitimately between
        shard runs of the same cell."""
        a = write_store(
            tmp_path / "a", [make_result(1, wall_clock_s=0.1, suite="x")]
        )
        b = write_store(
            tmp_path / "b", [make_result(1, wall_clock_s=9.9, suite="y")]
        )
        report = merge_result_files([a.path, b.path], tmp_path / "m.jsonl")
        assert report.ok
        assert report.duplicates == 1


class TestConflicts:
    def test_differing_payload_reported_last_wins(self, tmp_path):
        a = write_store(tmp_path / "a", [make_result(1, rounds=7.0)])
        b = write_store(tmp_path / "b", [make_result(1, rounds=13.0)])
        out = tmp_path / "m.jsonl"
        report = merge_result_files([a.path, b.path], out)
        assert not report.ok
        assert len(report.conflicts) == 1
        conflict = report.conflicts[0]
        assert conflict.fingerprint == make_result(1).fingerprint
        assert "rounds" in conflict.describe()
        # last-write-wins: the later input's record is what lands on disk
        [record] = ResultStore.from_path(out).records()
        assert record["rounds"] == 13.0

    def test_verified_record_outranks_unverified_regardless_of_order(self, tmp_path):
        """An unverified record is 'not completed' (resume re-runs it), so
        it neither displaces a verified result nor counts as a conflict."""
        a = write_store(tmp_path / "a", [make_result(1, verified=True, rounds=7.0)])
        b = write_store(tmp_path / "b", [make_result(1, verified=False, rounds=9.0)])
        for inputs in ([a.path, b.path], [b.path, a.path]):
            out = tmp_path / "m.jsonl"
            out.unlink(missing_ok=True)
            report = merge_result_files(inputs, out)
            assert report.ok and report.duplicates == 1
            [record] = ResultStore.from_path(out).records()
            assert record["verified"] is True and record["rounds"] == 7.0

    def test_resume_history_in_one_file_is_not_a_conflict(self, tmp_path):
        """The documented normal store history — a failed-verification
        record followed by its verified re-run — merges cleanly."""
        a = write_store(
            tmp_path / "a",
            [make_result(1, verified=False, rounds=9.0),
             make_result(1, verified=True, rounds=7.0)],
        )
        report = merge_result_files([a.path], tmp_path / "m.jsonl")
        assert report.ok
        [record] = ResultStore.from_path(tmp_path / "m.jsonl").records()
        assert record["verified"] is True and record["rounds"] == 7.0

    def test_two_unverified_differing_records_conflict(self, tmp_path):
        a = write_store(tmp_path / "a", [make_result(1, verified=False, rounds=7.0)])
        b = write_store(tmp_path / "b", [make_result(1, verified=False, rounds=9.0)])
        report = merge_result_files([a.path, b.path], tmp_path / "m.jsonl")
        assert len(report.conflicts) == 1


class TestSharedDuplicatePolicy:
    """resolve_duplicate is the one policy both fan-in paths (file merge
    and the TCP collector) apply; pin it directly, in every rank pairing."""

    def test_verified_never_displaced_by_unverified(self):
        verified = make_result(1, verified=True).to_record()
        unverified = make_result(1, verified=False, rounds=99.0).to_record()
        resolution = resolve_duplicate(verified, unverified)
        assert not resolution.keep_newcomer and not resolution.conflict

    def test_verified_supersedes_unverified_without_conflict(self):
        unverified = make_result(1, verified=False, rounds=99.0).to_record()
        verified = make_result(1, verified=True).to_record()
        resolution = resolve_duplicate(unverified, verified)
        assert resolution.keep_newcomer and not resolution.conflict

    @pytest.mark.parametrize("verified", [True, False])
    def test_equal_rank_identical_payloads_newcomer_wins_quietly(self, verified):
        first = make_result(1, verified=verified, wall_clock_s=0.1).to_record()
        second = make_result(1, verified=verified, wall_clock_s=9.9).to_record()
        resolution = resolve_duplicate(first, second)
        assert resolution.keep_newcomer and not resolution.conflict

    @pytest.mark.parametrize("verified", [True, False])
    def test_equal_rank_differing_payloads_conflict(self, verified):
        first = make_result(1, verified=verified, rounds=7.0).to_record()
        second = make_result(1, verified=verified, rounds=13.0).to_record()
        resolution = resolve_duplicate(first, second)
        assert resolution.keep_newcomer and resolution.conflict

    def test_semantic_payload_ignores_nonsemantic_fields(self):
        record = make_result(1, wall_clock_s=1.0, suite="x").to_record()
        twin = make_result(1, wall_clock_s=2.0, suite="y").to_record()
        assert semantic_payload(record) == semantic_payload(twin)

    def test_merge_three_way_race_verified_wins_in_every_order(self, tmp_path):
        """Simulate the same fingerprint arriving from three shard stores
        in every permutation: one verified record among unverified ones
        must survive whatever the arrival order — the file-based analogue
        of two streams racing a collector."""
        import itertools

        verified = make_result(1, verified=True, rounds=7.0)
        stale_a = make_result(1, verified=False, rounds=9.0, wall_clock_s=0.1)
        stale_b = make_result(1, verified=False, rounds=9.0, wall_clock_s=0.9)
        paths = {}
        for name, result in (("v", verified), ("a", stale_a), ("b", stale_b)):
            paths[name] = write_store(tmp_path / name, [result]).path
        for permutation in itertools.permutations("vab"):
            out = tmp_path / ("m-" + "".join(permutation) + ".jsonl")
            report = merge_result_files([paths[name] for name in permutation], out)
            assert report.ok, [c.describe() for c in report.conflicts]
            [record] = ResultStore.from_path(out).records()
            assert record["verified"] is True and record["rounds"] == 7.0


class TestDamagedInputs:
    def test_truncated_tail_is_repaired_during_merge(self, tmp_path):
        """A shard that crashed mid-append merges cleanly: the partial
        final record is dropped, the complete ones survive."""
        a = write_store(tmp_path / "a", [make_result(1), make_result(2)])
        lines = a.path.read_text().splitlines()
        a.path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        report = merge_result_files([a.path], tmp_path / "m.jsonl")
        assert report.ok
        assert report.records_read == 1
        assert report.merged == 1

    def test_corrupt_middle_line_still_raises(self, tmp_path):
        a = write_store(tmp_path / "a", [make_result(1), make_result(2)])
        lines = a.path.read_text().splitlines()
        a.path.write_text(lines[0][:10] + "\n" + lines[1] + "\n")
        with pytest.raises(ValueError, match="corrupt record"):
            merge_result_files([a.path], tmp_path / "m.jsonl")

    def test_record_without_fingerprint_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"rounds": 3}) + "\n")
        with pytest.raises(ValueError, match="fingerprint"):
            merge_result_files([bad], tmp_path / "m.jsonl")


class TestEmptyAndMissing:
    def test_empty_input_contributes_nothing(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        a = write_store(tmp_path / "a", [make_result(1)])
        report = merge_result_files([empty, a.path], tmp_path / "m.jsonl")
        assert report.ok
        assert report.merged == 1
        assert not report.missing

    def test_missing_input_tolerated_and_reported(self, tmp_path):
        a = write_store(tmp_path / "a", [make_result(1)])
        ghost = tmp_path / "nope.jsonl"
        report = merge_result_files([a.path, ghost], tmp_path / "m.jsonl")
        assert report.ok
        assert report.missing == [ghost]
        assert report.merged == 1

    def test_all_inputs_missing_writes_nothing(self, tmp_path):
        """No inputs read because all were absent: the output must not be
        planted as a valid-looking empty store."""
        out = tmp_path / "m.jsonl"
        report = merge_result_files([tmp_path / "no.jsonl"], out)
        assert report.merged == 0
        assert report.missing
        assert not out.exists()

    def test_zero_records_total_writes_nothing(self, tmp_path):
        """Inputs that exist but contribute no records (empty file, or a
        store holding only a truncated crash fragment) must not plant a
        valid-looking empty output either."""
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        fragment = tmp_path / "fragment.jsonl"
        fragment.write_text('{"fingerprint": "ab', newline="")  # crash mid-append
        out = tmp_path / "m.jsonl"
        report = merge_result_files([empty, fragment], out)
        assert report.merged == 0 and report.records_read == 0
        assert not out.exists()


class TestIncrementalMerge:
    def test_existing_output_is_first_input(self, tmp_path):
        out = tmp_path / "m.jsonl"
        a = write_store(tmp_path / "a", [make_result(1)])
        merge_result_files([a.path], out)
        b = write_store(tmp_path / "b", [make_result(2)])
        report = merge_result_files([b.path], out)
        assert report.records_read == 2  # previous merge output + new input
        assert report.merged == 2

    def test_existing_output_ignored_when_disabled(self, tmp_path):
        out = tmp_path / "m.jsonl"
        a = write_store(tmp_path / "a", [make_result(1)])
        merge_result_files([a.path], out)
        b = write_store(tmp_path / "b", [make_result(2)])
        report = merge_result_files(
            [b.path], out, include_existing_output=False
        )
        assert report.merged == 1
        [record] = ResultStore.from_path(out).records()
        assert record["seed"] == 2

    def test_merge_is_idempotent(self, tmp_path):
        out = tmp_path / "m.jsonl"
        a = write_store(tmp_path / "a", [make_result(1), make_result(2)])
        merge_result_files([a.path], out)
        first = out.read_text()
        report = merge_result_files([a.path], out)
        assert report.ok
        assert out.read_text() == first

    def test_no_scratch_file_left_behind(self, tmp_path):
        out = tmp_path / "m.jsonl"
        a = write_store(tmp_path / "a", [make_result(1)])
        merge_result_files([a.path], out)
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


class TestSchemaCompat:
    """Stores written before the charged-cost layer merge cleanly with
    stores written after it."""

    def test_missing_charged_rounds_key_equals_explicit_null(self, tmp_path):
        new = make_result(1)
        record = new.to_record()
        assert record["charged_rounds"] is None
        old_record = {k: v for k, v in record.items() if k != "charged_rounds"}
        (tmp_path / "old.jsonl").write_text(json.dumps(old_record) + "\n")
        write_store(tmp_path / "new", [new])
        out = tmp_path / "m.jsonl"
        report = merge_result_files(
            [tmp_path / "old.jsonl", tmp_path / "new" / "results.jsonl"], out
        )
        assert report.ok, [c.describe() for c in report.conflicts]
        assert report.duplicates == 1 and report.merged == 1

    def test_differing_charges_still_conflict(self, tmp_path):
        plain = make_result(1)
        charged = make_result(1)
        charged.charged_rounds = 42.0
        write_store(tmp_path / "a", [plain])
        write_store(tmp_path / "b", [charged])
        report = merge_result_files(
            [tmp_path / "a" / "results.jsonl", tmp_path / "b" / "results.jsonl"],
            tmp_path / "m.jsonl",
        )
        assert not report.ok
        assert "charged_rounds" in report.conflicts[0].describe()
