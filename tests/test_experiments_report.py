"""Report and CLI tests: tables, shape fits and the end-to-end commands."""

import json

import pytest

from repro.analysis import MeasurementTable
from repro.experiments import ResultStore, SweepRunner, build_report, get_suite
from repro.experiments.cli import main
from repro.experiments.spec import ANALYTIC_GENERATOR


@pytest.fixture(scope="module")
def smoke_store(tmp_path_factory):
    """One smoke-size paper-claims sweep shared by the read-only tests."""
    directory = tmp_path_factory.mktemp("paper-claims-smoke")
    store = ResultStore(directory)
    report = SweepRunner(get_suite("paper-claims"), store, jobs=2, smoke=True).run()
    assert report.ok
    return store


@pytest.fixture(scope="module")
def charged_store(tmp_path_factory):
    """One smoke-size charged sweep shared by the measured-vs-charged tests."""
    directory = tmp_path_factory.mktemp("charged-smoke")
    store = ResultStore(directory)
    report = SweepRunner(get_suite("charged"), store, jobs=2, smoke=True).run()
    assert report.ok
    return store


@pytest.fixture(scope="module")
def analytic_only_store(tmp_path_factory):
    """A store holding only analytic cells — no measured scenario at all."""
    directory = tmp_path_factory.mktemp("analytic-only")
    store = ResultStore(directory)
    suite = get_suite("paper-claims")
    analytic = [c for c in suite.cells() if c.generator == ANALYTIC_GENERATOR]
    assert analytic
    from repro.experiments import run_cell

    for cell in analytic:
        store.append(run_cell("analytic-only", cell))
    return store


class TestReportBundle:
    def test_scaling_table_covers_measured_sizes(self, smoke_store):
        bundle = build_report(smoke_store.records())
        sizes_in_table = {row[0] for row in bundle.scaling.rows}
        measured_sizes = {
            record["n"]
            for record in smoke_store.records()
            if record["generator"] != ANALYTIC_GENERATOR
        }
        assert sizes_in_table == measured_sizes
        # Analytic scenarios are fits, not scaling-table columns.
        assert all("predicted" not in column for column in bundle.scaling.columns)

    def test_theorem3_beta_below_one(self, smoke_store):
        bundle = build_report(smoke_store.records())
        assert bundle.theorem3_beta is not None
        assert 0 < bundle.theorem3_beta < 1
        assert bundle.betas["barrier-shape/predicted"] < 1
        assert bundle.all_verified

    def test_render_mentions_theorem3_verdict(self, smoke_store):
        text = build_report(smoke_store.records()).render()
        assert "Theorem 3 shape" in text
        assert "< 1" in text
        assert "all stored cells verified: yes" in text

    def test_empty_records_raise(self):
        with pytest.raises(ValueError, match="no stored results"):
            build_report([])

    def test_rerun_record_supersedes_stale_unverified_one(self):
        """A cell that failed verification and was re-run on resume has two
        records with the same fingerprint; only the later one may count."""

        def record(verified, rounds, n=100):
            return {
                "fingerprint": "f" * 16, "suite": "s", "scenario": "sc",
                "generator": "random-tree", "algorithm": "baseline-mis",
                "n": n, "seed": 1, "rounds": rounds, "messages": 10,
                "wall_clock_s": 0.1, "verified": verified, "k": None, "extras": {},
            }

        other = dict(record(True, 20.0, n=200), fingerprint="a" * 16, seed=2)
        bundle = build_report([record(False, 11.0), record(True, 12.0), other])
        assert bundle.all_verified
        point = next(
            p for s in bundle.summaries for p in s.points if p.n == 100
        )
        assert point.cells == 1 and point.rounds == 12.0

    def test_scaling_table_has_measured_and_charged_columns(self, charged_store):
        bundle = build_report(charged_store.records())
        columns = bundle.scaling.columns
        assert "mis/charged-tree" in columns
        assert "mis/charged-tree [charged]" in columns
        # Every charged scenario contributes exactly one charged twin column.
        charged_columns = [c for c in columns if c.endswith(" [charged]")]
        assert charged_columns == [
            c + " [charged]" for c in columns if c + " [charged]" in columns
        ]
        # Charged cells land in both columns of their row.
        measured_index = columns.index("mis/charged-tree")
        charged_index = columns.index("mis/charged-tree [charged]")
        populated = [
            row for row in bundle.scaling.rows if row[measured_index] != "-"
        ]
        assert populated
        for row in populated:
            assert row[charged_index] != "-"
            assert row[charged_index] > 0

    def test_fits_run_on_either_series(self, charged_store):
        bundle = build_report(charged_store.records())
        assert "mis/charged-tree" in bundle.betas
        assert "mis/charged-tree [charged]" in bundle.betas
        fit_labels = [row[0] for row in bundle.fits.rows]
        assert "mis/charged-tree" in fit_labels
        assert "mis/charged-tree [charged]" in fit_labels

    def test_uncharged_store_has_no_charged_columns(self, smoke_store):
        bundle = build_report(smoke_store.records())
        assert not any(
            column.endswith(" [charged]") for column in bundle.scaling.columns
        )

    def test_pre_charging_records_aggregate_cleanly(self):
        """Records written before the charged_rounds field existed have no
        such key at all; they must aggregate as uncharged cells."""

        def record(n, seed):
            return {
                "fingerprint": f"{n:08x}{seed:08x}", "suite": "s", "scenario": "old",
                "generator": "random-tree", "algorithm": "baseline-mis",
                "n": n, "seed": seed, "rounds": 7.0, "messages": 10,
                "wall_clock_s": 0.1, "verified": True, "k": None, "extras": {},
            }

        bundle = build_report([record(100, 1), record(200, 1)])
        summary = bundle.summaries[0]
        assert not summary.has_charged
        assert all(point.charged_rounds is None for point in summary.points)
        assert "old [charged]" not in bundle.betas

    def test_unfittable_scenario_skipped_not_fatal(self):
        records = [
            {
                "fingerprint": f"{seed:016x}", "suite": "s", "scenario": "tiny-n",
                "generator": "random-tree", "algorithm": "baseline-mis",
                "n": n, "seed": seed, "rounds": 5.0, "messages": 1,
                "wall_clock_s": 0.1, "verified": True, "k": None, "extras": {},
            }
            for seed, n in enumerate([1, 2])  # both filtered out by n > 2
        ]
        bundle = build_report(records)
        assert "tiny-n" not in bundle.betas
        assert bundle.theorem3_beta is None


class TestAnalyticOnlyAndEmptyStores:
    """report/merge on stores with no measured cells must not crash and
    must keep their CSV/JSON exports well-formed."""

    def test_build_report_on_analytic_only_store(self, analytic_only_store):
        bundle = build_report(analytic_only_store.records())
        assert not bundle.has_measured
        assert bundle.scaling.rows == []
        assert bundle.scaling.columns == ["n"]
        assert bundle.theorem3_beta is not None  # the fits still run
        rendered = bundle.render()
        assert "nothing to report" in rendered
        assert "analytic cells only" in rendered

    def test_cli_report_analytic_only_exports_well_formed(
        self, analytic_only_store, tmp_path, capsys
    ):
        json_path = tmp_path / "analytic.json"
        csv_path = tmp_path / "analytic.csv"
        assert main([
            "report", "--out", str(analytic_only_store.directory),
            "--json", str(json_path), "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "nothing to report" in out
        tables = json.loads(json_path.read_text())
        assert tables and all({"title", "columns", "rows"} <= set(t) for t in tables)
        # The scaling CSV degrades to a header-only file, still parseable.
        lines = csv_path.read_text().splitlines()
        assert lines == ["n"]
        parsed = MeasurementTable.from_csv(csv_path.read_text(), title="scaling")
        assert parsed.columns == ["n"] and parsed.rows == []

    def test_cli_report_empty_store_says_so_and_exits_2(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path / "never-written")]) == 2
        assert "no stored results" in capsys.readouterr().err

    def test_merge_of_analytic_only_stores_reports_cleanly(
        self, analytic_only_store, tmp_path, capsys
    ):
        merged = tmp_path / "merged" / "results.jsonl"
        assert main([
            "merge", "--out", str(merged), str(analytic_only_store.path),
        ]) == 0
        assert "0 conflicts" in capsys.readouterr().out
        assert main(["report", "--out", str(merged.parent)]) == 0
        assert "nothing to report" in capsys.readouterr().out

    def test_merge_of_empty_stores_writes_nothing_and_exits_2(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        out = tmp_path / "m" / "results.jsonl"
        assert main(["merge", "--out", str(out), str(empty)]) == 2
        assert "nothing written" in capsys.readouterr().err
        assert not out.exists()


class TestCli:
    def test_run_report_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main([
            "run", "paper-claims", "--smoke", "--jobs", "1", "--quiet", "--out", out
        ]) == 0
        first = capsys.readouterr().out
        assert "0 already stored" in first

        assert main([
            "run", "paper-claims", "--smoke", "--jobs", "1", "--quiet", "--out", out
        ]) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second

        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "report.csv"
        assert main([
            "report", "--out", out, "--json", str(json_path), "--csv", str(csv_path)
        ]) == 0
        rendered = capsys.readouterr().out
        assert "Theorem 3 shape" in rendered

        tables = json.loads(json_path.read_text())
        assert tables and all({"title", "columns", "rows"} <= set(t) for t in tables)
        parsed = MeasurementTable.from_csv(csv_path.read_text(), title="scaling")
        assert parsed.columns[0] == "n"
        assert parsed.rows

    def test_list_names_every_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-claims", "scaling", "stress"):
            assert name in out

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["run", "no-such-suite"]) == 2
        assert "no-such-suite" in capsys.readouterr().err

    def test_report_without_results_exits_2(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path / "empty")]) == 2
        assert "no stored results" in capsys.readouterr().err

    def test_report_unknown_suite_exits_2_with_names(self, smoke_store, capsys):
        assert main([
            "report", "--out", str(smoke_store.directory), "--suite", "paper-clams"
        ]) == 2
        err = capsys.readouterr().err
        assert "paper-clams" in err and "paper-claims" in err

    def test_report_suite_filter_matches_deduped_cells(self, tmp_path, capsys):
        """Cells shared across suites carry the first runner's suite label;
        --suite must still include them via the suite's fingerprints."""
        out = tmp_path / "results"
        store = ResultStore(out)
        report = SweepRunner(get_suite("paper-claims"), store, jobs=1, smoke=True).run()
        assert report.ok
        # Relabel every record as run by another suite: the dedup scenario
        # where 'paper-claims' skipped cells another sweep completed first.
        records = store.records()
        for record in records:
            record["suite"] = "some-other-suite"
        store.path.write_text(
            "\n".join(json.dumps(record, sort_keys=True) for record in records) + "\n"
        )
        # No record is labelled paper-claims, so exit 0 (instead of 2,
        # "no stored results") proves the filter matched by fingerprint.
        assert main(["report", "--out", str(out), "--suite", "paper-claims"]) == 0
        assert "Theorem 3 shape" in capsys.readouterr().out
