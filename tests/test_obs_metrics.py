"""Unit suite for the observability layer: registry primitives, the
Prometheus text exposition (pinned against a golden file), the matching
parser, quantile estimation, ambient spans and the SLO definitions."""

import math
import threading
from pathlib import Path

import pytest

from repro.obs import (
    MetricsRegistry,
    PhaseTimer,
    evaluate_slos,
    histogram_quantile,
    parse_exposition,
    record_phase,
    span,
)
from repro.obs.metrics import Sample, samples_named, sum_samples
from repro.obs.slo import DEFAULT_SLOS

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def build_demo_registry() -> MetricsRegistry:
    """The deterministic registry the golden exposition pins."""
    registry = MetricsRegistry()
    depth = registry.gauge("demo_depth", "Current queue depth.")
    depth.set(3)
    latency = registry.histogram(
        "demo_latency_seconds",
        "Latency with backslash \\ and\nnewline in help.",
        ("verb",),
        buckets=(0.01, 0.1, 1.0),
    )
    for value in (0.005, 0.05, 2.0):
        latency.labels(verb="ping").observe(value)
    latency.labels(verb="push").observe(0.05)
    requests = registry.counter(
        "demo_requests_total",
        "Requests handled, by verb and outcome.",
        ("verb", "outcome"),
    )
    requests.labels(verb="ping", outcome="ok").inc()
    requests.labels(verb="ping", outcome="ok").inc()
    requests.labels(verb='pu"sh\\odd\nname', outcome="error").inc()
    return registry


class TestExposition:
    def test_golden_exposition(self):
        """HELP/TYPE lines, label escaping, bucket cumulativity — exact."""
        assert build_demo_registry().render() == GOLDEN.read_text(encoding="utf-8")

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "x", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        samples = parse_exposition(registry.render())
        by_le = {
            sample.label("le"): sample.value
            for sample in samples_named(samples, "h_bucket")
        }
        assert by_le == {"1": 1, "2": 2, "+Inf": 3}
        assert sum_samples(samples, "h_count") == 3
        assert sum_samples(samples, "h_sum") == pytest.approx(101.0)

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_function_gauge_reads_live(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge("g", "x").set_function(lambda: box["value"])
        assert "g 1\n" in registry.render()
        box["value"] = 9
        assert "g 9\n" in registry.render()

    def test_counter_refuses_decrement(self):
        counter = MetricsRegistry().counter("c_total", "x")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name", "x")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", "x", ("bad-label",))

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "x", ("a",))
        assert registry.counter("c_total", "x", ("a",)) is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c_total", "x", ("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("c_total", "x", ("other",))

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", "x", ("a",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(b="1")
        with pytest.raises(ValueError, match="labelled"):
            counter.inc()

    def test_histogram_timer_observes(self):
        histogram = MetricsRegistry().histogram("h", "x", buckets=(10.0,))
        with histogram.time():
            pass
        assert histogram.count == 1

    def test_concurrent_increments_do_not_lose_counts(self):
        counter = MetricsRegistry().counter("c_total", "x")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestParser:
    def test_round_trips_the_golden_registry(self):
        samples = parse_exposition(build_demo_registry().render())
        assert sum_samples(samples, "demo_requests_total") == 3
        odd = [
            sample
            for sample in samples_named(samples, "demo_requests_total")
            if sample.label("outcome") == "error"
        ]
        assert odd[0].label("verb") == 'pu"sh\\odd\nname'

    def test_inf_values(self):
        samples = parse_exposition("x 3\ny +Inf\n")
        assert samples[1].value == math.inf

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_exposition("this is not a metric line\n")

    def test_comments_and_blanks_skipped(self):
        assert parse_exposition("# HELP x y\n\n# TYPE x counter\n") == []


class TestQuantile:
    def test_linear_interpolation(self):
        buckets = [(1.0, 10), (2.0, 20), (math.inf, 20)]
        assert histogram_quantile(0.5, buckets) == pytest.approx(1.0)
        assert histogram_quantile(0.75, buckets) == pytest.approx(1.5)

    def test_empty_histogram_is_none(self):
        assert histogram_quantile(0.99, []) is None
        assert histogram_quantile(0.99, [(1.0, 0), (math.inf, 0)]) is None

    def test_quantile_in_inf_bucket_clamps_to_last_finite_bound(self):
        # Half the mass is finite, so the estimator can clamp to the
        # largest finite bound when the quantile lands in +Inf.
        buckets = [(1.0, 5), (math.inf, 10)]
        assert histogram_quantile(0.99, buckets) == 1.0

    def test_all_mass_in_inf_bucket_is_none(self):
        # No finite bound ever saw an observation: there is no honest
        # numeric answer, so the documented sentinel is None.
        assert histogram_quantile(0.99, [(1.0, 0), (math.inf, 5)]) is None
        assert histogram_quantile(0.5, [(math.inf, 3)]) is None

    def test_non_monotone_cumulative_counts_are_none(self):
        # Cumulative counts must not decrease; a corrupt or misjoined
        # scrape that does is refused rather than interpolated.
        buckets = [(1.0, 10), (2.0, 4), (math.inf, 12)]
        assert histogram_quantile(0.5, buckets) is None

    def test_negative_counts_are_none(self):
        assert histogram_quantile(0.5, [(1.0, -3), (math.inf, 5)]) is None

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile(1.5, [(1.0, 1)])


class TestSpans:
    def test_spans_accumulate_on_the_ambient_timer(self):
        with PhaseTimer() as timer:
            with span("verify"):
                pass
            with span("verify"):
                pass
            record_phase("simulate", 0.25)
        timings = timer.timings()
        assert set(timings) == {"verify", "simulate"}
        assert timings["simulate"] == pytest.approx(0.25)

    def test_no_ambient_timer_is_a_noop(self):
        record_phase("orphan", 1.0)  # must not raise
        with span("orphan"):
            pass

    def test_nested_timers_innermost_wins(self):
        with PhaseTimer() as outer:
            with PhaseTimer() as inner:
                record_phase("p", 1.0)
        assert inner.timings() == {"p": 1.0}
        assert outer.timings() == {}

    def test_thread_local_isolation(self):
        seen = {}

        def worker():
            with PhaseTimer() as timer:
                record_phase("theirs", 1.0)
                seen.update(timer.timings())

        with PhaseTimer() as timer:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == {"theirs": 1.0}
        assert timer.timings() == {}


def sample(name, value, **labels):
    return Sample(name=name, labels=tuple(labels.items()), value=value)


class TestSLOs:
    def test_all_pass_on_empty_scrape(self):
        results = evaluate_slos([])
        assert all(result.ok for result in results)
        assert all("no data" in result.detail for result in results)
        assert len(results) == len(DEFAULT_SLOS)

    def test_dropped_records_burn(self):
        results = {
            result.name: result
            for result in evaluate_slos([
                sample("collector_records_total", 2, fate="dropped"),
            ])
        }
        assert not results["zero-dropped-records"].ok

    def test_conflict_rate_burns_over_budget(self):
        scrape = [
            sample("collector_records_ingested_total", 10),
            sample("collector_records_total", 2, fate="conflict"),
        ]
        results = {r.name: r for r in evaluate_slos(scrape)}
        assert not results["duplicate-conflict-rate"].ok
        scrape[1] = sample("collector_records_total", 0, fate="conflict")
        results = {r.name: r for r in evaluate_slos(scrape)}
        assert results["duplicate-conflict-rate"].ok

    def test_latency_p99_burns_when_slow(self):
        slow = [
            sample("service_request_seconds_bucket", 0, le="1"),
            sample("service_request_seconds_bucket", 100, le="30"),
            sample("service_request_seconds_bucket", 100, le="+Inf"),
        ]
        results = {r.name: r for r in evaluate_slos(slow)}
        assert not results["verb-latency-p99"].ok
        fast = [
            sample("service_request_seconds_bucket", 100, le="0.01"),
            sample("service_request_seconds_bucket", 100, le="+Inf"),
        ]
        results = {r.name: r for r in evaluate_slos(fast)}
        assert results["verb-latency-p99"].ok

    def test_malformed_and_auth_and_restarts_burn(self):
        scrape = [
            sample("service_malformed_lines_total", 1, server="x"),
            sample("service_auth_failures_total", 1, server="x"),
            sample("pool_worker_restarts_total", 1),
        ]
        results = {r.name: r for r in evaluate_slos(scrape)}
        assert not results["zero-malformed-lines"].ok
        assert not results["zero-auth-failures"].ok
        assert not results["zero-worker-restarts"].ok
