"""Elastic fleet tests: the lease table's scheduling semantics under a
fake clock, the collector's fleet verbs, the pull-based
:class:`FleetWorker` loop end to end (including a dead worker whose
leases are reassigned to a survivor, byte-identical reports included),
the transport-vs-server-error split in :class:`CollectorSink`, and a
restarted collector skipping malformed store records instead of
refusing to start."""

import json
import socket
import threading

import pytest

from repro.experiments import ResultStore, Suite, get_suite
from repro.experiments.cli import main
from repro.experiments.spec import (
    ALGORITHMS,
    AlgorithmFamily,
    ScenarioSpec,
    register_algorithm,
)
from repro.obs.slo import DEFAULT_SLOS, evaluate_slos
from repro.service import (
    CollectorSink,
    FleetWorker,
    LeaseTable,
    LineServer,
    ResultCollector,
    ServiceClient,
    ServiceError,
    ServiceTransportError,
)
from repro.service.protocol import error_response, ok_response, parse_endpoint

from test_service_collector import make_result

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix-domain sockets"
)

TOKEN = "fleet-suite-token"

TINY = Suite(
    name="fleet-tiny",
    description="test suite: a handful of cheap measured cells",
    scenarios=(
        ScenarioSpec(
            name="mis/tree", generator="random-tree",
            algorithm="tree-mis", sizes=(24, 32), seeds=(1, 2),
        ),
        ScenarioSpec(
            name="edge/tree", generator="random-tree",
            algorithm="arb-edge-coloring", sizes=(24,), seeds=(1,),
        ),
    ),
)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_table(**kwargs) -> tuple[LeaseTable, FakeClock]:
    clock = FakeClock()
    table = LeaseTable(
        heartbeat_interval_s=kwargs.pop("heartbeat_interval_s", 1.0),
        clock=clock,
        **kwargs,
    )
    return table, clock


class TestLeaseTable:
    def test_register_hands_out_ids_and_cadence(self):
        table, _ = make_table(lease_ttl_s=3.0)
        first = table.register("alpha")
        second = table.register("beta")
        assert first["worker_id"] != second["worker_id"]
        assert first["heartbeat_interval_s"] == 1.0
        assert first["lease_ttl_s"] == 3.0

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError, match="heartbeat interval"):
            LeaseTable(heartbeat_interval_s=0)
        with pytest.raises(ValueError, match="lease TTL"):
            LeaseTable(heartbeat_interval_s=2.0, lease_ttl_s=1.0)

    def test_default_ttl_is_two_heartbeats(self):
        table = LeaseTable(heartbeat_interval_s=0.5)
        assert table.lease_ttl_s == 1.0

    def test_grant_respects_limit_and_skips_completed_and_leased(self):
        table, _ = make_table()
        universe = [f"fp-{i}" for i in range(6)]
        table.seed_completed(["fp-0"])
        alpha = table.register("alpha")["worker_id"]
        beta = table.register("beta")["worker_id"]
        first = table.grant(alpha, universe, limit=3)
        assert first["granted"] == ["fp-1", "fp-2", "fp-3"]
        assert first["pending"] == 2 and not first["done"]
        second = table.grant(beta, universe, limit=10)
        assert second["granted"] == ["fp-4", "fp-5"]
        assert second["pending"] == 0
        assert second["outstanding"] == 3  # alpha still holds its batch
        assert not second["done"]

    def test_unknown_worker_gets_none(self):
        table, _ = make_table()
        assert table.heartbeat("worker-99") is None
        assert table.grant("worker-99", ["fp-0"]) is None

    def test_heartbeat_renews_leases_past_original_deadline(self):
        table, clock = make_table(lease_ttl_s=2.0)
        alpha = table.register("alpha")["worker_id"]
        table.grant(alpha, ["fp-0"], limit=1)
        clock.advance(1.5)
        assert table.heartbeat(alpha) == {"leases": 1}
        clock.advance(1.5)  # 3.0s after grant, 1.5s after renewal
        assert table.active_leases() == 1
        assert table.counts["expired"] == 0

    def test_missed_heartbeats_expire_and_reassign(self):
        events = []
        clock = FakeClock()
        table = LeaseTable(
            heartbeat_interval_s=1.0, lease_ttl_s=2.0, clock=clock,
            on_event=lambda fate, age: events.append((fate, age)),
        )
        dead = table.register("dead")["worker_id"]
        table.grant(dead, ["fp-0", "fp-1"], limit=2)
        clock.advance(2.5)
        survivor = table.register("survivor")["worker_id"]
        grant = table.grant(survivor, ["fp-0", "fp-1"], limit=2)
        assert sorted(grant["granted"]) == ["fp-0", "fp-1"]
        assert table.counts["expired"] == 2
        assert table.counts["reassigned"] == 2
        expired = [age for fate, age in events if fate == "expired"]
        assert expired == [2.5, 2.5]
        # the dead worker's late heartbeat finds nothing to renew
        assert table.heartbeat(dead) == {"leases": 0}

    def test_release_hands_failed_cells_to_the_next_worker(self):
        table, _ = make_table()
        alpha = table.register("alpha")["worker_id"]
        beta = table.register("beta")["worker_id"]
        table.grant(alpha, ["fp-0"], limit=1)
        table.grant(alpha, [], release=["fp-0"])
        assert table.counts["released"] == 1
        grant = table.grant(beta, ["fp-0"], limit=1)
        assert grant["granted"] == ["fp-0"]
        assert table.counts["reassigned"] == 1

    def test_release_of_another_workers_lease_is_ignored(self):
        table, _ = make_table()
        alpha = table.register("alpha")["worker_id"]
        beta = table.register("beta")["worker_id"]
        table.grant(alpha, ["fp-0"], limit=1)
        table.grant(beta, [], release=["fp-0"])
        assert table.counts["released"] == 0
        assert table.active_leases() == 1

    def test_complete_retires_the_lease_and_credits_the_worker(self):
        table, clock = make_table()
        alpha = table.register("alpha")["worker_id"]
        table.grant(alpha, ["fp-0"], limit=1)
        clock.advance(0.5)
        table.complete("fp-0")
        assert table.active_leases() == 0
        assert table.completed_count() == 1
        assert table.counts["completed"] == 1
        status = table.fleet_status()
        assert status["workers"][0]["completed"] == 1
        # a completed fingerprint is never granted again
        assert table.grant(alpha, ["fp-0"], limit=1)["granted"] == []

    def test_complete_without_a_lease_counts_no_lease_event(self):
        """A non-fleet shard worker's push still informs the scheduler
        (the fingerprint is done) but must not tick lease metrics."""
        table, _ = make_table()
        table.complete("fp-0")
        assert table.completed_count() == 1
        assert table.counts["completed"] == 0

    def test_done_only_when_offered_universe_is_completed(self):
        table, _ = make_table()
        alpha = table.register("alpha")["worker_id"]
        beta = table.register("beta")["worker_id"]
        table.grant(alpha, ["fp-0"], limit=1)
        # beta sees nothing pending, but alpha's lease is outstanding
        stalled = table.grant(beta, ["fp-0"], limit=1)
        assert stalled["granted"] == [] and not stalled["done"]
        table.complete("fp-0")
        assert table.grant(beta, ["fp-0"], limit=1)["done"] is True

    def test_worker_counts_track_liveness(self):
        table, clock = make_table(lease_ttl_s=2.0)
        table.register("alpha")
        clock.advance(3.0)
        table.register("beta")
        assert table.worker_counts() == {"alive": 1, "lost": 1}

    def test_oldest_lease_age_feeds_the_stuck_slo(self):
        table, clock = make_table(lease_ttl_s=2.0)
        alpha = table.register("alpha")["worker_id"]
        table.grant(alpha, ["fp-0"], limit=1)
        assert table.oldest_lease_age_s() == 0.0
        clock.advance(7.0)
        # deliberately unswept: the age is visible even past the TTL
        assert table.oldest_lease_age_s() == 7.0

    def test_fleet_status_shape(self):
        table, _ = make_table()
        alpha = table.register("alpha")["worker_id"]
        table.grant(alpha, ["fp-0", "fp-1"], limit=2)
        table.complete("fp-0")
        status = table.fleet_status()
        assert status["active_leases"] == 1
        assert status["completed"] == 1
        assert status["workers"][0]["leases"] == 1
        assert status["lease_counts"]["granted"] == 2
        assert set(status["lease_counts"]) == {
            "granted", "renewed", "expired", "released", "reassigned",
            "completed",
        }


@pytest.fixture()
def collector(tmp_path):
    collector = ResultCollector(
        out=tmp_path / "central", listen="127.0.0.1:0", token=TOKEN,
        heartbeat_interval_s=0.2,
    )
    collector.start()
    yield collector
    collector.close()


def collector_client(collector):
    host, port = collector.tcp_address
    return ServiceClient(f"{host}:{port}", token=TOKEN)


class TestCollectorFleetVerbs:
    def test_register_heartbeat_lease_round_trip(self, collector):
        client = collector_client(collector)
        reply = client.register("w1")
        worker_id = reply["worker_id"]
        assert reply["heartbeat_interval_s"] == 0.2
        assert reply["lease_ttl_s"] == pytest.approx(0.4)
        beat = client.heartbeat(worker_id)
        assert beat["known"] is True and beat["leases"] == 0
        grant = client.lease(worker_id, ["fp-0", "fp-1"], limit=1)
        assert grant["known"] is True
        assert grant["granted"] == ["fp-0"]
        status = client.fleet_status()
        assert status["active_leases"] == 1
        assert status["workers"][0]["worker_id"] == worker_id

    def test_unknown_worker_is_known_false_not_an_error(self, collector):
        client = collector_client(collector)
        assert client.heartbeat("worker-404")["known"] is False
        grant = client.lease("worker-404", ["fp-0"])
        assert grant["known"] is False and grant["granted"] == []

    def test_push_completes_the_lease(self, collector):
        client = collector_client(collector)
        worker_id = client.register("w1")["worker_id"]
        result = make_result(seed=1)
        client.lease(worker_id, [result.fingerprint], limit=1)
        assert collector.leases.active_leases() == 1
        client.push([result.to_record()])
        assert collector.leases.active_leases() == 0
        assert collector.leases.counts["completed"] == 1

    def test_every_push_fate_completes_idempotently(self, collector):
        """Every ingest fate — even a dropped duplicate — marks the
        fingerprint done in the scheduler (the cell ran *somewhere*),
        and repeat pushes do not double-count completion events."""
        client = collector_client(collector)
        worker_id = client.register("w1")["worker_id"]
        verified = make_result(seed=1, verified=True)
        client.lease(worker_id, [verified.fingerprint], limit=1)
        assert collector.ingest(verified.to_record()) == "accepted"
        assert collector.leases.counts["completed"] == 1
        unverified = make_result(seed=1, verified=False)
        assert collector.ingest(unverified.to_record()) == "dropped"
        assert collector.leases.completed_count() == 1
        assert collector.leases.active_leases() == 0
        # the second push found no active lease: no second event
        assert collector.leases.counts["completed"] == 1

    @pytest.mark.parametrize("payload,match", [
        ({"op": "register"}, "worker"),
        ({"op": "register", "worker": 7}, "worker"),
        ({"op": "heartbeat"}, "worker_id"),
        ({"op": "heartbeat", "worker_id": 3}, "worker_id"),
        ({"op": "lease"}, "worker_id"),
        ({"op": "lease", "worker_id": "w", "fingerprints": "fp"}, "fingerprints"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [1]}, "fingerprints"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [], "limit": 0}, "limit"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [], "limit": True}, "limit"),
        ({"op": "lease", "worker_id": "w", "fingerprints": [], "release": "x"}, "release"),
    ])
    def test_malformed_fleet_requests_are_errors(self, collector, payload, match):
        with pytest.raises(ServiceError, match=match):
            collector_client(collector).request(payload)

    def test_fleet_metrics_exported(self, collector):
        client = collector_client(collector)
        worker_id = client.register("w1")["worker_id"]
        result = make_result(seed=1)
        client.lease(worker_id, [result.fingerprint], limit=1)
        client.push([result.to_record()])
        text = client.metrics()
        assert 'fleet_workers{state="alive"} 1' in text
        assert 'fleet_leases_total{fate="granted"} 1' in text
        assert 'fleet_leases_total{fate="completed"} 1' in text
        assert "fleet_oldest_lease_age_seconds 0" in text
        assert "fleet_lease_ttl_seconds 0.4" in text
        assert "fleet_lease_age_seconds_count 1" in text


class TestCollectorSinkErrors:
    """Satellite pin: only *transport* failures trigger the sink's
    reconnect-once retry; a server error response propagates at once."""

    def serve(self, tmp_path, handler, close_after=None):
        server = LineServer(handler, name="sink-test", close_after=close_after)
        server.listen_unix(tmp_path / "sink.sock")
        server.start()
        return server, parse_endpoint(tmp_path / "sink.sock")

    def test_transport_failure_reconnects_once_and_succeeds(self, tmp_path):
        requests = []

        def handler(request):
            requests.append(request["op"])
            return ok_response(accepted=1, dropped=0)

        # the server closes the connection after every response, so each
        # push after the first hits a dead socket — a transport failure
        server, endpoint = self.serve(
            tmp_path, handler, close_after=lambda request, _: True
        )
        try:
            sink = CollectorSink(ServiceClient(str(endpoint)))
            sink(make_result(seed=1))
            sink(make_result(seed=2))
            sink.close()
        finally:
            server.close()
        assert sink.pushed == 2
        assert requests.count("push") == 2

    def test_server_error_response_propagates_without_retry(self, tmp_path):
        requests = []

        def handler(request):
            requests.append(request["op"])
            return error_response("collector rejected the record")

        server, endpoint = self.serve(tmp_path, handler)
        try:
            sink = CollectorSink(ServiceClient(str(endpoint)))
            with pytest.raises(ServiceError, match="rejected the record"):
                sink(make_result(seed=1))
            sink.close()
        finally:
            server.close()
        # exactly one attempt: a definitive server verdict is not retried
        assert requests == ["push"]
        assert sink.pushed == 0

    def test_transport_error_is_a_service_error_subclass(self):
        assert issubclass(ServiceTransportError, ServiceError)


class TestMalformedStoreRestart:
    def test_collector_restart_skips_and_counts_bad_records(self, tmp_path):
        """A corrupt line in the store (no fingerprint) must not brick
        the restart — it is skipped, counted and surfaced."""
        store_dir = tmp_path / "central"
        good = make_result(seed=1)
        bad = {"seed": 2, "rounds": 3.0}  # fingerprint missing
        empty = dict(good.to_record(), fingerprint="")
        store_dir.mkdir()
        with open(store_dir / "results.jsonl", "w") as handle:
            for record in (good.to_record(), bad, empty):
                handle.write(json.dumps(record) + "\n")
        collector = ResultCollector(
            out=store_dir, listen="127.0.0.1:0", token=TOKEN
        )
        collector.start()
        try:
            client = collector_client(collector)
            status = client.status()
            assert status["records"] == 1
            assert status["malformed_store_records"] == 2
            assert "collector_store_malformed_records 2" in client.metrics()
            # the surviving verified record still seeds the lease table
            assert collector.leases.completed_count() == 1
        finally:
            collector.close()


def run_fleet_worker(suite, store, collector, **kwargs):
    host, port = collector.tcp_address
    worker = FleetWorker(
        suite, store, f"{host}:{port}", token=TOKEN, **kwargs
    )
    return worker, worker.run()


class TestFleetWorkerEndToEnd:
    def test_single_worker_completes_the_suite(self, collector, tmp_path):
        store = ResultStore(tmp_path / "w1")
        worker, report = run_fleet_worker(
            TINY, store, collector, jobs=2, lease_batch=2, name="w1"
        )
        total = len(TINY.cells())
        assert report.ok
        assert report.executed == total and report.skipped == 0
        assert worker.pushed == total
        assert len(store) == total
        assert len(ResultStore(tmp_path / "central")) == total
        status = collector.leases.fleet_status()
        assert status["active_leases"] == 0
        assert status["completed"] == total
        assert status["lease_counts"]["completed"] == total

    def test_dead_workers_leases_are_reassigned_and_report_is_identical(
        self, collector, tmp_path, capsys
    ):
        """The elastic acceptance bar: a worker that leases cells and
        dies without heartbeating loses them to the survivor, the suite
        finishes with no lost cells, and the collector's report is
        byte-identical to a plain single-machine run's."""
        client = collector_client(collector)
        dead_id = client.register("doomed")["worker_id"]
        universe = [cell.fingerprint for cell in TINY.cells()]
        grabbed = client.lease(dead_id, universe, limit=3)["granted"]
        assert len(grabbed) == 3
        # ... the worker dies here: no heartbeat ever arrives

        store = ResultStore(tmp_path / "survivor")
        worker, report = run_fleet_worker(
            TINY, store, collector, jobs=2, lease_batch=2, name="survivor"
        )
        total = len(TINY.cells())
        assert report.ok and report.executed == total
        assert collector.leases.counts["expired"] >= 3
        assert collector.leases.counts["reassigned"] >= 3
        assert len(ResultStore(tmp_path / "central")) == total
        states = {
            w["name"]: w["state"]
            for w in collector.leases.fleet_status()["workers"]
        }
        assert states["doomed"] == "lost"

        # The survivor executed every cell, so the collector's merged
        # store and the survivor's local store hold the same records —
        # their report bundles must be byte-identical (the elastic path
        # loses nothing and invents nothing).
        assert main([
            "report", "--out", str(tmp_path / "central"),
            "--json", str(tmp_path / "fleet.json"),
        ]) == 0
        assert main([
            "report", "--out", str(tmp_path / "survivor"),
            "--json", str(tmp_path / "local.json"),
        ]) == 0
        capsys.readouterr()
        fleet_bytes = (tmp_path / "fleet.json").read_bytes()
        assert fleet_bytes == (tmp_path / "local.json").read_bytes()
        # and modulo the nonsemantic wall clock, a plain single-machine
        # run over the same suite agrees record for record
        plain = ResultStore(tmp_path / "plain")
        from repro.experiments import SweepRunner

        assert SweepRunner(TINY, plain, jobs=1).run().ok

        def semantic(store):
            records = {}
            for record in store.records():
                record.pop("wall_clock_s", None)
                record.pop("timings", None)
                records[record["fingerprint"]] = record
            return records

        assert semantic(ResultStore(tmp_path / "central")) == semantic(plain)

    def test_replacement_worker_resumes_from_completed_fingerprints(
        self, collector, tmp_path
    ):
        """A replacement machine needs no JSONL copying: the collector
        simply never grants what the first worker already pushed."""
        first = ResultStore(tmp_path / "first")
        done = 0
        client = collector_client(collector)
        for cell in TINY.cells()[:3]:
            from repro.experiments.runner import run_cell

            result = run_cell(TINY.name, cell)
            first.append(result)
            client.push([result.to_record()])
            done += 1
        replacement = ResultStore(tmp_path / "replacement")
        worker, report = run_fleet_worker(
            TINY, replacement, collector, jobs=1, name="replacement"
        )
        total = len(TINY.cells())
        assert report.executed == total - done
        assert report.skipped == done
        assert len(ResultStore(tmp_path / "central")) == total

    def test_failed_cells_are_released_not_retried_forever(
        self, collector, tmp_path
    ):
        if "_test-boom" not in ALGORITHMS:
            def boom(graph, generator, n):
                raise RuntimeError("boom")

            register_algorithm(AlgorithmFamily(
                name="_test-boom", description="always raises",
                kind="baseline", run=boom,
            ))
        suite = Suite(
            name="fleet-boom", description="", scenarios=(
                ScenarioSpec(
                    name="boom", generator="random-tree",
                    algorithm="_test-boom", sizes=(10,), seeds=(1,),
                ),
                ScenarioSpec(
                    name="ok", generator="random-tree",
                    algorithm="baseline-mis", sizes=(10,), seeds=(1,),
                ),
            ),
        )
        store = ResultStore(tmp_path / "boom")
        worker, report = run_fleet_worker(
            suite, store, collector, jobs=1, name="boom-worker"
        )
        assert not report.ok
        assert len(report.failures) == 1
        assert "boom" in report.failures[0].error
        assert report.executed == 1
        # the failed fingerprint went back to the fleet, not into limbo
        assert collector.leases.counts["released"] == 1
        assert collector.leases.active_leases() == 0

    def test_cli_fleet_flag_is_exclusive_with_shard_and_collector(
        self, capsys
    ):
        for extra in (["--shard", "0/2"], ["--collector", "127.0.0.1:1"]):
            assert main([
                "run", "paper-claims", "--smoke",
                "--fleet", "127.0.0.1:1", *extra,
            ]) == 2
            assert "--fleet replaces" in capsys.readouterr().err

    def test_cli_fleet_run_end_to_end(self, collector, tmp_path, capsys):
        host, port = collector.tcp_address
        code = main([
            "run", "lower-bound", "--smoke",
            "--fleet", f"{host}:{port}", "--token", TOKEN,
            "--out", str(tmp_path / "cli-store"), "--jobs", "1",
            "--worker-name", "cli-worker", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[fleet " in out and "cli-worker" in out
        assert "pushed" in out
        total = len(get_suite("lower-bound").cells(smoke=True))
        assert len(ResultStore(tmp_path / "central")) == total


class TestLeaseStuckSLO:
    def evaluate(self, samples):
        results = {r.name: r for r in evaluate_slos(samples)}
        return results["lease-stuck"]

    @staticmethod
    def scrape(collector):
        client = collector_client(collector)
        from repro.obs import parse_exposition

        return parse_exposition(client.metrics())

    def test_no_fleet_data_passes(self):
        verdict = self.evaluate([])
        assert verdict.ok and verdict.no_data

    def test_healthy_collector_scrape_passes(self, collector):
        client = collector_client(collector)
        worker_id = client.register("w1")["worker_id"]
        client.lease(worker_id, ["fp-0"], limit=1)
        verdict = self.evaluate(self.scrape(collector))
        assert verdict.ok and not verdict.no_data
        assert "3x" in verdict.detail

    def test_lease_stuck_past_three_ttls_burns(self, tmp_path):
        clock = FakeClock()
        collector = ResultCollector(
            out=tmp_path / "c", listen="127.0.0.1:0", token=TOKEN,
            heartbeat_interval_s=0.2,
        )
        collector.leases._clock = clock
        collector.start()
        try:
            client = collector_client(collector)
            worker_id = client.register("w1")["worker_id"]
            client.lease(worker_id, ["fp-0"], limit=1)
            clock.advance(5.0)  # ttl is 0.4s; 5s >> 3x budget
            verdict = self.evaluate(self.scrape(collector))
        finally:
            collector.close()
        assert not verdict.ok
        assert "oldest active lease" in verdict.detail

    def test_slo_roster_includes_lease_stuck(self):
        assert "lease-stuck" in {slo.name for slo in DEFAULT_SLOS}
