"""Pytest bootstrap.

Ensures ``src/`` is importable even when the package has not been
installed (the offline environment lacks the ``wheel`` package that modern
``pip install -e .`` requires; ``python setup.py develop`` works, but this
fallback keeps ``pytest`` self-contained either way).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
