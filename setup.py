"""Setuptools shim.

The environment this repository targets has no ``wheel`` package available
(offline), so ``pip install -e .`` falls back to the legacy
``setup.py develop`` code path, which this file enables.

``numpy`` is a hard dependency: the vectorized array engine
(:mod:`repro.local.vectorized`) is the default backend for the
kernel-capable baselines and the decomposition peeling loops, and the
experiments CLI exposes it through ``--engine``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
    ],
)
