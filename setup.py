"""Setuptools shim.

The environment this repository targets has no ``wheel`` package available
(offline), so ``pip install -e .`` falls back to the legacy
``setup.py develop`` code path, which this file enables.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
