#!/usr/bin/env python
"""CI SLO burn check over a saved metrics scrape.

Usage::

    python scripts/slo_burn_check.py <scrape.prom> [--store results.jsonl]

Evaluates every objective in :data:`repro.obs.slo.DEFAULT_SLOS` against
the Prometheus-text exposition in the file and exits 1 if any burns.
With ``--store``, additionally asserts ingest completeness: the
collector's ``collector_records_ingested_total`` counter must equal the
streamed store's record count — the scrape and the durable store agree
on how many records exist, so nothing was silently lost between the
wire and the disk.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable straight from a checkout: scripts/ sits next to src/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import parse_exposition, samples_named, sum_samples
from repro.obs.slo import DEFAULT_SLOS, evaluate_slos


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scrape", help="a saved Prometheus-text exposition file")
    parser.add_argument(
        "--store", default=None, metavar="JSONL",
        help="assert collector_records_ingested_total equals this result "
        "store's record count",
    )
    args = parser.parse_args(argv)

    try:
        text = Path(args.scrape).read_text(encoding="utf-8")
        samples = parse_exposition(text)
    except (OSError, ValueError) as error:
        print(f"cannot read scrape: {error}", file=sys.stderr)
        return 2

    failed = False
    for result in evaluate_slos(samples, DEFAULT_SLOS):
        print(f"  {result.status:>8}  {result.name}: {result.detail}")
        failed = failed or not result.ok

    if args.store is not None:
        if not samples_named(samples, "collector_records_ingested_total"):
            print(
                "  BURNING  ingest-completeness: the scrape has no "
                "collector_records_ingested_total samples — was it taken "
                "from a collector?"
            )
            failed = True
        else:
            ingested = sum_samples(samples, "collector_records_ingested_total")
            try:
                store_lines = sum(
                    1
                    for line in Path(args.store).read_text(encoding="utf-8").splitlines()
                    if line.strip()
                )
            except OSError as error:
                print(f"cannot read store: {error}", file=sys.stderr)
                return 2
            ok = ingested == store_lines
            print(
                f"  {'ok' if ok else 'BURNING':>8}  ingest-completeness: "
                f"counter={int(ingested)} store_records={store_lines}"
            )
            failed = failed or not ok

    if failed:
        print("SLO burn check FAILED", file=sys.stderr)
        return 1
    print("SLO burn check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
