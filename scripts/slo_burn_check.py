#!/usr/bin/env python
"""CI SLO burn check over a saved metrics scrape or scrape history.

Usage::

    python scripts/slo_burn_check.py <scrape.prom> [--store results.jsonl]
    python scripts/slo_burn_check.py --history hist.jsonl \
        [--window 5m] [--slow-window 1h] [--store results.jsonl]

The first form evaluates every objective in
:data:`repro.obs.slo.DEFAULT_SLOS` against one Prometheus-text
exposition (the degenerate single-sample window: cumulative-total
semantics).  The second form reads a scrape-history JSONL file (from
``metrics --history --out`` or a service's ``--history-spill``) and
evaluates dual-window burn rates: an objective is burning only when it
fails over both the fast window (``--window``, default 5m) and the slow
window (``--slow-window``, default 1h), the standard guard against
paging on transient blips.

With ``--store``, additionally asserts ingest completeness: the
collector's ``collector_records_ingested_total`` counter must equal the
streamed store's record count — the scrape and the durable store agree
on how many records exist, so nothing was silently lost between the
wire and the disk.

Exit codes::

    0  every objective within budget
    1  at least one objective burning
    2  unreadable input or bad usage
    3  no data: every objective lacked its underlying series
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable straight from a checkout: scripts/ sits next to src/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import parse_exposition, samples_named, sum_samples
from repro.obs.slo import (
    DEFAULT_FAST_WINDOW_S,
    DEFAULT_SLOW_WINDOW_S,
    DEFAULT_SLOS,
    evaluate_slos,
    evaluate_slos_windowed,
)
from repro.obs.timeseries import load_history_jsonl, parse_duration

EXIT_OK = 0
EXIT_BURNING = 1
EXIT_UNREADABLE = 2
EXIT_NO_DATA = 3


def _duration(text: str) -> float:
    try:
        return parse_duration(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _format_window(seconds: float) -> str:
    if seconds % 3600 == 0 and seconds >= 3600:
        return f"{int(seconds // 3600)}h"
    if seconds % 60 == 0 and seconds >= 60:
        return f"{int(seconds // 60)}m"
    return f"{seconds:g}s"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scrape", nargs="?", default=None,
        help="a saved Prometheus-text exposition file (single-scrape mode)",
    )
    parser.add_argument(
        "--history", default=None, metavar="JSONL",
        help="a scrape-history JSONL file (from `metrics --history --out` "
        "or a --history-spill); switches to dual-window burn-rate mode",
    )
    parser.add_argument(
        "--window", type=_duration, default=None, metavar="DURATION",
        help="fast burn window for --history mode, e.g. 5m "
        f"(default: {_format_window(DEFAULT_FAST_WINDOW_S)})",
    )
    parser.add_argument(
        "--slow-window", type=_duration, default=None, metavar="DURATION",
        help="slow corroboration window for --history mode, e.g. 1h "
        f"(default: {_format_window(DEFAULT_SLOW_WINDOW_S)}, "
        "clamped to at least the fast window)",
    )
    parser.add_argument(
        "--store", default=None, metavar="JSONL",
        help="assert collector_records_ingested_total equals this result "
        "store's record count",
    )
    args = parser.parse_args(argv)

    if (args.scrape is None) == (args.history is None):
        print(
            "exactly one input required: a scrape file, or --history JSONL",
            file=sys.stderr,
        )
        return EXIT_UNREADABLE
    if args.scrape is not None and (
        args.window is not None or args.slow_window is not None
    ):
        print("--window/--slow-window require --history", file=sys.stderr)
        return EXIT_UNREADABLE

    failed = False
    saw_data = False

    if args.history is not None:
        try:
            points = load_history_jsonl(args.history)
        except (OSError, ValueError) as error:
            print(f"cannot read history: {error}", file=sys.stderr)
            return EXIT_UNREADABLE
        if not points:
            print(f"{args.history}: empty history — no data", file=sys.stderr)
            return EXIT_NO_DATA
        fast = args.window if args.window is not None else DEFAULT_FAST_WINDOW_S
        slow = (
            args.slow_window
            if args.slow_window is not None
            else max(DEFAULT_SLOW_WINDOW_S, fast)
        )
        try:
            burn_results = evaluate_slos_windowed(
                points, fast_window_s=fast, slow_window_s=max(slow, fast)
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return EXIT_UNREADABLE
        print(
            f"dual-window burn over {len(points)} point(s): "
            f"fast={_format_window(fast)} slow={_format_window(max(slow, fast))}"
        )
        for result in burn_results:
            print(
                f"  {result.status:>14}  {result.name}: "
                f"fast: {result.fast.detail} | slow: {result.slow.detail}"
            )
            failed = failed or result.burning
            saw_data = saw_data or not result.no_data
        samples = points[-1].samples
    else:
        try:
            text = Path(args.scrape).read_text(encoding="utf-8")
            samples = parse_exposition(text)
        except (OSError, ValueError) as error:
            print(f"cannot read scrape: {error}", file=sys.stderr)
            return EXIT_UNREADABLE
        for result in evaluate_slos(samples, DEFAULT_SLOS):
            print(f"  {result.status:>8}  {result.name}: {result.detail}")
            failed = failed or not result.ok
            saw_data = saw_data or not result.no_data

    if args.store is not None:
        if not samples_named(samples, "collector_records_ingested_total"):
            print(
                "  BURNING  ingest-completeness: the scrape has no "
                "collector_records_ingested_total samples — was it taken "
                "from a collector?"
            )
            failed = True
        else:
            ingested = sum_samples(samples, "collector_records_ingested_total")
            try:
                store_lines = sum(
                    1
                    for line in Path(args.store).read_text(encoding="utf-8").splitlines()
                    if line.strip()
                )
            except OSError as error:
                print(f"cannot read store: {error}", file=sys.stderr)
                return EXIT_UNREADABLE
            ok = ingested == store_lines
            print(
                f"  {'ok' if ok else 'BURNING':>8}  ingest-completeness: "
                f"counter={int(ingested)} store_records={store_lines}"
            )
            failed = failed or not ok
            saw_data = True

    if failed:
        print("SLO burn check FAILED", file=sys.stderr)
        return EXIT_BURNING
    if not saw_data:
        print(
            "SLO burn check: no data — no objective had its underlying "
            "series",
            file=sys.stderr,
        )
        return EXIT_NO_DATA
    print("SLO burn check passed")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
