"""repro: a reproduction of *Towards Optimal Deterministic LOCAL Algorithms on Trees*.

The package implements the paper's transformation from truly local
algorithms (runtime ``O(f(Δ) + log* n)``) to algorithms on trees and
bounded-arboricity graphs (runtime ``O(f(g(n)) + log* n)`` where
``g^{f(g)} = n``), together with every substrate it relies on: semi-graphs
and the node-edge-checkability formalism, a synchronous LOCAL-model
simulator, truly local baseline algorithms, and the two decomposition
processes (rake-and-compress and the bounded-arboricity Decomposition).

Typical usage::

    from repro.baselines import EdgeColoringAlgorithm
    from repro.core import solve_on_bounded_arboricity
    from repro.generators import random_tree

    tree = random_tree(500, seed=1)
    result = solve_on_bounded_arboricity(tree, arboricity=1,
                                         algorithm=EdgeColoringAlgorithm())
    assert result.verification.ok
    print(result.rounds, result.ledger.breakdown())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
