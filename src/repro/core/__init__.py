"""The paper's core contribution: the truly-local-to-trees transformation.

* :mod:`repro.core.complexity` — complexity functions ``f``, the solution
  ``g(n)`` of ``g^{f(g)} = n``, and the analytic round predictions used by
  Theorems 1–3.
* :mod:`repro.core.sequential` — the sequential list solvers: the labelling
  processes of Lemma 16 (edge colouring) and Lemma 17 (maximal matching),
  greedy solvers for the edge-list variants of MIS and (deg+1)-colouring,
  and a generic backtracking solver for small components.
* :mod:`repro.core.transform` — Algorithm 2 / Theorem 12 (node problems on
  trees) and Algorithm 4 / Theorem 15 (edge problems on bounded-arboricity
  graphs), with full round accounting.
* :mod:`repro.core.slocal` — the SLOCAL(1) sequential-local formulation of
  the problem classes P1 and P2, with executable membership witnesses for
  the four problems of Section 5.
"""

from repro.core.complexity import (
    ComplexityFunction,
    linear,
    quadratic,
    polynomial,
    polylog,
    sqrt_delta_log,
    log_star,
    solve_g,
    predicted_rounds_tree,
    predicted_rounds_arboricity,
    mm_mis_tree_bound,
)
from repro.core.interfaces import OracleCostModel, TrulyLocalAlgorithm
from repro.core.sequential import (
    SequentialSolverError,
    BacktrackingListSolver,
    EdgeColoringNodeListSolver,
    MatchingNodeListSolver,
    MISEdgeListSolver,
    ColoringEdgeListSolver,
    default_edge_list_solver,
    default_node_list_solver,
)
from repro.core.transform import (
    TransformResult,
    solve_on_tree,
    solve_on_bounded_arboricity,
)
from repro.core.slocal import (
    membership_class,
    solve_edge_sequential,
    solve_node_sequential,
)

__all__ = [
    "ComplexityFunction",
    "linear",
    "quadratic",
    "polynomial",
    "polylog",
    "sqrt_delta_log",
    "log_star",
    "solve_g",
    "predicted_rounds_tree",
    "predicted_rounds_arboricity",
    "mm_mis_tree_bound",
    "OracleCostModel",
    "TrulyLocalAlgorithm",
    "default_edge_list_solver",
    "default_node_list_solver",
    "SequentialSolverError",
    "BacktrackingListSolver",
    "EdgeColoringNodeListSolver",
    "MatchingNodeListSolver",
    "MISEdgeListSolver",
    "ColoringEdgeListSolver",
    "TransformResult",
    "solve_on_tree",
    "solve_on_bounded_arboricity",
    "membership_class",
    "solve_node_sequential",
    "solve_edge_sequential",
]
