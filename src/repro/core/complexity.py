"""Complexity functions and the function ``g`` of Theorems 1 and 2.

The paper relates the truly local complexity ``O(f(Δ) + log* n)`` of a
problem to its complexity on trees through the function ``g`` defined by

    g(n) ^ f(g(n)) = n,            equivalently   f(g) · log g = log n,

which is exactly the balance point between running the truly local
algorithm on a part of maximum degree ``g(n)`` (cost ``f(g(n))``) and
peeling/aggregating over components of depth ``log_{g(n)} n`` (which also
equals ``f(g(n))`` at the balance point).

This module provides:

* :class:`ComplexityFunction` — a named, monotone complexity function;
* the stock functions used in the paper (linear, polynomial, ``log^c Δ``,
  ``√Δ log Δ``);
* :func:`solve_g` — a numeric solver for ``g(n)``;
* the analytic round predictions of Theorem 12 and Theorem 15, used by the
  experiment harness to reproduce the *shape* of Theorem 3 for the
  paper-cited ``f(Δ) = log^{12} Δ`` black box that is not reimplemented
  here (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ComplexityFunction:
    """A monotonically non-decreasing complexity function ``f`` with ``f(0) = 0``."""

    name: str
    fn: Callable[[float], float]

    def __call__(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return float(self.fn(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComplexityFunction({self.name!r})"


# ----------------------------------------------------------------------
# stock complexity functions
# ----------------------------------------------------------------------
def linear(scale: float = 1.0) -> ComplexityFunction:
    """``f(Δ) = scale · Δ`` — e.g. MIS and maximal matching [BEK14, PR01]."""
    return ComplexityFunction(f"{scale:g}*delta", lambda x: scale * x)


def quadratic(scale: float = 1.0, shift: float = 0.0) -> ComplexityFunction:
    """``f(Δ) = scale · (Δ + shift)²`` — the Linial-based baselines of this repo."""
    return ComplexityFunction(
        f"{scale:g}*(delta+{shift:g})^2", lambda x: scale * (x + shift) ** 2
    )


def polynomial(exponent: float, scale: float = 1.0) -> ComplexityFunction:
    """``f(Δ) = scale · Δ^exponent``."""
    return ComplexityFunction(
        f"{scale:g}*delta^{exponent:g}", lambda x: scale * x**exponent
    )


def polylog(exponent: float, scale: float = 1.0) -> ComplexityFunction:
    """``f(Δ) = scale · (log₂ Δ)^exponent`` — e.g. the [BBKO22b] edge colouring
    with ``exponent = 12``, the black box behind Theorem 3."""

    def fn(x: float) -> float:
        if x <= 1:
            return 0.0
        return scale * math.log2(x) ** exponent

    return ComplexityFunction(f"{scale:g}*log^{exponent:g}(delta)", fn)


def sqrt_delta_log(scale: float = 1.0) -> ComplexityFunction:
    """``f(Δ) = scale · √Δ · log Δ`` — the [MT20] (Δ+1)-colouring bound."""

    def fn(x: float) -> float:
        if x <= 1:
            return scale * x
        return scale * math.sqrt(x) * math.log2(x)

    return ComplexityFunction(f"{scale:g}*sqrt(delta)*log(delta)", fn)


# ----------------------------------------------------------------------
# log*, g(n), and the analytic predictions
# ----------------------------------------------------------------------
def log_star(n: float) -> int:
    """The iterated logarithm (base 2) of ``n``."""
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def solve_g(f: ComplexityFunction, n: float, tolerance: float = 1e-9) -> float:
    """Solve ``g^{f(g)} = n`` (i.e. ``f(g)·ln g = ln n``) for ``g ≥ 1``.

    For monotone non-decreasing, non-zero ``f`` the left-hand side is
    non-decreasing in ``g`` and the solution is unique.  If even ``g = n``
    does not reach ``n`` (which happens when ``f(n) < 1``), the function
    returns ``n`` — the truly local algorithm is then already as fast as
    any algorithm needs to be on such small instances.
    """
    if n <= 1:
        return 1.0
    return solve_g_from_log2(f, math.log2(n), cap=float(n), tolerance=tolerance)


def solve_g_from_log2(
    f: ComplexityFunction,
    log2_n: float,
    cap: float | None = None,
    tolerance: float = 1e-9,
) -> float:
    """Solve ``g^{f(g)} = n`` given ``log₂ n`` (for instances too large to
    represent ``n`` itself as a float, e.g. the asymptotic regime of the
    shape experiments)."""
    if log2_n <= 0:
        return 1.0
    if cap is None:
        cap = 2.0 ** min(log2_n, 1000.0)

    def value(g: float) -> float:
        return f(g) * math.log2(g)

    low, high = 1.0, float(cap)
    if value(high) < log2_n:
        return float(cap)
    for _ in range(200):
        # Geometric mean while the bracket spans orders of magnitude (computed
        # as a product of square roots so that huge brackets do not overflow),
        # arithmetic mean once it is narrow.
        if high / max(low, 1e-12) > 4:
            mid = math.sqrt(low) * math.sqrt(high)
        else:
            mid = (low + high) / 2
        if value(mid) < log2_n:
            low = mid
        else:
            high = mid
        if high - low <= tolerance * max(1.0, high):
            break
    return high


def predicted_rounds_tree_from_log2(f: ComplexityFunction, log2_n: float) -> float:
    """The Theorem 1 prediction ``f(g(n)) + log* n`` given ``log₂ n``."""
    if log2_n <= 0:
        return 0.0
    g_value = solve_g_from_log2(f, log2_n)
    return f(g_value) + log_star(log2_n) + 1


def mm_mis_tree_bound_from_log2(log2_n: float, scale: float = 1.0) -> float:
    """The ``Θ(log n / log log n)`` barrier given ``log₂ n``."""
    if log2_n <= 2:
        return scale
    return scale * log2_n / math.log2(log2_n)


def choose_k(f: ComplexityFunction, n: int, rho: int = 1, minimum: int = 2) -> int:
    """An integer cut-off ``k = ⌈g(n)^ρ⌉`` for the decompositions, at least ``minimum``."""
    g_value = solve_g(f, max(n, 2))
    return max(minimum, math.ceil(g_value**rho))


def predicted_rounds_tree(f: ComplexityFunction, n: float) -> float:
    """The Theorem 1 / Theorem 12 prediction ``f(g(n)) + log* n`` on trees."""
    if n <= 1:
        return 0.0
    g_value = solve_g(f, n)
    return f(g_value) + log_star(n)


def predicted_rounds_arboricity(
    f: ComplexityFunction, n: float, arboricity: float, rho: int = 2
) -> float:
    """The Theorem 15 prediction ``a + ρ·f(g^ρ)/(ρ − log_g a) + log* n``.

    Requires ``a ≤ g(n)^ρ / 5``; the caller is responsible for choosing a
    large enough ``ρ``.
    """
    if n <= 1:
        return 0.0
    g_value = solve_g(f, n)
    if g_value <= 1.0:
        return float(arboricity) + log_star(n)
    log_g_a = math.log(max(arboricity, 1.0)) / math.log(g_value)
    denominator = rho - log_g_a
    if denominator <= 0:
        raise ValueError(
            f"rho={rho} too small for arboricity {arboricity} at n={n}: "
            f"log_g(a)={log_g_a:.3f}"
        )
    return arboricity + rho * f(g_value**rho) / denominator + log_star(n)


def mm_mis_tree_bound(n: float, scale: float = 1.0) -> float:
    """The ``Θ(log n / log log n)`` tight bound for MIS / maximal matching on trees.

    This is the barrier that Theorem 3 shows (edge-degree+1)-edge colouring
    breaks through; the experiment harness plots it for comparison.
    """
    if n <= 4:
        return scale
    return scale * math.log2(n) / math.log2(math.log2(n))
