"""Sequential solvers for the list variants ``Π*`` and ``Π×``.

Inside the transformation, each connected component of the "second part" of
the decomposition is gathered at its highest node, which then solves the
residual list problem *sequentially* with full knowledge of the component
(Algorithm 2 line 2 and Algorithm 4 line 2).  This module implements those
sequential solvers:

* :class:`EdgeColoringNodeListSolver` — the labelling process of Lemma 16
  for the node-list variant of (edge-degree+1)-edge colouring;
* :class:`MatchingNodeListSolver` — the labelling process of Lemma 17 for
  the node-list variant of maximal matching;
* :class:`MISEdgeListSolver` and :class:`ColoringEdgeListSolver` — greedy
  solvers for the edge-list variants of MIS and (deg+1)-colouring used by
  the Theorem 12 pipeline (the paper places both problems in the class
  ``P1`` of problems with 1-hop sequential solvers);
* :class:`BacktrackingListSolver` — a generic exhaustive solver over a
  finite candidate label set, used as an independent cross-check on small
  components in the test-suite.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.problems import DUMMY
from repro.problems.edge_coloring import is_pair_label
from repro.problems.lists import (
    EdgeListConstraint,
    EdgeListInstance,
    NodeListConstraint,
    NodeListInstance,
)
from repro.problems.matching import MATCHED, POINTER as MATCH_POINTER, UNMATCHED
from repro.problems.mis import IN_MIS, OUT, POINTER as MIS_POINTER
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import HalfEdge


class SequentialSolverError(RuntimeError):
    """Raised when a sequential solver cannot complete a valid solution."""


def _ordered(items: Iterable) -> list:
    """A deterministic processing order (the solvers are order-robust)."""
    return sorted(items, key=repr)


# ----------------------------------------------------------------------
# Lemma 16: (edge-degree+1)-edge colouring, node-list variant
# ----------------------------------------------------------------------
class EdgeColoringNodeListSolver:
    """The sequential labelling process of Lemma 16."""

    def solve(self, instance: NodeListInstance) -> HalfEdgeLabeling:
        """Solve the ``Π*`` instance for the edge colouring problem."""
        semigraph = instance.semigraph
        labeling = HalfEdgeLabeling()
        assigned_pairs: dict[Any, list] = {node: [] for node in semigraph.nodes}

        for edge in _ordered(semigraph.edges_of_rank(2)):
            v1, v2 = semigraph.endpoints(edge)
            fixed_1 = instance.list_for(v1).fixed
            fixed_2 = instance.list_for(v2).fixed
            pairs_1 = [lab for lab in fixed_1 if lab != DUMMY]
            pairs_2 = [lab for lab in fixed_2 if lab != DUMMY]
            chi_1 = assigned_pairs[v1]
            chi_2 = assigned_pairs[v2]
            used_colours = {
                lab[1]
                for lab in (*pairs_1, *pairs_2, *chi_1, *chi_2)
                if is_pair_label(lab)
            }
            budget = len(pairs_1) + len(pairs_2) + len(chi_1) + len(chi_2) + 1
            colour = next(c for c in range(1, budget + 1) if c not in used_colours)
            label_1 = (len(pairs_1) + len(chi_1) + 1, colour)
            label_2 = (len(pairs_2) + len(chi_2) + 1, colour)
            labeling.assign(HalfEdge(v1, edge), label_1)
            labeling.assign(HalfEdge(v2, edge), label_2)
            assigned_pairs[v1].append(label_1)
            assigned_pairs[v2].append(label_2)

        for edge in _ordered(semigraph.edges_of_rank(1)):
            (node,) = semigraph.endpoints(edge)
            labeling.assign(HalfEdge(node, edge), DUMMY)
        return labeling


# ----------------------------------------------------------------------
# Lemma 17: maximal matching, node-list variant
# ----------------------------------------------------------------------
class MatchingNodeListSolver:
    """The sequential labelling process of Lemma 17."""

    def solve(self, instance: NodeListInstance) -> HalfEdgeLabeling:
        """Solve the ``Π*`` instance for the maximal matching problem."""
        semigraph = instance.semigraph
        labeling = HalfEdgeLabeling()
        has_matched: dict[Any, bool] = {
            node: MATCHED in instance.list_for(node).fixed for node in semigraph.nodes
        }

        for edge in _ordered(semigraph.edges_of_rank(2)):
            v1, v2 = semigraph.endpoints(edge)
            matched_1 = has_matched[v1]
            matched_2 = has_matched[v2]
            if not matched_1 and not matched_2:
                labels = (MATCHED, MATCHED)
                has_matched[v1] = True
                has_matched[v2] = True
            elif matched_1 and matched_2:
                labels = (MATCH_POINTER, MATCH_POINTER)
            elif matched_1:
                labels = (MATCH_POINTER, UNMATCHED)
            else:
                labels = (UNMATCHED, MATCH_POINTER)
            labeling.assign(HalfEdge(v1, edge), labels[0])
            labeling.assign(HalfEdge(v2, edge), labels[1])

        for edge in _ordered(semigraph.edges_of_rank(1)):
            (node,) = semigraph.endpoints(edge)
            labeling.assign(HalfEdge(node, edge), DUMMY)
        return labeling


# ----------------------------------------------------------------------
# Greedy edge-list solvers for the Theorem 12 pipeline
# ----------------------------------------------------------------------
class MISEdgeListSolver:
    """Greedy sequential solver for the edge-list variant of MIS.

    Processing nodes in any order: a node joins the MIS unless one of its
    edge lists reveals an already-chosen MIS neighbour outside the
    component or an earlier-processed neighbour inside the component joined
    the MIS.  A node that does not join points ``P`` at one of those MIS
    neighbours and ``O`` everywhere else.
    """

    def solve(self, instance: EdgeListInstance) -> HalfEdgeLabeling:
        """Solve the ``Π×`` instance for MIS."""
        semigraph = instance.semigraph
        labeling = HalfEdgeLabeling()
        decision: dict[Any, bool] = {}

        for node in _ordered(semigraph.nodes):
            blocking_edges = []
            for edge in semigraph.incident_edges(node):
                constraint = instance.list_for(edge)
                if IN_MIS in constraint.fixed:
                    blocking_edges.append(edge)
                    continue
                other = semigraph.other_endpoint(edge, node)
                if other is not None and decision.get(other) is True:
                    blocking_edges.append(edge)
            joins = not blocking_edges
            decision[node] = joins
            if joins:
                for edge in semigraph.incident_edges(node):
                    labeling.assign(HalfEdge(node, edge), IN_MIS)
            else:
                pointer_edge = min(blocking_edges, key=repr)
                for edge in semigraph.incident_edges(node):
                    label = MIS_POINTER if edge == pointer_edge else OUT
                    labeling.assign(HalfEdge(node, edge), label)
        return labeling


class ColoringEdgeListSolver:
    """Greedy sequential solver for the edge-list variant of (deg+1)-colouring.

    A node picks the smallest colour that no edge list forbids and that no
    earlier-processed neighbour inside the component chose; at most
    ``deg`` colours are forbidden, so a colour of value at most
    ``deg + 1`` always exists.
    """

    def solve(self, instance: EdgeListInstance) -> HalfEdgeLabeling:
        """Solve the ``Π×`` instance for (deg+1)-colouring."""
        semigraph = instance.semigraph
        labeling = HalfEdgeLabeling()
        chosen: dict[Any, int] = {}

        for node in _ordered(semigraph.nodes):
            forbidden: set[int] = set()
            for edge in semigraph.incident_edges(node):
                constraint = instance.list_for(edge)
                forbidden.update(lab for lab in constraint.fixed if isinstance(lab, int))
                other = semigraph.other_endpoint(edge, node)
                if other is not None and other in chosen:
                    forbidden.add(chosen[other])
            colour = 1
            while colour in forbidden:
                colour += 1
            if colour > semigraph.degree(node) + 1:
                raise SequentialSolverError(
                    f"node {node!r} needs colour {colour} > deg+1 = "
                    f"{semigraph.degree(node) + 1}"
                )
            chosen[node] = colour
            for edge in semigraph.incident_edges(node):
                labeling.assign(HalfEdge(node, edge), colour)
        return labeling


# ----------------------------------------------------------------------
# Generic backtracking solver (cross-check on small components)
# ----------------------------------------------------------------------
class BacktrackingListSolver:
    """Exhaustive search over a finite candidate label set.

    Works for both list variants.  The search assigns labels half-edge by
    half-edge and checks a node or edge constraint as soon as all of its
    half-edges are labeled.  Exponential in the component size — intended
    only for small components, e.g. as an independent correctness oracle in
    tests.
    """

    def __init__(self, candidate_labels: Iterable[Any]) -> None:
        self.candidate_labels = list(candidate_labels)

    # -- public API ----------------------------------------------------
    def solve_node_list(self, instance: NodeListInstance) -> HalfEdgeLabeling:
        """Solve a ``Π*`` instance by exhaustive search."""
        return self._search(
            instance.semigraph,
            node_check=lambda node, labels: instance.list_for(node).allows(labels),
            edge_check=lambda edge, labels: instance.problem.edge_config_ok(
                labels, instance.semigraph.rank(edge)
            ),
        )

    def solve_edge_list(self, instance: EdgeListInstance) -> HalfEdgeLabeling:
        """Solve a ``Π×`` instance by exhaustive search."""
        return self._search(
            instance.semigraph,
            node_check=lambda node, labels: instance.problem.node_config_ok(labels),
            edge_check=lambda edge, labels: instance.list_for(edge).allows(labels),
        )

    # -- implementation --------------------------------------------------
    def _search(
        self,
        semigraph: SemiGraph,
        node_check: Callable[[Any, tuple], bool],
        edge_check: Callable[[Any, tuple], bool],
    ) -> HalfEdgeLabeling:
        half_edges = sorted(semigraph.half_edges(), key=repr)
        assignment: dict[HalfEdge, Any] = {}

        def config(half_edge_list: list[HalfEdge]) -> tuple | None:
            labels = []
            for h in half_edge_list:
                if h not in assignment:
                    return None
                labels.append(assignment[h])
            return tuple(sorted(labels, key=lambda lab: (type(lab).__name__, repr(lab))))

        def consistent(last: HalfEdge) -> bool:
            node_labels = config(semigraph.half_edges_of_node(last.node))
            if node_labels is not None and not node_check(last.node, node_labels):
                return False
            edge_labels = config(semigraph.half_edges_of_edge(last.edge))
            if edge_labels is not None and not edge_check(last.edge, edge_labels):
                return False
            return True

        def backtrack(index: int) -> bool:
            if index == len(half_edges):
                return True
            half_edge = half_edges[index]
            for label in self.candidate_labels:
                assignment[half_edge] = label
                if consistent(half_edge) and backtrack(index + 1):
                    return True
                del assignment[half_edge]
            return False

        if not backtrack(0):
            raise SequentialSolverError(
                "the backtracking solver found no valid completion"
            )
        return HalfEdgeLabeling(assignment)


# ----------------------------------------------------------------------
# Default solver selection
# ----------------------------------------------------------------------
_NODE_LIST_SOLVERS = {
    "(edge-degree+1)-edge-coloring": EdgeColoringNodeListSolver,
    "maximal-matching": MatchingNodeListSolver,
}
_EDGE_LIST_SOLVERS = {
    "maximal-independent-set": MISEdgeListSolver,
    "(deg+1)-coloring": ColoringEdgeListSolver,
}


def default_node_list_solver(problem) -> Any:
    """The registered sequential ``Π*`` solver for ``problem``."""
    try:
        return _NODE_LIST_SOLVERS[problem.name]()
    except KeyError as error:
        raise SequentialSolverError(
            f"no node-list solver registered for problem {problem.name!r}"
        ) from error


def default_edge_list_solver(problem) -> Any:
    """The registered sequential ``Π×`` solver for ``problem``."""
    if problem.name in _EDGE_LIST_SOLVERS:
        return _EDGE_LIST_SOLVERS[problem.name]()
    if problem.name.endswith(")-coloring") and "deg" not in problem.name:
        # (Δ+1)-colouring instances reuse the greedy (deg+1) solver: its
        # colours never exceed deg+1 ≤ Δ+1.
        return ColoringEdgeListSolver()
    raise SequentialSolverError(
        f"no edge-list solver registered for problem {problem.name!r}"
    )
