"""The transformation of the paper: Theorems 12 and 15 as executable pipelines.

Both pipelines take

* a problem ``Π`` in node-edge-checkable form,
* a truly local algorithm ``A`` for ``Π`` (an adapter from
  :mod:`repro.baselines.adapters`), and
* a sequential solver for the relevant list variant of ``Π``,

and produce a complete half-edge labeling of the input graph together with
a per-phase round account.

:func:`solve_on_tree` implements Algorithm 2 / Theorem 12:

1. rake-and-compress the tree with cut-off ``k = g(n)``;
2. run ``A`` on the semi-graph ``T_C`` spanned by the compressed nodes
   (maximum underlying degree at most ``k`` by Lemma 10);
3. gather every connected component of the raked part ``T_R`` (diameter
   ``O(log_k n)`` by Lemma 11) at its highest node and solve the edge-list
   variant ``Π×`` there sequentially.

:func:`solve_on_bounded_arboricity` implements Algorithm 4 / Theorem 15:

1. run the Decomposition process with ``b = 2a`` and ``k = g(n)^ρ``;
2. run ``A`` on the semi-graph spanned by the typical edges (maximum degree
   at most ``k`` by Lemma 14);
3. for every star collection ``F_{i,j}`` in turn, gather each star at its
   centre and solve the node-list variant ``Π*`` there sequentially.

When an :class:`~repro.baselines.adapters.OracleCostModel` is supplied the
cut-off ``k`` is chosen from the model's complexity function and the
``A``-phase is *additionally* charged analytically (``f(k) + log* n``
rounds) — this is how the shape of Theorem 3 is reproduced without
reimplementing the [BBKO22b] black box (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.core.complexity import choose_k, log_star
from repro.core.interfaces import OracleCostModel, TrulyLocalAlgorithm
from repro.core.sequential import (
    default_edge_list_solver,
    default_node_list_solver,
)
from repro.decomposition import arboricity_decomposition, rake_and_compress
from repro.local import RoundLedger
from repro.obs import span
from repro.problems import verify_solution
from repro.problems.lists import build_edge_list_instance, build_node_list_instance
from repro.problems.verification import VerificationResult
from repro.semigraph import (
    HalfEdgeLabeling,
    SemiGraph,
    restrict_to_edges,
    restrict_to_nodes,
    semigraph_from_graph,
)
from repro.semigraph.builders import edge_id_for

#: Extra rounds charged per gathered component beyond twice its diameter
#: (one round to learn the component is complete, one to output).
GATHER_OVERHEAD = 2
#: Rounds charged per star collection ``F_{i,j}`` (gather the star at its
#: centre and broadcast the solution back — both single-hop).
ROUNDS_PER_STAR_COLLECTION = 2


def gather_and_solve_rounds(semigraph_part: SemiGraph) -> tuple[int, list[int]]:
    """The gather-and-solve round account of the sequential phases.

    Every connected component of ``semigraph_part`` is gathered at one
    node (its diameter in rounds, all components in parallel), solved
    there, and the solution is broadcast back — ``2 · max diameter``
    plus :data:`GATHER_OVERHEAD`, or 0 when there is nothing to gather.
    Returns the charged rounds and the per-component diameters (recorded
    in the transform's run details).  Shared with the experiment layer's
    sinkless-orientation and list-variant workload families so their
    round columns stay on the same account as the transforms.
    """
    diameters = [
        semigraph_part.component_diameter(component)
        for component in semigraph_part.connected_components()
    ]
    if not diameters:
        return 0, []
    return 2 * max(diameters) + GATHER_OVERHEAD, diameters


@dataclass
class TransformResult:
    """The outcome of one transformed run."""

    problem_name: str
    n: int
    k: int
    labeling: HalfEdgeLabeling
    classic: Any
    ledger: RoundLedger
    verification: VerificationResult
    decomposition: Any
    algorithm_rounds_measured: int
    algorithm_rounds_charged: int | None = None
    details: dict = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Total measured rounds across all phases."""
        return self.ledger.total

    @property
    def charged_rounds(self) -> int | None:
        """Total rounds with the A-phase replaced by the analytic charge.

        ``None`` when no cost model was supplied.
        """
        if self.algorithm_rounds_charged is None:
            return None
        return (
            self.ledger.total
            - self.algorithm_rounds_measured
            + self.algorithm_rounds_charged
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformResult(problem={self.problem_name!r}, n={self.n}, k={self.k}, "
            f"rounds={self.rounds}, valid={bool(self.verification)})"
        )


# ----------------------------------------------------------------------
# Theorem 12: node problems on trees
# ----------------------------------------------------------------------
def solve_on_tree(
    tree: nx.Graph,
    algorithm: TrulyLocalAlgorithm,
    edge_list_solver: Any | None = None,
    k: int | None = None,
    cost_model: OracleCostModel | None = None,
    verify: bool = True,
) -> TransformResult:
    """Solve ``algorithm.problem`` on a tree via the Theorem 12 pipeline."""
    problem = algorithm.problem
    if edge_list_solver is None:
        edge_list_solver = default_edge_list_solver(problem)
    n = tree.number_of_nodes()
    semigraph = semigraph_from_graph(tree)
    ledger = RoundLedger()

    if n == 0:
        labeling = HalfEdgeLabeling()
        return TransformResult(
            problem.name, 0, 0, labeling, None, ledger,
            VerificationResult(ok=True), None, 0,
        )

    complexity = cost_model.complexity if cost_model is not None else algorithm.complexity
    if k is None:
        k = choose_k(complexity, n, rho=1, minimum=2)

    decomposition = rake_and_compress(tree, k)
    ledger.charge("decomposition", decomposition.rounds)

    compressed = decomposition.compressed_nodes
    raked = decomposition.raked_nodes

    labeling_compressed = HalfEdgeLabeling()
    algorithm_rounds = 0
    compressed_degree = 0
    if compressed:
        semigraph_compressed = restrict_to_nodes(semigraph, compressed)
        compressed_degree = semigraph_compressed.underlying_degree()
        labeling_compressed, algorithm_rounds = algorithm.solve_semigraph(
            semigraph_compressed
        )
        ledger.charge("truly-local algorithm A", algorithm_rounds)

    charged = None
    if cost_model is not None:
        charged = cost_model.charged_rounds(max(compressed_degree, 1), n)

    component_diameters: list[int] = []
    labeling_raked = HalfEdgeLabeling()
    if raked:
        semigraph_raked = restrict_to_nodes(semigraph, raked)
        instance = build_edge_list_instance(
            problem, semigraph, semigraph_raked, labeling_compressed
        )
        labeling_raked = edge_list_solver.solve(instance)
        gather_rounds, component_diameters = gather_and_solve_rounds(semigraph_raked)
        ledger.charge_max("raked components (gather & solve)", gather_rounds)

    labeling = labeling_compressed.merge(labeling_raked)
    if verify:
        with span("verify"):
            verification = verify_solution(problem, semigraph, labeling)
    else:
        verification = VerificationResult(ok=True)
    classic = problem.to_classic(semigraph, labeling) if verification.ok else None

    return TransformResult(
        problem_name=problem.name,
        n=n,
        k=k,
        labeling=labeling,
        classic=classic,
        ledger=ledger,
        verification=verification,
        decomposition=decomposition,
        algorithm_rounds_measured=algorithm_rounds,
        algorithm_rounds_charged=charged,
        details={
            "compressed_nodes": len(compressed),
            "raked_nodes": len(raked),
            "compressed_underlying_degree": compressed_degree,
            "raked_component_diameters": component_diameters,
            "iterations": decomposition.iterations,
        },
    )


# ----------------------------------------------------------------------
# Theorem 15: edge problems on graphs of bounded arboricity
# ----------------------------------------------------------------------
def solve_on_bounded_arboricity(
    graph: nx.Graph,
    arboricity: int,
    algorithm: TrulyLocalAlgorithm,
    node_list_solver: Any | None = None,
    k: int | None = None,
    rho: int = 2,
    cost_model: OracleCostModel | None = None,
    verify: bool = True,
) -> TransformResult:
    """Solve ``algorithm.problem`` on a bounded-arboricity graph via Theorem 15.

    For trees pass ``arboricity=1`` — this yields the Theorem 3 pipeline.
    """
    problem = algorithm.problem
    if node_list_solver is None:
        node_list_solver = default_node_list_solver(problem)
    n = graph.number_of_nodes()
    semigraph = semigraph_from_graph(graph)
    ledger = RoundLedger()

    if n == 0:
        labeling = HalfEdgeLabeling()
        return TransformResult(
            problem.name, 0, 0, labeling, None, ledger,
            VerificationResult(ok=True), None, 0,
        )

    complexity = cost_model.complexity if cost_model is not None else algorithm.complexity
    if k is None:
        k = max(choose_k(complexity, n, rho=rho, minimum=2), 5 * arboricity)

    decomposition = arboricity_decomposition(graph, arboricity, k)
    ledger.charge("decomposition", decomposition.rounds)

    typical_ids = {edge_id_for(u, v) for u, v in decomposition.typical_edges}
    labeling_typical = HalfEdgeLabeling()
    algorithm_rounds = 0
    typical_degree = 0
    if typical_ids:
        semigraph_typical = restrict_to_edges(semigraph, typical_ids)
        typical_degree = semigraph_typical.underlying_degree()
        labeling_typical, algorithm_rounds = algorithm.solve_semigraph(semigraph_typical)
        ledger.charge("truly-local algorithm A", algorithm_rounds)

    charged = None
    if cost_model is not None:
        charged = cost_model.charged_rounds(max(typical_degree, 1), n)

    current = labeling_typical
    num_star_phases = 0
    for key in sorted(decomposition.star_collections):
        edges = decomposition.star_collections[key]
        if not edges:
            continue
        num_star_phases += 1
        star_ids = {edge_id_for(u, v) for u, v in edges}
        semigraph_stars = restrict_to_edges(semigraph, star_ids)
        instance = build_node_list_instance(problem, semigraph, semigraph_stars, current)
        labeling_stars = node_list_solver.solve(instance)
        current = current.merge(labeling_stars)
    # Algorithm 4 iterates over all 2a·3 star collections whether or not
    # they are empty; the phase cost is what the theorem's `a` term pays for.
    ledger.charge(
        "star collections (gather & solve)",
        ROUNDS_PER_STAR_COLLECTION * max(6 * arboricity, num_star_phases),
    )

    if verify:
        with span("verify"):
            verification = verify_solution(problem, semigraph, current)
    else:
        verification = VerificationResult(ok=True)
    classic = problem.to_classic(semigraph, current) if verification.ok else None

    return TransformResult(
        problem_name=problem.name,
        n=n,
        k=k,
        labeling=current,
        classic=classic,
        ledger=ledger,
        verification=verification,
        decomposition=decomposition,
        algorithm_rounds_measured=algorithm_rounds,
        algorithm_rounds_charged=charged,
        details={
            "typical_edges": len(decomposition.typical_edges),
            "atypical_edges": len(decomposition.atypical_edges),
            "typical_underlying_degree": typical_degree,
            "star_collections": len(decomposition.star_collections),
            "iterations": decomposition.iterations,
            "log_star_n": log_star(n),
            "rho": rho,
        },
    )
