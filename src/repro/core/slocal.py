"""The SLOCAL(1) sequential-local view of the problem classes P1 and P2.

The paper (Section 1.1) characterises the problems its transformation
applies to through the existence of *sequential 1-hop solvers*:

* class **P1** (node problems): there is a sequential algorithm that, given
  the nodes in an adversarial order, assigns the labels of all half-edges
  incident on the current node while looking only at the node's 1-hop
  neighbourhood (including the outputs already committed there) — and this
  still works when the instance comes with a correct partial solution;
* class **P2** (edge problems): the same with edges in place of nodes and
  the 1-hop edge neighbourhood.

This module makes those definitions executable: :func:`solve_node_sequential`
and :func:`solve_edge_sequential` drive an oracle over an arbitrary
processing order while exposing only the local view the definition allows
(:class:`NodeView` / :class:`EdgeView`), and the provided oracles realise
the membership of MIS, (deg+1)-colouring (P1) and maximal matching,
(edge-degree+1)-edge colouring (P2).  The test-suite exercises them under
adversarial (randomised) orders and on partially solved instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.problems import DUMMY
from repro.problems.base import NodeEdgeCheckableProblem
from repro.problems.matching import MATCHED, POINTER as MATCH_POINTER, UNMATCHED
from repro.problems.mis import IN_MIS, OUT, POINTER as MIS_POINTER
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import EdgeId, HalfEdge, NodeId


class SLocalError(RuntimeError):
    """Raised when an oracle returns labels inconsistent with its local view."""


# ----------------------------------------------------------------------
# Local views
# ----------------------------------------------------------------------
@dataclass
class NodeView:
    """The 1-hop view available when a node is processed (class P1)."""

    node: NodeId
    semigraph: SemiGraph
    labeling: HalfEdgeLabeling

    def incident_edges(self) -> list[EdgeId]:
        """The edges incident on the processed node, in a deterministic order."""
        return sorted(self.semigraph.incident_edges(self.node), key=repr)

    def rank(self, edge: EdgeId) -> int:
        """The rank of an incident edge."""
        return self.semigraph.rank(edge)

    def neighbor(self, edge: EdgeId) -> NodeId | None:
        """The other endpoint of an incident rank-2 edge (``None`` otherwise)."""
        return self.semigraph.other_endpoint(edge, self.node)

    def label_across(self, edge: EdgeId) -> Any:
        """The label already committed on the far half-edge of ``edge`` (or ``None``)."""
        other = self.neighbor(edge)
        if other is None:
            return None
        return self.labeling.get(HalfEdge(other, edge))

    def neighbor_labels(self, neighbor: NodeId) -> list[Any]:
        """All labels already committed on the half-edges of a neighbour."""
        return [
            self.labeling[h]
            for h in self.semigraph.half_edges_of_node(neighbor)
            if self.labeling.is_labeled(h)
        ]


@dataclass
class EdgeView:
    """The 1-hop edge view available when an edge is processed (class P2)."""

    edge: EdgeId
    semigraph: SemiGraph
    labeling: HalfEdgeLabeling

    def endpoints(self) -> tuple:
        """The processed edge's endpoints."""
        return self.semigraph.endpoints(self.edge)

    def rank(self) -> int:
        """The processed edge's rank."""
        return self.semigraph.rank(self.edge)

    def endpoint_labels(self, node: NodeId) -> list[Any]:
        """Labels already committed on the half-edges of an endpoint."""
        return [
            self.labeling[h]
            for h in self.semigraph.half_edges_of_node(node)
            if self.labeling.is_labeled(h) and h.edge != self.edge
        ]

    def adjacent_edge_labels(self) -> list[Any]:
        """Labels already committed on half-edges of adjacent edges."""
        labels = []
        for node in self.endpoints():
            labels.extend(self.endpoint_labels(node))
        return labels


NodeOracle = Callable[[NodeView], Mapping[EdgeId, Any]]
EdgeOracle = Callable[[EdgeView], Mapping[NodeId, Any]]


# ----------------------------------------------------------------------
# Sequential drivers
# ----------------------------------------------------------------------
def solve_node_sequential(
    semigraph: SemiGraph,
    oracle: NodeOracle,
    order: Iterable[NodeId] | None = None,
    partial: HalfEdgeLabeling | None = None,
) -> HalfEdgeLabeling:
    """Run a P1-style sequential 1-hop solver.

    Nodes are processed in ``order`` (default: a deterministic order); for
    each node the oracle must return a label for every incident half-edge
    that is not already labeled by ``partial``.
    """
    labeling = partial.copy() if partial is not None else HalfEdgeLabeling()
    nodes = list(order) if order is not None else sorted(semigraph.nodes, key=repr)
    if set(nodes) != set(semigraph.nodes):
        raise ValueError("the processing order must cover every node exactly once")
    for node in nodes:
        view = NodeView(node, semigraph, labeling)
        decisions = oracle(view)
        for edge in semigraph.incident_edges(node):
            half_edge = HalfEdge(node, edge)
            if labeling.is_labeled(half_edge):
                continue
            if edge not in decisions:
                raise SLocalError(
                    f"oracle left half-edge {half_edge!r} unlabeled at node {node!r}"
                )
            labeling.assign(half_edge, decisions[edge])
    return labeling


def solve_edge_sequential(
    semigraph: SemiGraph,
    oracle: EdgeOracle,
    order: Iterable[EdgeId] | None = None,
    partial: HalfEdgeLabeling | None = None,
) -> HalfEdgeLabeling:
    """Run a P2-style sequential 1-hop solver (edges processed one at a time)."""
    labeling = partial.copy() if partial is not None else HalfEdgeLabeling()
    edges = list(order) if order is not None else sorted(semigraph.edges, key=repr)
    if set(edges) != set(semigraph.edges):
        raise ValueError("the processing order must cover every edge exactly once")
    for edge in edges:
        view = EdgeView(edge, semigraph, labeling)
        decisions = oracle(view)
        for node in semigraph.endpoints(edge):
            half_edge = HalfEdge(node, edge)
            if labeling.is_labeled(half_edge):
                continue
            if node not in decisions:
                raise SLocalError(
                    f"oracle left half-edge {half_edge!r} unlabeled at edge {edge!r}"
                )
            labeling.assign(half_edge, decisions[node])
    return labeling


# ----------------------------------------------------------------------
# P1 oracles
# ----------------------------------------------------------------------
def mis_oracle(view: NodeView) -> dict[EdgeId, Any]:
    """Greedy MIS membership decision from the 1-hop view."""
    blocking = []
    for edge in view.incident_edges():
        across = view.label_across(edge)
        if across == IN_MIS:
            blocking.append(edge)
    decisions: dict[EdgeId, Any] = {}
    if not blocking:
        for edge in view.incident_edges():
            decisions[edge] = IN_MIS
    else:
        pointer = min(blocking, key=repr)
        for edge in view.incident_edges():
            decisions[edge] = MIS_POINTER if edge == pointer else OUT
    return decisions


def coloring_oracle(view: NodeView) -> dict[EdgeId, Any]:
    """Greedy (deg+1)-colouring decision from the 1-hop view."""
    forbidden = set()
    for edge in view.incident_edges():
        across = view.label_across(edge)
        if isinstance(across, int):
            forbidden.add(across)
    colour = 1
    while colour in forbidden:
        colour += 1
    return {edge: colour for edge in view.incident_edges()}


# ----------------------------------------------------------------------
# P2 oracles
# ----------------------------------------------------------------------
def matching_oracle(view: EdgeView) -> dict[NodeId, Any]:
    """The Lemma 17 decision rule from the 1-hop edge view."""
    if view.rank() < 2:
        return {node: DUMMY for node in view.endpoints()}
    first, second = view.endpoints()
    matched = {
        node: MATCHED in view.endpoint_labels(node) for node in (first, second)
    }
    if not matched[first] and not matched[second]:
        return {first: MATCHED, second: MATCHED}
    if matched[first] and matched[second]:
        return {first: MATCH_POINTER, second: MATCH_POINTER}
    if matched[first]:
        return {first: MATCH_POINTER, second: UNMATCHED}
    return {first: UNMATCHED, second: MATCH_POINTER}


def edge_coloring_oracle(view: EdgeView) -> dict[NodeId, Any]:
    """The Lemma 16 decision rule from the 1-hop edge view."""
    if view.rank() < 2:
        return {node: DUMMY for node in view.endpoints()}
    first, second = view.endpoints()
    labels_first = [lab for lab in view.endpoint_labels(first) if lab != DUMMY]
    labels_second = [lab for lab in view.endpoint_labels(second) if lab != DUMMY]
    used = {lab[1] for lab in labels_first + labels_second if isinstance(lab, tuple)}
    budget = len(labels_first) + len(labels_second) + 1
    colour = next(c for c in range(1, budget + 1) if c not in used)
    return {
        first: (len(labels_first) + 1, colour),
        second: (len(labels_second) + 1, colour),
    }


#: The P1 / P2 membership witnesses shipped with this reproduction.
P1_ORACLES: dict[str, NodeOracle] = {
    "maximal-independent-set": mis_oracle,
    "(deg+1)-coloring": coloring_oracle,
}
P2_ORACLES: dict[str, EdgeOracle] = {
    "maximal-matching": matching_oracle,
    "(edge-degree+1)-edge-coloring": edge_coloring_oracle,
}


def membership_class(problem: NodeEdgeCheckableProblem) -> str | None:
    """Which class (``"P1"`` / ``"P2"``) this reproduction has a witness for."""
    if problem.name in P1_ORACLES:
        return "P1"
    if problem.name in P2_ORACLES:
        return "P2"
    return None
