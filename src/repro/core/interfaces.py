"""Interfaces between the transformation and the truly local algorithms.

The transformation only needs two things from the algorithm ``A`` it is
given: a way to run it on a semi-graph and its declared complexity function
``f`` (used to choose the cut-off ``k = g(n)``).  Keeping the interface in
:mod:`repro.core` lets the concrete implementations live in
:mod:`repro.baselines` without creating an import cycle.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.complexity import ComplexityFunction, log_star
from repro.problems.base import NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph


class TrulyLocalAlgorithm(ABC):
    """An algorithm for ``Π`` on semi-graphs with runtime ``O(f(Δ) + log* n)``."""

    #: The problem the algorithm solves.
    problem: NodeEdgeCheckableProblem
    #: The declared complexity function ``f``.
    complexity: ComplexityFunction
    #: Human-readable name used in experiment reports.
    name: str = "abstract"

    @abstractmethod
    def solve_semigraph(self, semigraph: SemiGraph) -> tuple[HalfEdgeLabeling, int]:
        """Solve ``Π`` on ``semigraph``; returns ``(labeling, rounds used)``."""


@dataclass(frozen=True)
class OracleCostModel:
    """An analytic cost model for a black-box algorithm that is not reimplemented.

    Used to reproduce the *shape* of Theorem 3: the transformation picks
    its cut-off ``k`` from this model's complexity function (for instance
    ``f(Δ) = log^{12} Δ`` for the [BBKO22b] edge colouring) and charges
    ``f(Δ) + log* n`` rounds for the black-box phase, while the
    decomposition phases remain measured on the real instance.
    """

    name: str
    complexity: ComplexityFunction

    def charged_rounds(self, max_degree: int, n: int) -> int:
        """The rounds charged for running the black box on degree ``max_degree``.

        The complexity value is rounded to the nearest integer with
        Python's banker's rounding (``round``: halves go to the even
        neighbour, so 2.5 charges 2 rounds and 3.5 charges 4) before the
        ``log* n`` term is added.  A complexity function that returns a
        negative or non-finite value is a broken model, not a free black
        box — it is rejected here rather than silently truncated into a
        bogus round count.
        """
        degree = max(max_degree, 1)
        value = float(self.complexity(degree))
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"cost model {self.name!r}: complexity {self.complexity.name!r} "
                f"returned {value!r} for degree {degree}; charged rounds require "
                f"a finite, non-negative complexity value"
            )
        return int(round(value)) + log_star(max(n, 2))
