"""Measurement records, table formatting and growth-curve fitting.

The experiment harness (``benchmarks/``) produces per-instance
:class:`Measurement` records; this package turns them into the text tables
recorded in EXPERIMENTS.md and fits simple growth models (``log n``,
``log n / log log n``, ``log^β n``) to measured round counts so that the
*shape* claims of the paper can be checked quantitatively.
"""

from repro.analysis.measurement import (
    Measurement,
    MeasurementTable,
    measurements_from_csv,
    measurements_to_csv,
)
from repro.analysis.curves import fit_power_of_log, growth_exponent

__all__ = [
    "Measurement",
    "MeasurementTable",
    "measurements_to_csv",
    "measurements_from_csv",
    "fit_power_of_log",
    "growth_exponent",
]
