"""Simple growth-curve fits used to check the paper's shape claims.

The key quantitative claim of Theorem 3 is that the transformed edge
colouring runs in ``O(log^{12/13} n)`` rounds, i.e. in ``O(log^β n)``
rounds for a constant ``β < 1`` ("strongly sublogarithmic"), while MIS and
maximal matching are stuck at ``Θ(log n / log log n)``.  The fits below
estimate ``β`` from measured or predicted round counts.
"""

from __future__ import annotations

import math
from typing import Sequence


def fit_power_of_log(ns: Sequence[float], values: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``value ≈ c · (log₂ n)^β``.

    Returns ``(beta, c)``.  Points with ``n ≤ 2`` or non-positive values
    are ignored; if fewer than two points survive, the raised
    ``ValueError`` names exactly which ``(n, value)`` pairs were dropped
    and why.
    """
    xs, ys = [], []
    dropped: list[tuple[float, float]] = []
    for n, value in zip(ns, values):
        if n > 2 and value > 0:
            xs.append(math.log(math.log2(n)))
            ys.append(math.log(value))
        else:
            dropped.append((n, value))
    if len(xs) < 2:
        detail = (
            f" dropped {len(dropped)} point(s) with n <= 2 or value <= 0: "
            + ", ".join(f"(n={n!r}, value={value!r})" for n, value in dropped)
            if dropped
            else f" received only {len(xs)} point(s) in total"
        )
        raise ValueError(
            "need at least two usable data points to fit a curve "
            f"(kept {len(xs)} of {len(xs) + len(dropped)});{detail}"
        )
    # Closed-form one-dimensional least squares (what np.polyfit(deg=1)
    # computes) — kept numpy-free so the analysis layer, and everything
    # that imports it, stays usable on an interpreted-only stack.
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0.0:
        raise ValueError(
            "cannot fit a curve: all points share one n "
            f"(log log₂ n = {mean_x!r})"
        )
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / variance
    intercept = mean_y - slope * mean_x
    return float(slope), float(math.exp(intercept))


def growth_exponent(ns: Sequence[float], values: Sequence[float]) -> float:
    """The fitted exponent ``β`` of ``value ≈ c · (log₂ n)^β``."""
    beta, _ = fit_power_of_log(ns, values)
    return beta
