"""Measurement records and result tables (text, JSON and CSV)."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class Measurement:
    """One measured data point of an experiment."""

    experiment: str
    instance: str
    n: int
    value: float
    unit: str = "rounds"
    extras: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "instance": self.instance,
            "n": self.n,
            "value": self.value,
            "unit": self.unit,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Measurement":
        return cls(
            experiment=payload["experiment"],
            instance=payload["instance"],
            n=payload["n"],
            value=payload["value"],
            unit=payload.get("unit", "rounds"),
            extras=dict(payload.get("extras", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Measurement":
        return cls.from_dict(json.loads(text))


def measurements_to_csv(measurements: Iterable[Measurement]) -> str:
    """Render measurements as CSV; ``extras`` travel as one JSON column."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["experiment", "instance", "n", "value", "unit", "extras"])
    for measurement in measurements:
        writer.writerow([
            measurement.experiment,
            measurement.instance,
            measurement.n,
            measurement.value,
            measurement.unit,
            json.dumps(measurement.extras, sort_keys=True),
        ])
    return buffer.getvalue()


def measurements_from_csv(text: str) -> list[Measurement]:
    """Parse the CSV produced by :func:`measurements_to_csv`."""
    reader = csv.DictReader(io.StringIO(text))
    measurements = []
    for row in reader:
        measurements.append(Measurement(
            experiment=row["experiment"],
            instance=row["instance"],
            n=int(row["n"]),
            value=float(row["value"]),
            unit=row["unit"],
            extras=json.loads(row["extras"]) if row.get("extras") else {},
        ))
    return measurements


class MeasurementTable:
    """An ordered collection of measurements, printable as a text table."""

    def __init__(self, title: str, columns: Iterable[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[Any]] = []

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [self.columns] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(str(row[index])) for row in cells) for index in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(
            str(cell).ljust(widths[index]) for index, cell in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """The table as a JSON document: title, columns and raw rows."""
        return json.dumps(
            {"title": self.title, "columns": self.columns, "rows": self.rows},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MeasurementTable":
        payload = json.loads(text)
        table = cls(payload["title"], payload["columns"])
        for row in payload["rows"]:
            table.add_row(*row)
        return table

    def to_csv(self) -> str:
        """The table as CSV (header row = columns; the title is not encoded)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str, title: str = "") -> "MeasurementTable":
        """Parse CSV back into a table, recovering ints and floats.

        CSV stringifies every value; numeric-looking cells are converted
        back (int first, then float), everything else stays a string.
        """
        reader = csv.reader(io.StringIO(text))
        rows = [row for row in reader if row]
        if not rows:
            raise ValueError("cannot build a MeasurementTable from empty CSV")
        table = cls(title, rows[0])
        for row in rows[1:]:
            table.add_row(*[_parse_cell(cell) for cell in row])
        return table

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _parse_cell(cell: str) -> Any:
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell
