"""Measurement records and plain-text result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class Measurement:
    """One measured data point of an experiment."""

    experiment: str
    instance: str
    n: int
    value: float
    unit: str = "rounds"
    extras: dict[str, Any] = field(default_factory=dict)


class MeasurementTable:
    """An ordered collection of measurements, printable as a text table."""

    def __init__(self, title: str, columns: Iterable[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[Any]] = []

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [self.columns] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(str(row[index])) for row in cells) for index in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(
            str(cell).ljust(widths[index]) for index, cell in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
