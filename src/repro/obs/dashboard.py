"""Static HTML dashboard: report bundle tables + scraped metrics.

``render_dashboard`` takes the pieces the ``dashboard`` CLI subcommand
gathers — an optional :class:`~repro.experiments.report.ReportBundle`
(duck-typed: anything with ``scaling`` / ``fits`` / ``scenario_tables``
tables, ``theorem3_beta`` and ``all_verified``) and an optional
Prometheus exposition string — and emits one self-contained HTML page.
CI uploads it as the ``dashboard`` artifact.

Everything is a stat tile or a table, no charts: the quantities here
(verdicts, fits, per-size means, counter totals, histogram quantiles)
are headline numbers and enumerable rows, which read better as text
than as marks.  Status is always icon + label, never colour alone; text
stays in the ink tokens; dark mode derives from ``prefers-color-scheme``.
Every interpolated value is HTML-escaped.
"""

from __future__ import annotations

import html
import math
from typing import Any, Sequence

from repro.obs.metrics import Sample, histogram_quantile, parse_exposition
from repro.obs.slo import DEFAULT_SLOS, SLOResult, evaluate_slos

__all__ = ["render_dashboard"]

_STYLE = """
:root {
  --surface: #ffffff; --panel: #f6f7f9; --border: #d9dce1;
  --ink: #1a1c1f; --ink-2: #4b5058; --ink-3: #788089;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #16181c; --panel: #1f2228; --border: #363b43;
    --ink: #e8eaed; --ink-2: #aeb4bc; --ink-3: #7f868f;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--ink); }
.subtitle { color: var(--ink-3); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 22px; font-weight: 600; margin-top: 2px; }
.tile .note { color: var(--ink-3); font-size: 12px; margin-top: 2px; }
table {
  border-collapse: collapse; margin: 8px 0 16px; background: var(--panel);
  border: 1px solid var(--border); border-radius: 8px; overflow: hidden;
}
caption {
  text-align: left; color: var(--ink-2); font-size: 13px; padding: 8px 10px 4px;
  caption-side: top;
}
th, td {
  padding: 5px 12px; text-align: left; font-variant-numeric: tabular-nums;
  border-top: 1px solid var(--border);
}
th { color: var(--ink-2); font-weight: 600; border-top: none; font-size: 13px; }
details { margin: 12px 0; }
summary { cursor: pointer; color: var(--ink-2); }
pre {
  background: var(--panel); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px; overflow-x: auto; font-size: 12px; color: var(--ink-2);
}
.status { white-space: nowrap; }
.muted { color: var(--ink-3); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _status(ok: bool, ok_text: str, bad_text: str) -> str:
    """Icon + label, never colour alone."""
    icon, text = ("✓", ok_text) if ok else ("✗", bad_text)
    return f'<span class="status">{icon} {_esc(text)}</span>'


def _tile(label: str, value: str, note: str = "", raw_value: bool = False) -> str:
    value_html = value if raw_value else _esc(value)
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{value_html}</div>{note_html}</div>'
    )


def _table_html(table: Any) -> str:
    """A MeasurementTable (duck-typed: title/columns/rows) as HTML."""
    head = "".join(f"<th>{_esc(column)}</th>" for column in table.columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in table.rows
    )
    return (
        f"<table><caption>{_esc(table.title)}</caption>"
        f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def _rows_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A table from pre-escaped-or-escapable plain rows."""
    head = "".join(f"<th>{_esc(column)}</th>" for column in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (
        f"<table><caption>{_esc(title)}</caption>"
        f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def _format_number(value: float) -> str:
    if value != value or value in (math.inf, -math.inf):
        return str(value)
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return f"{value:.6g}"


def _label_text(sample: Sample, skip: tuple[str, ...] = ()) -> str:
    pairs = [f"{k}={v}" for k, v in sample.labels if k not in skip]
    return ", ".join(pairs) if pairs else "—"


def _metrics_section(metrics_text: str) -> tuple[str, list[SLOResult]]:
    samples = parse_exposition(metrics_text)
    slo_results = evaluate_slos(samples, DEFAULT_SLOS)

    slo_rows = []
    for slo, result in zip(DEFAULT_SLOS, slo_results):
        slo_rows.append([
            _esc(result.name),
            _status(result.ok, "ok", "BURNING"),
            _esc(slo.description),
            _esc(result.detail),
        ])
    parts = [
        "<h2>Service-level objectives</h2>",
        _rows_table(
            "One row per objective, evaluated over this scrape",
            ["objective", "status", "description", "detail"],
            slo_rows,
        ),
    ]

    # Split samples into scalar families and histogram families.
    histogram_names = {
        sample.name[: -len("_bucket")]
        for sample in samples
        if sample.name.endswith("_bucket") and sample.label("le") is not None
    }
    scalar_rows = []
    for sample in samples:
        base = sample.name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in histogram_names:
                base = None
                break
        if base is None:
            continue
        scalar_rows.append([
            _esc(sample.name),
            _esc(_label_text(sample)),
            _esc(_format_number(sample.value)),
        ])
    if scalar_rows:
        parts.append("<h2>Counters and gauges</h2>")
        parts.append(_rows_table(
            "Every scalar sample in the scrape",
            ["metric", "labels", "value"],
            scalar_rows,
        ))

    histogram_rows = []
    for name in sorted(histogram_names):
        # Group buckets by the non-le label set.
        by_labels: dict[tuple, dict[float, float]] = {}
        counts: dict[tuple, float] = {}
        sums: dict[tuple, float] = {}
        for sample in samples:
            key = tuple((k, v) for k, v in sample.labels if k != "le")
            if sample.name == name + "_bucket":
                le = sample.label("le")
                bound = math.inf if le == "+Inf" else float(le)
                by_labels.setdefault(key, {})[bound] = sample.value
            elif sample.name == name + "_count":
                counts[key] = sample.value
            elif sample.name == name + "_sum":
                sums[key] = sample.value
        for key in sorted(by_labels):
            buckets = by_labels[key]
            quantiles = [
                histogram_quantile(q, buckets.items()) for q in (0.5, 0.9, 0.99)
            ]
            histogram_rows.append([
                _esc(name),
                _esc(", ".join(f"{k}={v}" for k, v in key) or "—"),
                _esc(_format_number(counts.get(key, 0.0))),
                _esc(_format_number(sums.get(key, 0.0))),
                *(
                    _esc(_format_number(q)) if q is not None
                    else '<span class="muted">—</span>'
                    for q in quantiles
                ),
            ])
    if histogram_rows:
        parts.append("<h2>Latency and size distributions</h2>")
        parts.append(_rows_table(
            "Histogram families with estimated quantiles (linear interpolation)",
            ["histogram", "labels", "count", "sum", "p50", "p90", "p99"],
            histogram_rows,
        ))

    parts.append(
        "<details><summary>Raw Prometheus exposition</summary>"
        f"<pre>{_esc(metrics_text)}</pre></details>"
    )
    return "".join(parts), slo_results


def render_dashboard(
    bundle: Any | None = None,
    metrics_text: str | None = None,
    title: str = "Sweep observability dashboard",
) -> str:
    """One self-contained HTML page from a report bundle and/or a scrape."""
    tiles: list[str] = []
    sections: list[str] = []

    if bundle is not None:
        tiles.append(_tile(
            "All cells verified",
            _status(bundle.all_verified, "yes", "NO"),
            raw_value=True,
        ))
        if bundle.theorem3_beta is not None:
            ok = bundle.theorem3_beta < 1
            tiles.append(_tile(
                "Theorem 3 shape β",
                f"{bundle.theorem3_beta:.3f}",
                note="sublogarithmic (β < 1)" if ok else "β ≥ 1",
            ))
        tiles.append(_tile("Scenarios", str(len(bundle.summaries))))
        sections.append("<h2>Scaling</h2>")
        sections.append(_table_html(bundle.scaling))
        sections.append(_table_html(bundle.fits))
        sections.append("<h2>Per-scenario detail</h2>")
        sections.extend(_table_html(table) for table in bundle.scenario_tables)

    if metrics_text:
        metrics_html, slo_results = _metrics_section(metrics_text)
        burning = [result for result in slo_results if not result.ok]
        tiles.insert(0, _tile(
            "SLOs",
            _status(not burning, "all ok", f"{len(burning)} burning"),
            note=f"{len(slo_results)} objectives evaluated",
            raw_value=True,
        ))
        sections.append(metrics_html)

    if not tiles and not sections:
        sections.append('<p class="muted">Nothing to show: no report bundle '
                        "and no metrics scrape were provided.</p>")

    tiles_html = f'<div class="tiles">{"".join(tiles)}</div>' if tiles else ""
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<p class="subtitle">Static snapshot rendered by <code>repro.experiments dashboard</code>.</p>
{tiles_html}
{"".join(sections)}
</body>
</html>
"""
