"""Static HTML dashboards: report tables, scraped metrics, trends, diffs.

``render_dashboard`` takes the pieces the ``dashboard`` CLI subcommand
gathers — an optional :class:`~repro.experiments.report.ReportBundle`
(duck-typed: anything with ``scaling`` / ``fits`` / ``scenario_tables``
tables, ``theorem3_beta`` and ``all_verified``), an optional Prometheus
exposition string, and optional retained scrape history — and emits one
self-contained HTML page.  CI uploads it as the ``dashboard`` artifact.
With history the page gains inline-SVG sparklines (counter rates, gauge
values over the retained window) and the dual-window SLO burn table.

``render_metrics_diff`` (``dashboard --diff A.prom B.prom``) and
``render_bench_diff`` (``dashboard --diff-bench OLD.json NEW.json``)
are the cross-run views: per-metric deltas between two scrapes, and
per-(scenario, engine, n) wall-clock ratios between two canonical
``BENCH_*.json`` payloads with regressions highlighted — the page CI
uploads as the ``bench-diff`` artifact when gating a PR's bench run
against the committed trajectory.

Everything is a stat tile, a table, or a sparkline: the quantities here
(verdicts, fits, per-size means, counter totals, histogram quantiles)
are headline numbers and enumerable rows.  Status is always icon +
label, never colour alone; text stays in the ink tokens; dark mode
derives from ``prefers-color-scheme``.  Every interpolated value is
HTML-escaped; sparkline geometry is numeric and needs none.
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.obs.metrics import (
    Sample,
    histogram_quantile,
    parse_exposition,
    parse_exposition_types,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLOResult,
    evaluate_slos,
    evaluate_slos_windowed,
)
from repro.obs.timeseries import ScrapePoint, points_in_window

__all__ = [
    "BenchDiff",
    "BenchEntryDiff",
    "diff_bench_payloads",
    "render_bench_diff",
    "render_dashboard",
    "render_metrics_diff",
]

_STYLE = """
:root {
  --surface: #ffffff; --panel: #f6f7f9; --border: #d9dce1;
  --ink: #1a1c1f; --ink-2: #4b5058; --ink-3: #788089;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #16181c; --panel: #1f2228; --border: #363b43;
    --ink: #e8eaed; --ink-2: #aeb4bc; --ink-3: #7f868f;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--ink); }
.subtitle { color: var(--ink-3); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 22px; font-weight: 600; margin-top: 2px; }
.tile .note { color: var(--ink-3); font-size: 12px; margin-top: 2px; }
table {
  border-collapse: collapse; margin: 8px 0 16px; background: var(--panel);
  border: 1px solid var(--border); border-radius: 8px; overflow: hidden;
}
caption {
  text-align: left; color: var(--ink-2); font-size: 13px; padding: 8px 10px 4px;
  caption-side: top;
}
th, td {
  padding: 5px 12px; text-align: left; font-variant-numeric: tabular-nums;
  border-top: 1px solid var(--border);
}
th { color: var(--ink-2); font-weight: 600; border-top: none; font-size: 13px; }
details { margin: 12px 0; }
summary { cursor: pointer; color: var(--ink-2); }
pre {
  background: var(--panel); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px; overflow-x: auto; font-size: 12px; color: var(--ink-2);
}
.status { white-space: nowrap; }
.muted { color: var(--ink-3); }
.spark { color: var(--ink-2); vertical-align: middle; }
tr.regression td { font-weight: 600; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _status(ok: bool, ok_text: str, bad_text: str) -> str:
    """Icon + label, never colour alone."""
    icon, text = ("✓", ok_text) if ok else ("✗", bad_text)
    return f'<span class="status">{icon} {_esc(text)}</span>'


def _tile(label: str, value: str, note: str = "", raw_value: bool = False) -> str:
    value_html = value if raw_value else _esc(value)
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{value_html}</div>{note_html}</div>'
    )


def _table_html(table: Any) -> str:
    """A MeasurementTable (duck-typed: title/columns/rows) as HTML."""
    head = "".join(f"<th>{_esc(column)}</th>" for column in table.columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in table.rows
    )
    return (
        f"<table><caption>{_esc(table.title)}</caption>"
        f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def _rows_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    row_classes: Sequence[str | None] | None = None,
) -> str:
    """A table from pre-escaped-or-escapable plain rows."""
    head = "".join(f"<th>{_esc(column)}</th>" for column in columns)
    classes = row_classes if row_classes is not None else [None] * len(rows)
    body = "".join(
        (f'<tr class="{_esc(cls)}">' if cls else "<tr>")
        + "".join(f"<td>{cell}</td>" for cell in row)
        + "</tr>"
        for row, cls in zip(rows, classes)
    )
    return (
        f"<table><caption>{_esc(title)}</caption>"
        f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def _format_number(value: float) -> str:
    if value != value or value in (math.inf, -math.inf):
        return str(value)
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return f"{value:.6g}"


def _label_text(sample: Sample, skip: tuple[str, ...] = ()) -> str:
    pairs = [f"{k}={v}" for k, v in sample.labels if k not in skip]
    return ", ".join(pairs) if pairs else "—"


def _metrics_section(metrics_text: str) -> tuple[str, list[SLOResult]]:
    samples = parse_exposition(metrics_text)
    slo_results = evaluate_slos(samples, DEFAULT_SLOS)

    slo_rows = []
    for slo, result in zip(DEFAULT_SLOS, slo_results):
        slo_rows.append([
            _esc(result.name),
            _status(result.ok, "ok", "BURNING"),
            _esc(slo.description),
            _esc(result.detail),
        ])
    parts = [
        "<h2>Service-level objectives</h2>",
        _rows_table(
            "One row per objective, evaluated over this scrape",
            ["objective", "status", "description", "detail"],
            slo_rows,
        ),
    ]

    # Split samples into scalar families and histogram families.
    histogram_names = {
        sample.name[: -len("_bucket")]
        for sample in samples
        if sample.name.endswith("_bucket") and sample.label("le") is not None
    }
    scalar_rows = []
    for sample in samples:
        base = sample.name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in histogram_names:
                base = None
                break
        if base is None:
            continue
        scalar_rows.append([
            _esc(sample.name),
            _esc(_label_text(sample)),
            _esc(_format_number(sample.value)),
        ])
    if scalar_rows:
        parts.append("<h2>Counters and gauges</h2>")
        parts.append(_rows_table(
            "Every scalar sample in the scrape",
            ["metric", "labels", "value"],
            scalar_rows,
        ))

    histogram_rows = []
    for name in sorted(histogram_names):
        # Group buckets by the non-le label set.
        by_labels: dict[tuple, dict[float, float]] = {}
        counts: dict[tuple, float] = {}
        sums: dict[tuple, float] = {}
        for sample in samples:
            key = tuple((k, v) for k, v in sample.labels if k != "le")
            if sample.name == name + "_bucket":
                le = sample.label("le")
                bound = math.inf if le == "+Inf" else float(le)
                by_labels.setdefault(key, {})[bound] = sample.value
            elif sample.name == name + "_count":
                counts[key] = sample.value
            elif sample.name == name + "_sum":
                sums[key] = sample.value
        for key in sorted(by_labels):
            buckets = by_labels[key]
            quantiles = [
                histogram_quantile(q, buckets.items()) for q in (0.5, 0.9, 0.99)
            ]
            histogram_rows.append([
                _esc(name),
                _esc(", ".join(f"{k}={v}" for k, v in key) or "—"),
                _esc(_format_number(counts.get(key, 0.0))),
                _esc(_format_number(sums.get(key, 0.0))),
                *(
                    _esc(_format_number(q)) if q is not None
                    else '<span class="muted">—</span>'
                    for q in quantiles
                ),
            ])
    if histogram_rows:
        parts.append("<h2>Latency and size distributions</h2>")
        parts.append(_rows_table(
            "Histogram families with estimated quantiles (linear interpolation)",
            ["histogram", "labels", "count", "sum", "p50", "p90", "p99"],
            histogram_rows,
        ))

    parts.append(
        "<details><summary>Raw Prometheus exposition</summary>"
        f"<pre>{_esc(metrics_text)}</pre></details>"
    )
    return "".join(parts), slo_results


# ----------------------------------------------------------------------
# trends: sparklines + dual-window SLO burn over retained history
# ----------------------------------------------------------------------

#: Sparkline rows rendered per page; beyond this the table notes the cut.
_MAX_SPARKLINE_ROWS = 60


def _sparkline(values: Sequence[float], width: int = 140, height: int = 30) -> str:
    """An inline SVG line over ``values`` (geometry only — nothing to escape)."""
    if not values:
        return '<span class="muted">—</span>'
    finite = [v for v in values if v == v and abs(v) != math.inf]
    if not finite:
        return '<span class="muted">—</span>'
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    pad = 2.0
    count = len(values)
    step = (width - 2 * pad) / max(count - 1, 1)
    coords = []
    for index, value in enumerate(values):
        clamped = min(max(value, lo), hi)
        x = pad + index * step
        y = (height - pad) - (clamped - lo) / span * (height - 2 * pad)
        coords.append(f"{x:.1f},{y:.1f}")
    if count == 1:
        coords.append(f"{width - pad:.1f},{coords[0].split(',')[1]}")
    points = " ".join(coords)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend over {count} samples">'
        f'<polyline points="{points}" fill="none" stroke="currentColor" '
        f'stroke-width="1.5"/></svg>'
    )


def _series_from_history(
    points: Sequence[ScrapePoint],
) -> list[tuple[str, str, str, list[float]]]:
    """Per-series trend data: ``(metric, labels, kind, values)`` rows.

    Counters (and histogram ``_count`` series) plot per-interval rates;
    gauges plot raw values.  Histogram buckets and sums are skipped —
    the quantile tables cover them.
    """
    types = parse_exposition_types(points[-1].text)
    histogram_names = {name for name, kind in types.items() if kind == "histogram"}

    per_point: list[dict[tuple[str, tuple], float]] = []
    for point in points:
        values: dict[tuple[str, tuple], float] = {}
        for sample in point.samples:
            values[(sample.name, sample.labels)] = (
                values.get((sample.name, sample.labels), 0.0) + sample.value
            )
        per_point.append(values)

    rows: list[tuple[str, str, str, list[float]]] = []
    for name, labels in sorted(per_point[-1]):
        base = name
        kind = types.get(name, "gauge")
        if name.endswith("_count") and name[: -len("_count")] in histogram_names:
            base, kind = name[: -len("_count")], "counter"
        elif name.endswith("_bucket") and name[: -len("_bucket")] in histogram_names:
            continue
        elif name.endswith("_sum") and name[: -len("_sum")] in histogram_names:
            continue
        key = (name, labels)
        if kind == "counter":
            values_out: list[float] = []
            for index in range(1, len(points)):
                prev_v = per_point[index - 1].get(key)
                curr_v = per_point[index].get(key)
                dt = points[index].unix_s - points[index - 1].unix_s
                if prev_v is None or curr_v is None or curr_v < prev_v or dt <= 0:
                    values_out.append(0.0)
                else:
                    values_out.append((curr_v - prev_v) / dt)
            label = "rate/s"
        else:
            label = "value"
            values_out = [
                values[key] for values in per_point if key in values
            ]
        sample = Sample(name=name, labels=labels, value=0.0)
        rows.append((base if kind == "counter" else name,
                     _label_text(sample, skip=("le",)), label, values_out))
    return rows


def _history_section(points: Sequence[ScrapePoint]) -> str:
    ordered = points_in_window(points)
    span_s = ordered[-1].unix_s - ordered[0].unix_s if len(ordered) > 1 else 0.0
    parts = [
        "<h2>Trends (retained scrape history)</h2>",
        f'<p class="muted">{len(ordered)} retained scrapes spanning '
        f"{_esc(_format_number(span_s))}s.</p>",
    ]

    burn = evaluate_slos_windowed(ordered)
    burn_rows = []
    for result in burn:
        burn_rows.append([
            _esc(result.name),
            _status(not result.burning, result.status, "BURNING"),
            _esc(result.fast.detail),
            _esc(result.slow.detail),
        ])
    parts.append(_rows_table(
        "Dual-window burn: an objective burns only when the fast and "
        "slow windows agree",
        ["objective", "status", "fast window", "slow window"],
        burn_rows,
    ))

    if len(ordered) >= 2:
        trend_rows = []
        series = _series_from_history(ordered)
        for name, labels, kind, values in series[:_MAX_SPARKLINE_ROWS]:
            latest = values[-1] if values else 0.0
            trend_rows.append([
                _esc(name),
                _esc(labels),
                _esc(kind),
                _esc(_format_number(latest)),
                _sparkline(values),
            ])
        if trend_rows:
            caption = "Counter rates and gauge values across the retained window"
            if len(series) > _MAX_SPARKLINE_ROWS:
                caption += (
                    f" (first {_MAX_SPARKLINE_ROWS} of {len(series)} series)"
                )
            parts.append(_rows_table(
                caption,
                ["metric", "labels", "kind", "latest", "trend"],
                trend_rows,
            ))
    else:
        parts.append('<p class="muted">A single retained scrape has no '
                     "trend to draw; windowed SLOs fall back to cumulative "
                     "checks.</p>")
    return "".join(parts)


def _page(title: str, tiles: Sequence[str], sections: Sequence[str]) -> str:
    tiles_html = f'<div class="tiles">{"".join(tiles)}</div>' if tiles else ""
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<p class="subtitle">Static snapshot rendered by <code>repro.experiments dashboard</code>.</p>
{tiles_html}
{"".join(sections)}
</body>
</html>
"""


def render_dashboard(
    bundle: Any | None = None,
    metrics_text: str | None = None,
    title: str = "Sweep observability dashboard",
    history: Sequence[ScrapePoint] | None = None,
) -> str:
    """One self-contained HTML page from a report bundle and/or a scrape."""
    tiles: list[str] = []
    sections: list[str] = []
    if history and not metrics_text:
        # The newest retained point *is* a full scrape.
        metrics_text = history[-1].text or None

    if bundle is not None:
        tiles.append(_tile(
            "All cells verified",
            _status(bundle.all_verified, "yes", "NO"),
            raw_value=True,
        ))
        if bundle.theorem3_beta is not None:
            ok = bundle.theorem3_beta < 1
            tiles.append(_tile(
                "Theorem 3 shape β",
                f"{bundle.theorem3_beta:.3f}",
                note="sublogarithmic (β < 1)" if ok else "β ≥ 1",
            ))
        tiles.append(_tile("Scenarios", str(len(bundle.summaries))))
        sections.append("<h2>Scaling</h2>")
        sections.append(_table_html(bundle.scaling))
        sections.append(_table_html(bundle.fits))
        sections.append("<h2>Per-scenario detail</h2>")
        sections.extend(_table_html(table) for table in bundle.scenario_tables)

    if history:
        ordered = points_in_window(history)
        span_s = ordered[-1].unix_s - ordered[0].unix_s if len(ordered) > 1 else 0.0
        tiles.append(_tile(
            "Scrape history",
            str(len(ordered)),
            note=f"points over {_format_number(span_s)}s",
        ))
        sections.append(_history_section(ordered))

    if metrics_text:
        metrics_html, slo_results = _metrics_section(metrics_text)
        burning = [result for result in slo_results if not result.ok]
        tiles.insert(0, _tile(
            "SLOs",
            _status(not burning, "all ok", f"{len(burning)} burning"),
            note=f"{len(slo_results)} objectives evaluated",
            raw_value=True,
        ))
        sections.append(metrics_html)

    if not tiles and not sections:
        sections.append('<p class="muted">Nothing to show: no report bundle '
                        "and no metrics scrape were provided.</p>")

    return _page(title, tiles, sections)


# ----------------------------------------------------------------------
# cross-run diffs: two scrapes, two bench trajectories
# ----------------------------------------------------------------------

#: Counters whose *any* growth between two scrapes is a regression.
_BAD_COUNTER_DELTAS: tuple[tuple[str, dict[str, str]], ...] = (
    ("service_malformed_lines_total", {}),
    ("service_auth_failures_total", {}),
    ("pool_worker_restarts_total", {}),
    ("collector_records_total", {"fate": "dropped"}),
)

#: A p99 that grows past this factor between two scrapes is a regression.
_P99_REGRESSION_FACTOR = 2.0


def _scalar_map(samples: Sequence[Sample]) -> dict[tuple[str, tuple], float]:
    values: dict[tuple[str, tuple], float] = {}
    for sample in samples:
        if sample.name.endswith("_bucket") and sample.label("le") is not None:
            continue  # buckets are noise here; quantiles cover them
        key = (sample.name, sample.labels)
        values[key] = values.get(key, 0.0) + sample.value
    return values


def _pooled_p99(samples: Sequence[Sample], name: str) -> float | None:
    buckets: dict[float, float] = {}
    for sample in samples:
        if sample.name != name + "_bucket":
            continue
        le = sample.label("le")
        if le is None:
            continue
        bound = math.inf if le == "+Inf" else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + sample.value
    return histogram_quantile(0.99, buckets.items())


def render_metrics_diff(
    text_a: str,
    text_b: str,
    label_a: str = "A",
    label_b: str = "B",
    title: str = "Metrics diff",
) -> tuple[str, list[str]]:
    """Two scrapes side by side: per-series deltas plus regression flags.

    Returns ``(html, regressions)`` where ``regressions`` lists the
    failure-class counters that grew and the histogram p99s that blew
    past :data:`_P99_REGRESSION_FACTOR` between A and B.
    """
    samples_a = parse_exposition(text_a)
    samples_b = parse_exposition(text_b)
    map_a = _scalar_map(samples_a)
    map_b = _scalar_map(samples_b)

    regressions: list[str] = []
    bad_keys: set[tuple[str, tuple]] = set()
    for name, labels in _BAD_COUNTER_DELTAS:
        matching = [
            key for key in set(map_a) | set(map_b)
            if key[0] == name
            and all(dict(key[1]).get(k) == v for k, v in labels.items())
        ]
        before = sum(map_a.get(key, 0.0) for key in matching)
        after = sum(map_b.get(key, 0.0) for key in matching)
        if after > before:
            label_note = "".join(f"{{{k}={v}}}" for k, v in labels.items())
            regressions.append(
                f"{name}{label_note} grew {_format_number(before)} → "
                f"{_format_number(after)}"
            )
            bad_keys.update(matching)

    rows = []
    changed = 0
    for key in sorted(set(map_a) | set(map_b)):
        name, labels = key
        before = map_a.get(key)
        after = map_b.get(key)
        delta = (after or 0.0) - (before or 0.0)
        if before != after:
            changed += 1
        if key in bad_keys and (after or 0.0) > (before or 0.0):
            status = _status(False, "", "REGRESSION")
        elif before == after:
            status = '<span class="muted">unchanged</span>'
        else:
            status = "changed"
        sample = Sample(name=name, labels=labels, value=0.0)
        rows.append([
            _esc(name),
            _esc(_label_text(sample)),
            _esc(_format_number(before)) if before is not None
            else '<span class="muted">—</span>',
            _esc(_format_number(after)) if after is not None
            else '<span class="muted">—</span>',
            _esc(f"{delta:+g}") if before != after else "",
            status,
        ])

    types = parse_exposition_types(text_a + "\n" + text_b)
    quantile_rows = []
    for name in sorted(n for n, kind in types.items() if kind == "histogram"):
        p99_a = _pooled_p99(samples_a, name)
        p99_b = _pooled_p99(samples_b, name)
        regressed = (
            p99_a is not None
            and p99_b is not None
            and p99_a > 0
            and p99_b > p99_a * _P99_REGRESSION_FACTOR
        )
        if regressed:
            regressions.append(
                f"{name} p99 grew {p99_a:.4f}s → {p99_b:.4f}s "
                f"(>{_P99_REGRESSION_FACTOR}×)"
            )
        quantile_rows.append([
            _esc(name),
            _esc(f"{p99_a:.4f}s") if p99_a is not None
            else '<span class="muted">—</span>',
            _esc(f"{p99_b:.4f}s") if p99_b is not None
            else '<span class="muted">—</span>',
            _status(False, "", "REGRESSION") if regressed
            else '<span class="muted">ok</span>',
        ])

    tiles = [
        _tile(
            "Verdict",
            _status(not regressions, "no regressions", f"{len(regressions)} regressions"),
            raw_value=True,
        ),
        _tile("Series compared", str(len(rows)), note=f"{changed} changed"),
    ]
    sections = []
    if regressions:
        items = "".join(f"<li>{_esc(r)}</li>" for r in regressions)
        sections.append(f"<h2>Regressions</h2><ul>{items}</ul>")
    sections.append(f"<h2>Scalar series: {_esc(label_a)} vs {_esc(label_b)}</h2>")
    sections.append(_rows_table(
        "Counters, gauges and histogram sums/counts (buckets elided)",
        ["metric", "labels", label_a, label_b, "Δ", "status"],
        rows,
    ))
    if quantile_rows:
        sections.append("<h2>Histogram p99 (pooled across labels)</h2>")
        sections.append(_rows_table(
            f"A p99 growing more than {_P99_REGRESSION_FACTOR}× regresses",
            ["histogram", label_a, label_b, "status"],
            quantile_rows,
        ))
    return _page(title, tiles, sections), regressions


@dataclass(frozen=True)
class BenchEntryDiff:
    """One (scenario, engine, n) cell compared across two bench runs."""

    scenario: str
    engine: str
    n: int
    old_wall_s: float
    new_wall_s: float
    ratio: float | None
    gated: bool  # large enough (>= min_wall_s on both sides) to gate on
    regression: bool
    note: str = ""


@dataclass
class BenchDiff:
    """The full comparison of two canonical ``BENCH_*.json`` payloads."""

    rows: list[BenchEntryDiff]
    only_old: list[tuple[str, str, int]]
    only_new: list[tuple[str, str, int]]
    max_regression: float
    min_wall_s: float

    @property
    def regressions(self) -> list[BenchEntryDiff]:
        return [row for row in self.rows if row.regression]

    @property
    def worst_ratio(self) -> float | None:
        ratios = [row.ratio for row in self.rows if row.ratio is not None]
        return max(ratios) if ratios else None

    def pair_summary(self) -> dict[tuple[str, str], float]:
        """Worst gated wall-clock ratio per (scenario, engine) pair."""
        worst: dict[tuple[str, str], float] = {}
        for row in self.rows:
            if row.ratio is None or not row.gated:
                continue
            key = (row.scenario, row.engine)
            worst[key] = max(worst.get(key, 0.0), row.ratio)
        return worst


def _bench_entries(payload: Mapping) -> dict[tuple[str, str, int], Mapping]:
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(
            "bench payload lacks an 'entries' list — is this a canonical "
            "BENCH_*.json file?"
        )
    table: dict[tuple[str, str, int], Mapping] = {}
    for entry in entries:
        key = (
            str(entry.get("scenario", "?")),
            str(entry.get("engine") or "-"),
            int(entry.get("n", 0)),
        )
        table[key] = entry
    return table


def diff_bench_payloads(
    old: Mapping,
    new: Mapping,
    max_regression: float = 2.0,
    min_wall_s: float = 0.05,
) -> BenchDiff:
    """Compare two canonical bench payloads entry by entry.

    An entry *regresses* when its wall clock grew by more than
    ``max_regression``× — but only entries taking at least ``min_wall_s``
    on both sides gate: sub-threshold timings are noise-dominated and
    reported informationally, never failed on.  Semantic fields
    (``rounds``, ``messages``) that changed are noted on the row.
    """
    old_entries = _bench_entries(old)
    new_entries = _bench_entries(new)
    rows: list[BenchEntryDiff] = []
    for key in sorted(set(old_entries) & set(new_entries)):
        old_entry, new_entry = old_entries[key], new_entries[key]
        old_wall = float(old_entry.get("wall_clock_s", 0.0))
        new_wall = float(new_entry.get("wall_clock_s", 0.0))
        ratio = new_wall / old_wall if old_wall > 0 else None
        gated = old_wall >= min_wall_s and new_wall >= min_wall_s
        regression = (
            gated and ratio is not None and ratio > max_regression
        )
        notes = []
        for semantic in ("rounds", "messages"):
            if (semantic in old_entry or semantic in new_entry) and \
                    old_entry.get(semantic) != new_entry.get(semantic):
                notes.append(
                    f"{semantic} {old_entry.get(semantic)} → "
                    f"{new_entry.get(semantic)}"
                )
        rows.append(BenchEntryDiff(
            scenario=key[0],
            engine=key[1],
            n=key[2],
            old_wall_s=old_wall,
            new_wall_s=new_wall,
            ratio=ratio,
            gated=gated,
            regression=regression,
            note="; ".join(notes),
        ))
    return BenchDiff(
        rows=rows,
        only_old=sorted(set(old_entries) - set(new_entries)),
        only_new=sorted(set(new_entries) - set(old_entries)),
        max_regression=max_regression,
        min_wall_s=min_wall_s,
    )


def render_bench_diff(
    diff: BenchDiff,
    label_old: str = "baseline",
    label_new: str = "current",
    title: str = "Bench trajectory diff",
) -> str:
    """The regression-highlighted bench comparison page (CI artifact)."""
    regressions = diff.regressions
    tiles = [
        _tile(
            "Verdict",
            _status(
                not regressions,
                "within budget",
                f"{len(regressions)} regressions",
            ),
            note=f"budget {diff.max_regression}× wall clock",
            raw_value=True,
        ),
        _tile("Entries compared", str(len(diff.rows))),
    ]
    worst = diff.worst_ratio
    if worst is not None:
        tiles.append(_tile("Worst ratio", f"{worst:.2f}×"))

    sections = []
    if regressions:
        items = "".join(
            f"<li>{_esc(row.scenario)} / {_esc(row.engine)} / n={row.n}: "
            f"{row.old_wall_s:.4f}s → {row.new_wall_s:.4f}s "
            f"({row.ratio:.2f}×)</li>"
            for row in regressions
        )
        sections.append(f"<h2>Regressions</h2><ul>{items}</ul>")

    entry_rows = []
    entry_classes = []
    for row in diff.rows:
        entry_classes.append("regression" if row.regression else None)
        if row.regression:
            status = _status(False, "", "REGRESSION")
        elif not row.gated:
            status = f'<span class="muted">below {diff.min_wall_s}s floor</span>'
        else:
            status = _status(True, "ok", "")
        entry_rows.append([
            _esc(row.scenario),
            _esc(row.engine),
            _esc(str(row.n)),
            _esc(f"{row.old_wall_s:.4f}"),
            _esc(f"{row.new_wall_s:.4f}"),
            _esc(f"{row.ratio:.2f}×") if row.ratio is not None
            else '<span class="muted">—</span>',
            status,
            _esc(row.note) if row.note else "",
        ])
    sections.append(f"<h2>Wall clock: {_esc(label_old)} vs {_esc(label_new)}</h2>")
    sections.append(_rows_table(
        f"Regression = ratio > {diff.max_regression}× with both sides ≥ "
        f"{diff.min_wall_s}s",
        ["scenario", "engine", "n", f"{label_old} (s)", f"{label_new} (s)",
         "ratio", "status", "notes"],
        entry_rows,
        row_classes=entry_classes,
    ))

    pair_rows = [
        [
            _esc(scenario),
            _esc(engine),
            _esc(f"{ratio:.2f}×"),
            _status(ratio <= diff.max_regression, "ok", "REGRESSION"),
        ]
        for (scenario, engine), ratio in sorted(diff.pair_summary().items())
    ]
    if pair_rows:
        sections.append("<h2>Per-(scenario, engine) summary</h2>")
        sections.append(_rows_table(
            "Worst gated ratio per pair — what CI fails on",
            ["scenario", "engine", "worst ratio", "status"],
            pair_rows,
        ))

    for label, keys in (("Only in " + label_old, diff.only_old),
                        ("Only in " + label_new, diff.only_new)):
        if keys:
            items = "".join(
                f"<li>{_esc(s)} / {_esc(e)} / n={n}</li>" for s, e, n in keys
            )
            sections.append(f"<h2>{_esc(label)}</h2><ul>{items}</ul>")

    return _page(title, tiles, sections)
