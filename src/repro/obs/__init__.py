"""Dependency-free observability: metrics, spans, SLOs, dashboards.

The public surface is the registry/primitive layer (:mod:`.metrics`),
the ambient phase-timing layer (:mod:`.spans`) and the SLO definitions
(:mod:`.slo`).  The HTML dashboard renderer lives in
:mod:`repro.obs.dashboard` and is imported explicitly by the CLI — it
is presentation, not instrumentation, and nothing in the service path
should pull it in.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    histogram_quantile,
    parse_exposition,
    parse_exposition_types,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOBurnResult,
    SLOResult,
    Window,
    evaluate_slos,
    evaluate_slos_windowed,
)
from repro.obs.spans import PhaseTimer, record_phase, span
from repro.obs.timeseries import (
    ScrapeHistory,
    ScrapePoint,
    counter_increase,
    counter_rate,
    gauge_delta,
    load_history_jsonl,
    parse_duration,
    points_from_payload,
    windowed_quantile,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "SLO",
    "SLOBurnResult",
    "SLOResult",
    "Sample",
    "ScrapeHistory",
    "ScrapePoint",
    "Window",
    "counter_increase",
    "counter_rate",
    "evaluate_slos",
    "evaluate_slos_windowed",
    "gauge_delta",
    "histogram_quantile",
    "load_history_jsonl",
    "parse_duration",
    "parse_exposition",
    "parse_exposition_types",
    "points_from_payload",
    "record_phase",
    "span",
    "windowed_quantile",
]
