"""Dependency-free observability: metrics, spans, SLOs, dashboards.

The public surface is the registry/primitive layer (:mod:`.metrics`),
the ambient phase-timing layer (:mod:`.spans`) and the SLO definitions
(:mod:`.slo`).  The HTML dashboard renderer lives in
:mod:`repro.obs.dashboard` and is imported explicitly by the CLI — it
is presentation, not instrumentation, and nothing in the service path
should pull it in.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    histogram_quantile,
    parse_exposition,
)
from repro.obs.slo import DEFAULT_SLOS, SLO, SLOResult, evaluate_slos
from repro.obs.spans import PhaseTimer, record_phase, span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "SLO",
    "SLOResult",
    "Sample",
    "evaluate_slos",
    "histogram_quantile",
    "parse_exposition",
    "record_phase",
    "span",
]
