"""Service-level objectives evaluated over metric windows.

Each :class:`SLO` is a named predicate over a :class:`Window` — a slice
of retained scrape history.  With two or more points the objectives
evaluate PromQL-style: counter *increases* inside the window, p99
latency from bucket deltas, ingest-stall detection via a zero
``rate(collector_records_ingested_total)``.  A single scrape is the
degenerate one-sample window and falls back to the cumulative checks,
so ``scripts/slo_burn_check.py`` on one ``.prom`` file keeps working.

``evaluate_slos`` runs every objective over one window (or a bare
sample sequence); ``evaluate_slos_windowed`` runs the SRE dual-window
form — an objective *burns* only when both the fast window (is it bad
right now?) and the slow window (has it been bad long enough to spend
real budget?) agree, which suppresses one-scrape blips without missing
sustained burns.

An objective whose underlying series is absent from the window passes
with ``"no data"`` (and ``no_data=True`` on the result) rather than
burning: a scrape taken before the first request, or from a service
that does not own that subsystem, is not an outage.  The reverse — a
metric present but over budget — always burns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.obs.metrics import (
    Sample,
    histogram_quantile,
    samples_named,
    sum_samples,
)
from repro.obs.timeseries import (
    ScrapePoint,
    bucket_counts,
    counter_increase,
    counter_rate,
    gauge_delta,
    points_in_window,
    windowed_quantile,
)

__all__ = [
    "DEFAULT_FAST_WINDOW_S",
    "DEFAULT_SLOS",
    "DEFAULT_SLOW_WINDOW_S",
    "SLO",
    "SLOBurnResult",
    "SLOResult",
    "Window",
    "evaluate_slos",
    "evaluate_slos_windowed",
]

#: Dual-window burn-rate defaults: "bad over the last 5 minutes" must be
#: corroborated by "bad over the last hour" before an alert fires.
DEFAULT_FAST_WINDOW_S = 300.0
DEFAULT_SLOW_WINDOW_S = 3600.0

_NO_DATA = "no data"


class Window:
    """A slice of scrape history that SLO checks evaluate over.

    One point (or a bare sample list via :meth:`from_samples`) is the
    degenerate window: queries fall back to cumulative-scrape semantics.
    Two or more points unlock the windowed queries.
    """

    def __init__(
        self, points: Sequence[ScrapePoint], windowed: bool | None = None
    ) -> None:
        self.points = sorted(points, key=lambda point: point.unix_s)
        # A window carved out of real history stays windowed even when it
        # caught fewer than two scrapes: the queries then answer None
        # ("no data") rather than silently flipping back to cumulative
        # semantics, which would misread a lifetime total as an
        # in-window burn.
        self._windowed = (
            len(self.points) >= 2 if windowed is None else windowed
        )

    @classmethod
    def from_samples(cls, samples: Sequence[Sample]) -> "Window":
        return cls([ScrapePoint.from_samples(0.0, samples)])

    @property
    def is_windowed(self) -> bool:
        return self._windowed

    @property
    def span_s(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].unix_s - self.points[0].unix_s

    @property
    def latest_samples(self) -> Sequence[Sample]:
        return self.points[-1].samples if self.points else ()

    def describe(self) -> str:
        if len(self.points) >= 2:
            return f"{len(self.points)} points over {self.span_s:.0f}s"
        if self.is_windowed:
            return f"{len(self.points)} point(s) (window too sparse)"
        return "single scrape"

    def has_series(self, name: str) -> bool:
        return bool(samples_named(self.latest_samples, name))

    def latest_total(self, name: str, **labels: str) -> float:
        return sum_samples(self.latest_samples, name, **labels)

    def increase(self, name: str, **labels: str) -> float | None:
        """Counter growth inside the window; cumulative total when
        degenerate; ``None`` when the series is absent (or reset)."""
        if self.is_windowed:
            return counter_increase(self.points, name, **labels)
        if not self.has_series(name):
            return None
        return self.latest_total(name, **labels)

    def rate(self, name: str, **labels: str) -> float | None:
        """Per-second counter growth; undefined on a degenerate window."""
        if not self.is_windowed:
            return None
        return counter_rate(self.points, name, **labels)

    def delta(self, name: str, **labels: str) -> float | None:
        if not self.is_windowed:
            return None
        return gauge_delta(self.points, name, **labels)

    def quantile(self, quantile: float, name: str, **labels: str) -> float | None:
        """Histogram quantile over the window's observations (bucket
        deltas); over all observations when degenerate."""
        if self.is_windowed:
            return windowed_quantile(self.points, name, quantile, **labels)
        buckets = bucket_counts(self.latest_samples, name, **labels)
        return histogram_quantile(quantile, buckets.items())


@dataclass(frozen=True)
class SLOResult:
    """One objective's verdict over one window."""

    name: str
    ok: bool
    detail: str
    no_data: bool = False

    @property
    def status(self) -> str:
        return "ok" if self.ok else "BURNING"


@dataclass(frozen=True)
class SLOBurnResult:
    """The dual-window verdict: burning only if fast AND slow agree."""

    name: str
    fast: SLOResult
    slow: SLOResult

    @property
    def burning(self) -> bool:
        return not self.fast.ok and not self.slow.ok

    @property
    def no_data(self) -> bool:
        return self.fast.no_data and self.slow.no_data

    @property
    def status(self) -> str:
        if self.burning:
            return "BURNING"
        if not self.fast.ok:
            return "fast-burn only"
        return "ok"


@dataclass(frozen=True)
class SLO:
    """A named objective: ``check`` maps a window to (ok, detail)."""

    name: str
    description: str
    check: Callable[[Window], tuple[bool, str]]

    def evaluate(self, window: Window) -> SLOResult:
        ok, detail = self.check(window)
        return SLOResult(
            name=self.name,
            ok=ok,
            detail=detail,
            no_data=detail.startswith(_NO_DATA),
        )


def _trim(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.4f}"


def _histogram_p99(
    window: Window, name: str, threshold_s: float
) -> tuple[bool, str]:
    """p99 over all label combinations of one latency histogram pooled."""
    p99 = window.quantile(0.99, name)
    if p99 is None:
        return True, f"no data ({name} has no observations in window)"
    ok = p99 <= threshold_s
    note = f" over {window.describe()}" if window.is_windowed else ""
    return ok, f"p99 ≈ {p99:.4f}s (budget {threshold_s}s){note}"


def _counter_at_most(
    window: Window, name: str, budget: float, **labels: str
) -> tuple[bool, str]:
    if not window.has_series(name):
        return True, f"no data ({name} absent)"
    total = window.increase(name, **labels)
    if total is None:
        return True, (
            f"no data ({name} increase unmeasurable: reset or too few "
            f"scrapes in window)"
        )
    label_note = "".join(f"{{{k}={v}}}" for k, v in labels.items())
    verb = "increase" if window.is_windowed else "total"
    return (
        total <= budget,
        f"{name}{label_note} {verb} = {_trim(total)} (budget {_trim(budget)})",
    )


def _ratio_at_most(
    window: Window,
    numerator: tuple[str, dict],
    denominator: str,
    budget: float,
) -> tuple[bool, str]:
    num_name, num_labels = numerator
    if not window.has_series(denominator):
        return True, f"no data ({denominator} absent)"
    total = window.increase(denominator)
    if total is None or total <= 0:
        return True, f"no data ({denominator} saw no increase in window)"
    part = window.increase(num_name, **num_labels)
    if part is None:
        part = 0.0
    ratio = part / total
    return ratio <= budget, f"ratio = {ratio:.4f} (budget {budget})"


def _slo_verb_latency(window: Window) -> tuple[bool, str]:
    return _histogram_p99(window, "service_request_seconds", threshold_s=5.0)


def _slo_zero_dropped(window: Window) -> tuple[bool, str]:
    return _counter_at_most(
        window, "collector_records_total", budget=0, fate="dropped"
    )


def _slo_conflict_rate(window: Window) -> tuple[bool, str]:
    return _ratio_at_most(
        window,
        numerator=("collector_records_total", {"fate": "conflict"}),
        denominator="collector_records_ingested_total",
        budget=0.05,
    )


def _slo_malformed_lines(window: Window) -> tuple[bool, str]:
    return _counter_at_most(window, "service_malformed_lines_total", budget=0)


def _slo_auth_failures(window: Window) -> tuple[bool, str]:
    return _counter_at_most(window, "service_auth_failures_total", budget=0)


def _slo_worker_restarts(window: Window) -> tuple[bool, str]:
    return _counter_at_most(window, "pool_worker_restarts_total", budget=0)


def _slo_ingest_stall(window: Window) -> tuple[bool, str]:
    """A collector that has ingested records before the window but none
    inside it has stalled — the signature of a wedged transport that a
    cumulative counter can never show."""
    name = "collector_records_ingested_total"
    if not window.is_windowed:
        return True, "no data (single scrape cannot measure an ingest rate)"
    if not window.has_series(name):
        return True, f"no data ({name} absent)"
    total = window.latest_total(name)
    if total <= 0:
        return True, "no data (nothing ingested yet)"
    increase = window.increase(name)
    if increase is None:
        return True, f"no data ({name} reset mid-window)"
    if increase <= 0:
        return False, (
            f"ingest stalled: 0 records over {window.describe()} "
            f"(cumulative total {_trim(total)})"
        )
    rate = window.rate(name)
    rate_note = f" ≈ {rate:.2f}/s" if rate is not None else ""
    return True, f"+{_trim(increase)} records{rate_note} over {window.describe()}"


def _slo_lease_stuck(window: Window) -> tuple[bool, str]:
    """No fleet lease should outlive 3x the lease TTL: heartbeats renew
    live workers' leases and expiry reassigns dead workers' leases, so a
    lease that old means reassignment itself has wedged."""
    name = "fleet_oldest_lease_age_seconds"
    if not window.has_series(name):
        return True, f"no data ({name} absent)"
    ttl = window.latest_total("fleet_lease_ttl_seconds")
    if ttl <= 0:
        return True, "no data (fleet_lease_ttl_seconds absent or zero)"
    oldest = window.latest_total(name)
    budget = 3.0 * ttl
    ok = oldest <= budget
    return ok, (
        f"oldest active lease {oldest:.2f}s "
        f"(budget {_trim(budget)} = 3x {_trim(ttl)}s TTL)"
    )


#: The repo's objectives, documented in ROADMAP.md.  Budgets are tuned
#: for the CI smoke jobs: a healthy run serves every verb in well under
#: five seconds at p99 and drops, mangles and rejects nothing; a
#: collector with history must keep ingesting while work is in flight.
DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO(
        name="verb-latency-p99",
        description="p99 service request latency ≤ 5s across all verbs",
        check=_slo_verb_latency,
    ),
    SLO(
        name="zero-dropped-records",
        description="the collector drops no pushed records",
        check=_slo_zero_dropped,
    ),
    SLO(
        name="duplicate-conflict-rate",
        description="semantic duplicate conflicts ≤ 5% of ingested records",
        check=_slo_conflict_rate,
    ),
    SLO(
        name="zero-malformed-lines",
        description="no protocol lines fail to parse",
        check=_slo_malformed_lines,
    ),
    SLO(
        name="zero-auth-failures",
        description="no connections are rejected for a bad token",
        check=_slo_auth_failures,
    ),
    SLO(
        name="zero-worker-restarts",
        description="no pool workers die and respawn mid-sweep",
        check=_slo_worker_restarts,
    ),
    SLO(
        name="ingest-not-stalled",
        description="a collector that has ingested keeps ingesting in-window",
        check=_slo_ingest_stall,
    ),
    SLO(
        name="lease-stuck",
        description="no fleet lease stays active beyond 3x the lease TTL",
        check=_slo_lease_stuck,
    ),
)


def _as_window(samples: "Window | Sequence[Sample]") -> Window:
    if isinstance(samples, Window):
        return samples
    return Window.from_samples(list(samples))


def evaluate_slos(
    samples: "Window | Sequence[Sample]",
    slos: Iterable[SLO] = DEFAULT_SLOS,
) -> list[SLOResult]:
    """Every objective's verdict over one window, in definition order.

    Accepts either a :class:`Window` or a bare sample sequence (one
    scrape), which evaluates as the degenerate single-sample window.
    """
    window = _as_window(samples)
    return [slo.evaluate(window) for slo in slos]


def evaluate_slos_windowed(
    points: Sequence[ScrapePoint],
    fast_window_s: float = DEFAULT_FAST_WINDOW_S,
    slow_window_s: float = DEFAULT_SLOW_WINDOW_S,
    slos: Iterable[SLO] = DEFAULT_SLOS,
    now: float | None = None,
) -> list[SLOBurnResult]:
    """Dual-window burn evaluation over retained scrape history.

    Each objective is checked over the trailing fast window and the
    trailing slow window (both ending at ``now``, default: the newest
    point); it is *burning* only when both verdicts fail.
    """
    if slow_window_s < fast_window_s:
        raise ValueError(
            f"slow window ({slow_window_s}s) must be >= fast window "
            f"({fast_window_s}s)"
        )
    ordered = points_in_window(points)
    end = now
    if end is None and ordered:
        end = ordered[-1].unix_s
    fast = Window(points_in_window(ordered, fast_window_s, end), windowed=True)
    slow = Window(points_in_window(ordered, slow_window_s, end), windowed=True)
    return [
        SLOBurnResult(
            name=slo.name, fast=slo.evaluate(fast), slow=slo.evaluate(slow)
        )
        for slo in slos
    ]
