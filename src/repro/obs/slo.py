"""Service-level objectives evaluated over a metrics exposition.

Each :class:`SLO` is a named predicate over the parsed samples of one
Prometheus-text scrape.  ``evaluate_slos`` runs every objective and
returns structured verdicts; ``scripts/slo_burn_check.py`` turns a
burning objective into a red CI run.

An objective whose underlying series is absent from the scrape passes
with ``"no data"`` rather than burning: a scrape taken before the first
request (or from a service that does not own that subsystem) is not an
outage.  The reverse — a metric present but over budget — always burns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.obs.metrics import (
    Sample,
    histogram_quantile,
    samples_named,
    sum_samples,
)

__all__ = ["SLO", "SLOResult", "DEFAULT_SLOS", "evaluate_slos"]


@dataclass(frozen=True)
class SLOResult:
    """One objective's verdict over one scrape."""

    name: str
    ok: bool
    detail: str

    @property
    def status(self) -> str:
        return "ok" if self.ok else "BURNING"


@dataclass(frozen=True)
class SLO:
    """A named objective: ``check`` maps samples to (ok, detail)."""

    name: str
    description: str
    check: Callable[[Sequence[Sample]], tuple[bool, str]]

    def evaluate(self, samples: Sequence[Sample]) -> SLOResult:
        ok, detail = self.check(samples)
        return SLOResult(name=self.name, ok=ok, detail=detail)


def _histogram_p99(
    samples: Sequence[Sample], name: str, threshold_s: float
) -> tuple[bool, str]:
    """p99 over all label combinations of one latency histogram pooled."""
    buckets: dict[float, float] = {}
    for sample in samples_named(samples, name + "_bucket"):
        le = sample.label("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + sample.value
    p99 = histogram_quantile(0.99, buckets.items())
    if p99 is None:
        return True, f"no data ({name} has no observations)"
    ok = p99 <= threshold_s
    return ok, f"p99 ≈ {p99:.4f}s (budget {threshold_s}s)"


def _counter_at_most(
    samples: Sequence[Sample], name: str, budget: float, **labels: str
) -> tuple[bool, str]:
    if not samples_named(samples, name):
        return True, f"no data ({name} absent)"
    total = sum_samples(samples, name, **labels)
    label_note = "".join(f"{{{k}={v}}}" for k, v in labels.items())
    return total <= budget, f"{name}{label_note} = {_trim(total)} (budget {_trim(budget)})"


def _ratio_at_most(
    samples: Sequence[Sample],
    numerator: tuple[str, dict],
    denominator: str,
    budget: float,
) -> tuple[bool, str]:
    num_name, num_labels = numerator
    if not samples_named(samples, denominator):
        return True, f"no data ({denominator} absent)"
    total = sum_samples(samples, denominator)
    if total <= 0:
        return True, f"no data ({denominator} = 0)"
    part = sum_samples(samples, num_name, **num_labels)
    ratio = part / total
    return ratio <= budget, f"ratio = {ratio:.4f} (budget {budget})"


def _trim(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.4f}"


def _slo_verb_latency(samples: Sequence[Sample]) -> tuple[bool, str]:
    return _histogram_p99(samples, "service_request_seconds", threshold_s=5.0)


def _slo_zero_dropped(samples: Sequence[Sample]) -> tuple[bool, str]:
    return _counter_at_most(
        samples, "collector_records_total", budget=0, fate="dropped"
    )


def _slo_conflict_rate(samples: Sequence[Sample]) -> tuple[bool, str]:
    return _ratio_at_most(
        samples,
        numerator=("collector_records_total", {"fate": "conflict"}),
        denominator="collector_records_ingested_total",
        budget=0.05,
    )


def _slo_malformed_lines(samples: Sequence[Sample]) -> tuple[bool, str]:
    return _counter_at_most(samples, "service_malformed_lines_total", budget=0)


def _slo_auth_failures(samples: Sequence[Sample]) -> tuple[bool, str]:
    return _counter_at_most(samples, "service_auth_failures_total", budget=0)


def _slo_worker_restarts(samples: Sequence[Sample]) -> tuple[bool, str]:
    return _counter_at_most(samples, "pool_worker_restarts_total", budget=0)


#: The repo's objectives, documented in ROADMAP.md.  Budgets are tuned
#: for the CI smoke jobs: a healthy run serves every verb in well under
#: five seconds at p99 and drops, mangles and rejects nothing.
DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO(
        name="verb-latency-p99",
        description="p99 service request latency ≤ 5s across all verbs",
        check=_slo_verb_latency,
    ),
    SLO(
        name="zero-dropped-records",
        description="the collector drops no pushed records",
        check=_slo_zero_dropped,
    ),
    SLO(
        name="duplicate-conflict-rate",
        description="semantic duplicate conflicts ≤ 5% of ingested records",
        check=_slo_conflict_rate,
    ),
    SLO(
        name="zero-malformed-lines",
        description="no protocol lines fail to parse",
        check=_slo_malformed_lines,
    ),
    SLO(
        name="zero-auth-failures",
        description="no connections are rejected for a bad token",
        check=_slo_auth_failures,
    ),
    SLO(
        name="zero-worker-restarts",
        description="no pool workers die and respawn mid-sweep",
        check=_slo_worker_restarts,
    ),
)


def evaluate_slos(
    samples: Sequence[Sample], slos: Iterable[SLO] = DEFAULT_SLOS
) -> list[SLOResult]:
    """Every objective's verdict over one scrape, in definition order."""
    return [slo.evaluate(samples) for slo in slos]
