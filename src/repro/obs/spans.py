"""Ambient per-cell phase timing — the span side of the obs layer.

``run_cell`` wants a generate/run/verify/simulate breakdown without
threading a timer object through every generator, algorithm and engine
signature.  The repo already solves exactly this shape twice with
module-level ambient stacks (``MessageMeter`` for message counts,
``EnginePolicy`` for engine selection); :class:`PhaseTimer` is the same
idiom for wall-clock phases, thread-local so concurrent service threads
never cross streams:

    with PhaseTimer() as timer:
        with span("generate"):
            graph = generator.build(...)
        with span("run"):
            fields = algorithm.run(...)
    timings = timer.timings()   # {"generate": ..., "run": ...}

Deep code (the engines) reports through :func:`record_phase` without
knowing whether a timer is active — with no ambient timer both
:func:`span` and :func:`record_phase` are no-ops, so the engines stay
usable standalone.  Repeated spans of one phase accumulate.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseTimer", "record_phase", "span"]

_local = threading.local()


def _active_timers() -> list["PhaseTimer"]:
    timers = getattr(_local, "timers", None)
    if timers is None:
        timers = _local.timers = []
    return timers


class PhaseTimer:
    """Collects named phase durations from the spans under its scope."""

    def __init__(self) -> None:
        self._timings: dict[str, float] = {}

    def __enter__(self) -> "PhaseTimer":
        _active_timers().append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        timers = _active_timers()
        if timers and timers[-1] is self:
            timers.pop()
        else:  # defensive: exited out of order
            try:
                timers.remove(self)
            except ValueError:
                pass
        return False

    def record(self, phase: str, seconds: float) -> None:
        self._timings[phase] = self._timings.get(phase, 0.0) + seconds

    def timings(self) -> dict[str, float]:
        """The accumulated ``{phase: seconds}`` map (a copy)."""
        return dict(self._timings)


def record_phase(phase: str, seconds: float) -> None:
    """Add ``seconds`` to ``phase`` on the innermost active timer, if any."""
    timers = _active_timers()
    if timers:
        timers[-1].record(phase, seconds)


@contextmanager
def span(phase: str) -> Iterator[None]:
    """Time a block and record it as ``phase`` on the ambient timer."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record_phase(phase, time.perf_counter() - start)
