"""Retained scrape history and PromQL-style window queries over it.

A :class:`ScrapeHistory` snapshots one :class:`MetricsRegistry` into a
ring buffer on a configurable interval — a background thread in the
long-lived services (``SweepDaemon``, ``ResultCollector``) — with an
optional on-disk JSONL spill for post-mortems.  Each retained point is
the full Prometheus text exposition plus its wall-clock timestamp, so
anything that can read one scrape can read the history.

On top of the retained points this module provides the window queries a
single cumulative scrape cannot answer: :func:`counter_increase` /
:func:`counter_rate` for counters, :func:`gauge_delta` for gauges, and
:func:`windowed_quantile` for histograms via bucket deltas between the
window endpoints.  Every query returns ``None`` — never a guess — when
the window holds fewer than two points, the series is absent, or a
counter reset makes the delta meaningless.

The JSONL spill format is one ``{"unix_s": <float>, "metrics": "<text>"}``
object per line; ``metrics --history --out FILE`` writes it and both
``slo_burn_check.py --history`` and ``dashboard`` read it back.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.obs.metrics import (
    MetricsRegistry,
    Sample,
    histogram_quantile,
    parse_exposition,
    samples_named,
)

__all__ = [
    "DEFAULT_HISTORY_CAPACITY",
    "DEFAULT_SCRAPE_INTERVAL_S",
    "MAX_HISTORY_POINTS_PER_RESPONSE",
    "ScrapeHistory",
    "ScrapePoint",
    "bucket_counts",
    "counter_increase",
    "counter_rate",
    "gauge_delta",
    "load_history_jsonl",
    "parse_duration",
    "points_from_payload",
    "points_in_window",
    "windowed_quantile",
]

#: Default seconds between background snapshots.
DEFAULT_SCRAPE_INTERVAL_S = 5.0

#: Default ring-buffer depth: one hour of history at the default interval.
DEFAULT_HISTORY_CAPACITY = 720

#: Hard cap on points returned by one ``metrics_history`` response, so a
#: long-running service cannot push a reply past the transport's framed
#: line limit.  Clients page by window instead.
MAX_HISTORY_POINTS_PER_RESPONSE = 360


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_samples(samples: Iterable[Sample]) -> str:
    """Minimal exposition text (sample lines only) for in-memory points,
    so a point built via :meth:`ScrapePoint.from_samples` still
    serialises losslessly through :meth:`ScrapePoint.to_record`."""
    lines = []
    for sample in samples:
        label_text = ""
        if sample.labels:
            pairs = ",".join(
                f'{key}="{_escape_label(str(value))}"'
                for key, value in sample.labels
            )
            label_text = "{" + pairs + "}"
        lines.append(f"{sample.name}{label_text} {float(sample.value)!r}")
    return "\n".join(lines) + ("\n" if lines else "")


class ScrapePoint:
    """One retained scrape: a timestamp plus the full exposition text."""

    __slots__ = ("unix_s", "text", "_samples")

    def __init__(self, unix_s: float, text: str) -> None:
        self.unix_s = float(unix_s)
        self.text = text
        self._samples: tuple[Sample, ...] | None = None

    @classmethod
    def from_samples(cls, unix_s: float, samples: Iterable[Sample]) -> "ScrapePoint":
        """A point built from already-parsed samples (no exposition text)."""
        point = cls(unix_s, "")
        point._samples = tuple(samples)
        return point

    @property
    def samples(self) -> tuple[Sample, ...]:
        if self._samples is None:
            self._samples = tuple(parse_exposition(self.text))
        return self._samples

    def to_record(self) -> dict:
        text = self.text
        if not text and self._samples:
            text = _render_samples(self._samples)
        return {"unix_s": self.unix_s, "metrics": text}

    @classmethod
    def from_record(cls, record: Mapping) -> "ScrapePoint":
        return cls(float(record["unix_s"]), str(record["metrics"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScrapePoint(unix_s={self.unix_s:.3f}, {len(self.text)} bytes)"


class ScrapeHistory:
    """A ring buffer of registry snapshots with a background scraper.

    ``capacity`` bounds retention (oldest points are evicted), and
    ``spill_path`` — when given — appends every snapshot as one JSONL
    record so a post-mortem can outlive the process.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = DEFAULT_SCRAPE_INTERVAL_S,
        capacity: int = DEFAULT_HISTORY_CAPACITY,
        spill_path: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"history capacity must be >= 1, got {capacity}")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self._points: deque[ScrapePoint] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def snapshot(self, now: float | None = None) -> ScrapePoint:
        """Scrape the registry into the buffer (and the spill) right now."""
        point = ScrapePoint(
            time.time() if now is None else now, self.registry.render()
        )
        with self._lock:
            self._points.append(point)
        if self.spill_path is not None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            with self.spill_path.open("a", encoding="utf-8") as spill:
                spill.write(json.dumps(point.to_record()) + "\n")
        return point

    def start(self) -> None:
        """Start the background snapshot thread (first scrape immediate)."""
        if self.interval_s <= 0:
            raise ValueError(
                f"scrape interval must be > 0 to start, got {self.interval_s}"
            )
        if self._thread is not None:
            return
        self._stop.clear()
        self.snapshot()
        self._thread = threading.Thread(
            target=self._run, name="scrape-history", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.snapshot()

    def stop(self) -> None:
        """Stop the background thread (idempotent; final state retained)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def points(
        self, window_s: float | None = None, now: float | None = None
    ) -> list[ScrapePoint]:
        """Retained points, optionally restricted to a trailing window."""
        with self._lock:
            points = list(self._points)
        return points_in_window(points, window_s, now)

    def payload(
        self,
        window_s: float | None = None,
        max_points: int | None = None,
        now: float | None = None,
    ) -> dict:
        """The ``metrics_history`` response body: bounded, most recent last."""
        points = self.points(window_s, now)
        cap = MAX_HISTORY_POINTS_PER_RESPONSE
        if max_points is not None:
            cap = max(1, min(int(max_points), cap))
        truncated = len(points) > cap
        if truncated:
            points = points[-cap:]
        return {
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "retained": len(self),
            "truncated": truncated,
            "points": [point.to_record() for point in points],
        }


# ----------------------------------------------------------------------
# window selection and (de)serialisation
# ----------------------------------------------------------------------

def points_in_window(
    points: Sequence[ScrapePoint],
    window_s: float | None = None,
    now: float | None = None,
) -> list[ScrapePoint]:
    """The points inside the trailing window ending at ``now``.

    ``now`` defaults to the newest point's own timestamp, so a saved
    history evaluates the same way regardless of when it is re-read.
    """
    ordered = sorted(points, key=lambda point: point.unix_s)
    if window_s is None or not ordered:
        return ordered
    end = ordered[-1].unix_s if now is None else now
    cutoff = end - float(window_s)
    return [point for point in ordered if cutoff <= point.unix_s <= end]


def points_from_payload(payload: Mapping) -> list[ScrapePoint]:
    """Rebuild points from a ``metrics_history`` verb response."""
    records = payload.get("points", [])
    if not isinstance(records, list):
        raise ValueError("metrics_history payload: 'points' must be a list")
    return [ScrapePoint.from_record(record) for record in records]


def load_history_jsonl(path: str | Path) -> list[ScrapePoint]:
    """Read a JSONL spill (one ``{unix_s, metrics}`` object per line)."""
    points: list[ScrapePoint] = []
    with Path(path).open(encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                points.append(ScrapePoint.from_record(record))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad history record: {exc}"
                ) from exc
    return points


_DURATION = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_duration(text: str) -> float:
    """``"30s"`` / ``"5m"`` / ``"1h"`` / ``"2d"`` (or bare seconds) → seconds."""
    cleaned = str(text).strip()
    suffix = cleaned[-1:].lower()
    if suffix in _DURATION:
        number, scale = cleaned[:-1], _DURATION[suffix]
    else:
        number, scale = cleaned, 1.0
    try:
        seconds = float(number) * scale
    except ValueError:
        raise ValueError(
            f"bad duration {text!r} (use e.g. 30s, 5m, 1h)"
        ) from None
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {text!r}")
    return seconds


# ----------------------------------------------------------------------
# window queries
# ----------------------------------------------------------------------

def _matching_value(
    samples: Sequence[Sample], name: str, labels: Mapping[str, str]
) -> float | None:
    """Sum of ``name`` samples matching the label subset; None if absent."""
    matched = [
        sample
        for sample in samples_named(samples, name)
        if all(sample.label(key) == str(value) for key, value in labels.items())
    ]
    if not matched:
        return None
    return sum(sample.value for sample in matched)


def _window_ends(
    points: Sequence[ScrapePoint],
    window_s: float | None,
    now: float | None,
) -> tuple[ScrapePoint, ScrapePoint] | None:
    pts = points_in_window(points, window_s, now)
    if len(pts) < 2:
        return None
    return pts[0], pts[-1]


def counter_increase(
    points: Sequence[ScrapePoint],
    name: str,
    window_s: float | None = None,
    now: float | None = None,
    **labels: str,
) -> float | None:
    """``increase()``: how much a counter grew across the window.

    ``None`` when the window has fewer than two points, the series is
    absent at the window end, or the counter reset (end < start).  A
    series born mid-window counts from zero, as in PromQL.
    """
    ends = _window_ends(points, window_s, now)
    if ends is None:
        return None
    first, last = ends
    end_value = _matching_value(last.samples, name, labels)
    if end_value is None:
        return None
    start_value = _matching_value(first.samples, name, labels)
    if start_value is None:
        start_value = 0.0
    if end_value < start_value:
        return None  # counter reset mid-window: the delta is meaningless
    return end_value - start_value


def counter_rate(
    points: Sequence[ScrapePoint],
    name: str,
    window_s: float | None = None,
    now: float | None = None,
    **labels: str,
) -> float | None:
    """``rate()``: per-second counter growth across the window."""
    ends = _window_ends(points, window_s, now)
    if ends is None:
        return None
    first, last = ends
    span_s = last.unix_s - first.unix_s
    if span_s <= 0:
        return None
    increase = counter_increase(points, name, window_s, now, **labels)
    if increase is None:
        return None
    return increase / span_s


def gauge_delta(
    points: Sequence[ScrapePoint],
    name: str,
    window_s: float | None = None,
    now: float | None = None,
    **labels: str,
) -> float | None:
    """``delta()``: gauge value at the window end minus the start.

    Unlike counters, a gauge absent at either endpoint yields ``None``
    (there is no meaningful zero to count from) and negative deltas are
    legitimate.
    """
    ends = _window_ends(points, window_s, now)
    if ends is None:
        return None
    start_value = _matching_value(ends[0].samples, name, labels)
    end_value = _matching_value(ends[1].samples, name, labels)
    if start_value is None or end_value is None:
        return None
    return end_value - start_value


def bucket_counts(
    samples: Sequence[Sample], name: str, **labels: str
) -> dict[float, float]:
    """Cumulative ``(le → count)`` for one histogram family, pooled
    across every label combination matching the ``labels`` subset."""
    buckets: dict[float, float] = {}
    for sample in samples_named(samples, name + "_bucket"):
        le = sample.label("le")
        if le is None:
            continue
        if not all(sample.label(k) == str(v) for k, v in labels.items()):
            continue
        bound = math.inf if le == "+Inf" else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + sample.value
    return buckets


def windowed_quantile(
    points: Sequence[ScrapePoint],
    name: str,
    quantile: float,
    window_s: float | None = None,
    now: float | None = None,
    **labels: str,
) -> float | None:
    """A histogram quantile over only the observations inside the window.

    Computed from per-bucket deltas between the window endpoints — the
    ``histogram_quantile(rate(..._bucket[w]))`` estimate.  ``None`` when
    the window has fewer than two points, no new observations landed in
    it, or any bucket went backwards (a reset).
    """
    ends = _window_ends(points, window_s, now)
    if ends is None:
        return None
    start = bucket_counts(ends[0].samples, name, **labels)
    end = bucket_counts(ends[1].samples, name, **labels)
    if not end:
        return None
    deltas: dict[float, float] = {}
    for bound, end_count in end.items():
        delta = end_count - start.get(bound, 0.0)
        if delta < 0:
            return None  # histogram reset mid-window
        deltas[bound] = delta
    return histogram_quantile(quantile, deltas.items())
