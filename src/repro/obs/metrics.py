"""In-process metrics primitives with Prometheus text exposition.

A :class:`MetricsRegistry` holds :class:`Counter` / :class:`Gauge` /
:class:`Histogram` families, each optionally labelled; :meth:`render`
produces the standard Prometheus text format (``# HELP`` / ``# TYPE``
lines, escaped label values, cumulative histogram buckets), so any
scraper — or this repo's own ``metrics`` CLI subcommand and SLO burn
check — can consume it.  Everything is dependency-free stdlib and safe
to update from the service threads: one lock guards registration, one
lock per family guards its children.

The design follows the in-process helpers production provisioning
stacks embed (a registry object owned by each long-lived service, verbs
instrumented at the listener, function gauges for live queue depths)
rather than pulling in a client library the container does not ship.

Exposition is deterministic — families sorted by name, children by
label values — so golden-file tests can pin the exact bytes.

:func:`parse_exposition` is the matching reader: it turns rendered text
back into :class:`Sample` values, which is what the SLO burn check and
the CI ingest-completeness assertion run on.
"""

from __future__ import annotations

import math
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "histogram_quantile",
    "parse_exposition",
    "parse_exposition_types",
]

#: Default histogram buckets for request/phase latencies, in seconds.
#: Sub-millisecond verbs (ping) through multi-second sweep phases.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style sample value: integral floats print as integers."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


class _Metric:
    """One metric family: a name, a type, and children per label values."""

    type_name = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            # An unlabelled family is its own single child.
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child for one combination of label values (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labelled by {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self._children[()]

    def _sorted_children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    def _label_text(self, values: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, values)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self) -> Iterator[str]:
        yield f"# HELP {self.name} {_escape_help(self.help)}"
        yield f"# TYPE {self.name} {self.type_name}"
        for values, child in self._sorted_children():
            yield from self._render_child(values, child)

    def _render_child(self, values: tuple[str, ...], child) -> Iterator[str]:
        raise NotImplementedError


class _CounterValue:
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount}) refused")
        with self._lock:
            self.value += amount


class Counter(_Metric):
    """A monotonically increasing count (requests, records, restarts)."""

    type_name = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _render_child(self, values, child) -> Iterator[str]:
        yield f"{self.name}{self._label_text(values)} {_format_value(child.value)}"


class _GaugeValue:
    __slots__ = ("value", "function", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.function: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Read the gauge from ``function`` at render time (live depths)."""
        self.function = function

    @property
    def current(self) -> float:
        if self.function is not None:
            return float(self.function())
        return self.value


class Gauge(_Metric):
    """A value that can go up and down (queue depth, uptime, lag)."""

    type_name = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default_child().set_function(function)

    @property
    def value(self) -> float:
        return self._default_child().current

    def _render_child(self, values, child) -> Iterator[str]:
        yield f"{self.name}{self._label_text(values)} {_format_value(child.current)}"


class _HistogramValue:
    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            # Per-bucket (non-cumulative) counts; rendering accumulates.
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    break


class _HistogramTimer:
    def __init__(self, child: _HistogramValue) -> None:
        self._child = child

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._child.observe(time.perf_counter() - self._start)
        return False


class _HistogramChild:
    """Per-labelset histogram state plus the observe/time API."""

    __slots__ = ("_value",)

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._value = _HistogramValue(bounds)

    def observe(self, value: float) -> None:
        self._value.observe(value)

    def time(self) -> _HistogramTimer:
        return _HistogramTimer(self._value)

    @property
    def count(self) -> int:
        return self._value.count

    @property
    def sum(self) -> float:
        return self._value.sum


class Histogram(_Metric):
    """A latency/size distribution with cumulative Prometheus buckets."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.bounds = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def time(self) -> _HistogramTimer:
        return self._default_child().time()

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def _render_child(self, values, child) -> Iterator[str]:
        value = child._value
        with value._lock:
            counts = list(value.counts)
            total = value.count
            observed_sum = value.sum
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            label_text = self._label_text(
                values, f'le="{_format_le(bound)}"'
            )
            yield f"{self.name}_bucket{label_text} {cumulative}"
        yield f"{self.name}_sum{self._label_text(values)} {_format_value(observed_sum)}"
        yield f"{self.name}_count{self._label_text(values)} {total}"


class MetricsRegistry:
    """A named collection of metric families with one text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full Prometheus text exposition (trailing newline included)."""
        with self._lock:
            families = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# reading exposition text back (SLO checks, CI assertions)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Sample:
    """One exposed sample: a name, its labels, and the value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.labels:
            if key == name:
                return value
        return default


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(text: str) -> str:
    return (
        text.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> list[Sample]:
    """Parse Prometheus text format back into samples.

    Comment (``# HELP`` / ``# TYPE``) and blank lines are skipped; any
    other unparseable line raises — a scrape that half-parses would make
    SLO checks silently vacuous.
    """
    samples: list[Sample] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels: list[tuple[str, str]] = []
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(label_text):
                labels.append((pair.group(1), _unescape_label_value(pair.group(2))))
                consumed = pair.end()
            remainder = label_text[consumed:].strip(", ")
            if remainder:
                raise ValueError(f"unparseable label text: {label_text!r}")
        samples.append(Sample(
            name=match.group("name"),
            labels=tuple(labels),
            value=_parse_value(match.group("value")),
        ))
    return samples


def parse_exposition_types(text: str) -> dict[str, str]:
    """The ``# TYPE`` declarations of a scrape: family name → type name.

    Window queries and the diff dashboard need to know whether a parsed
    series is a counter (render a rate) or a gauge (render the value);
    the sample lines alone cannot say.
    """
    types: dict[str, str] = {}
    for raw in text.splitlines():
        parts = raw.strip().split()
        if len(parts) == 4 and parts[0] == "#" and parts[1] == "TYPE":
            types[parts[2]] = parts[3]
    return types


def samples_named(samples: Iterable[Sample], name: str) -> list[Sample]:
    """All samples of one metric name (bucket/sum/count names are exact)."""
    return [sample for sample in samples if sample.name == name]


def sum_samples(samples: Iterable[Sample], name: str, **labels: str) -> float:
    """Sum every sample of ``name`` whose labels include ``labels``."""
    total = 0.0
    for sample in samples_named(samples, name):
        if all(sample.label(key) == value for key, value in labels.items()):
            total += sample.value
    return total


def histogram_quantile(
    quantile: float, buckets: Iterable[tuple[float, float]]
) -> float | None:
    """Estimate a quantile from cumulative ``(le, count)`` histogram buckets.

    Linear interpolation within the bucket that crosses the target rank —
    the same estimate ``histogram_quantile()`` makes in PromQL.  Returns
    the sentinel ``None`` (never a guess) whenever the buckets cannot
    support an estimate:

    - the bucket set is empty, or the total count is zero;
    - the cumulative counts are non-monotone or negative (a half-reset
      or corrupted scrape — interpolating over it would fabricate data);
    - every observation sits in the ``+Inf`` bucket, so no finite bound
      constrains the value at all.

    A quantile landing in the ``+Inf`` bucket with *some* finite mass
    clamps to the largest finite bound: the estimate is then a lower
    bound, which is the conservative direction for an SLO check.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    ordered = sorted(buckets, key=lambda pair: pair[0])
    if not ordered or ordered[-1][1] <= 0:
        return None
    previous = 0.0
    for _, cumulative in ordered:
        if cumulative < previous:  # non-monotone: reject, don't extrapolate
            return None
        previous = cumulative
    total = ordered[-1][1]
    rank = quantile * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, cumulative in ordered:
        if cumulative >= rank:
            if bound == math.inf:
                finite = [
                    (b, c) for b, c in ordered if b != math.inf and c > 0
                ]
                return finite[-1][0] if finite else None
            if cumulative == previous_count:
                return bound
            fraction = (rank - previous_count) / (cumulative - previous_count)
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_count = bound, cumulative
    return previous_bound
