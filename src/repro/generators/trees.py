"""Tree generators.

All generators return :class:`networkx.Graph` objects with integer nodes
``0 .. n-1`` and are deterministic for a fixed seed.
"""

from __future__ import annotations

import random

import networkx as nx


def path_graph(n: int) -> nx.Graph:
    """A path on ``n`` nodes."""
    return nx.path_graph(n)


def star_graph(n: int) -> nx.Graph:
    """A star with one centre and ``n - 1`` leaves."""
    if n <= 0:
        return nx.Graph()
    return nx.star_graph(n - 1)


def binary_tree(n: int) -> nx.Graph:
    """The first ``n`` nodes of the complete binary tree (heap numbering)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for child in range(1, n):
        graph.add_edge(child, (child - 1) // 2)
    return graph


def balanced_regular_tree(degree: int, depth: int) -> nx.Graph:
    """A balanced tree whose every non-leaf node has degree ``degree``.

    This is the paper's "regular balanced tree" lower-bound instance: the
    root has ``degree`` children, every other internal node has
    ``degree - 1`` children, and all leaves are at distance ``depth`` from
    the root.
    """
    if degree < 2:
        raise ValueError("the degree of a regular balanced tree must be at least 2")
    graph = nx.Graph()
    graph.add_node(0)
    next_node = 1
    frontier = [0]
    for level in range(depth):
        new_frontier = []
        for parent in frontier:
            children = degree if level == 0 else degree - 1
            for _ in range(children):
                graph.add_edge(parent, next_node)
                new_frontier.append(next_node)
                next_node += 1
        frontier = new_frontier
    return graph


def caterpillar(spine_length: int, legs_per_node: int) -> nx.Graph:
    """A caterpillar: a path spine with ``legs_per_node`` leaves per spine node."""
    graph = nx.path_graph(spine_length)
    next_node = spine_length
    for spine_node in range(spine_length):
        for _ in range(legs_per_node):
            graph.add_edge(spine_node, next_node)
            next_node += 1
    return graph


def spider(num_legs: int, leg_length: int) -> nx.Graph:
    """A spider: ``num_legs`` paths of length ``leg_length`` sharing one endpoint."""
    graph = nx.Graph()
    graph.add_node(0)
    next_node = 1
    for _ in range(num_legs):
        previous = 0
        for _ in range(leg_length):
            graph.add_edge(previous, next_node)
            previous = next_node
            next_node += 1
    return graph


def broom(handle_length: int, bristles: int) -> nx.Graph:
    """A broom: a path of length ``handle_length`` ending in a star of ``bristles`` leaves."""
    graph = nx.path_graph(handle_length)
    centre = handle_length - 1 if handle_length > 0 else 0
    if handle_length == 0:
        graph.add_node(0)
    next_node = max(handle_length, 1)
    for _ in range(bristles):
        graph.add_edge(centre, next_node)
        next_node += 1
    return graph


def bfs_forest_parents(forest: nx.Graph) -> dict:
    """Parent pointers rooting every component of ``forest`` at its
    smallest node (``None`` for roots).

    The canonical input of :func:`repro.baselines.color_forest_three`; on a
    tree the pointers are independent of the traversal order, so any BFS
    yields the same dict.
    """
    parents: dict = {}
    adj = forest.adj
    for component in nx.connected_components(forest):
        root = min(component)
        parents[root] = None
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adj[node]:
                    if neighbor not in parents:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
    return parents


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """A uniformly random labelled tree on ``n`` nodes (via a Prüfer sequence)."""
    if n <= 0:
        return nx.Graph()
    if n == 1:
        graph = nx.Graph()
        graph.add_node(0)
        return graph
    if n == 2:
        graph = nx.Graph()
        graph.add_edge(0, 1)
        return graph
    rng = random.Random(seed)
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(sequence)
