"""Generators for graphs of bounded arboricity.

Theorem 2 / Theorem 15 applies to graphs of arboricity at most ``a``; the
canonical construction of such a graph is a union of ``a`` forests on the
same node set, which is exactly what :func:`forest_union` produces.  Grid
graphs and the planar-like triangulations stand in for the "constant
arboricity, e.g. planar" instances mentioned after Theorem 3.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.generators.trees import random_tree


def forest_union(n: int, arboricity: int, seed: int = 0) -> nx.Graph:
    """A union of ``arboricity`` random forests on the same ``n`` nodes.

    By construction the result has arboricity at most ``arboricity``
    (each forest contributes its edges to one of the required forests).
    Parallel edges collapse, which only lowers the arboricity.
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for forest_index in range(arboricity):
        tree = random_tree(n, seed=rng.randrange(1 << 30))
        relabelled = _random_relabel(tree, n, rng)
        graph.add_edges_from(relabelled.edges())
        del forest_index
    return graph


def _random_relabel(tree: nx.Graph, n: int, rng: random.Random) -> nx.Graph:
    """Relabel a tree's nodes with a random permutation of ``0 .. n-1``."""
    permutation = list(range(n))
    rng.shuffle(permutation)
    mapping = {node: permutation[node] for node in tree.nodes()}
    return nx.relabel_nodes(tree, mapping)


def grid_graph(rows: int, columns: int) -> nx.Graph:
    """A 2D grid graph (planar, arboricity at most 3), relabelled to integers."""
    grid = nx.grid_2d_graph(rows, columns)
    mapping = {node: index for index, node in enumerate(sorted(grid.nodes()))}
    return nx.relabel_nodes(grid, mapping)


def planar_triangulation_like(n: int, seed: int = 0) -> nx.Graph:
    """A maximal-planar-like graph built by repeated triangle insertion.

    Start from a triangle; every new node is connected to the three nodes
    of a uniformly chosen existing triangle.  The result is planar with
    ``3n - 8`` edges (arboricity at most 3), mimicking the Apollonian
    networks often used as dense planar test instances.
    """
    if n < 3:
        graph = nx.complete_graph(max(n, 0))
        return graph
    rng = random.Random(seed)
    graph = nx.complete_graph(3)
    triangles = [(0, 1, 2)]
    for new_node in range(3, n):
        # Replace a uniformly chosen face by the three faces created when a
        # node is inserted into it (the Apollonian construction); the chosen
        # face must be removed to keep the graph planar.
        index = rng.randrange(len(triangles))
        a, b, c = triangles.pop(index)
        graph.add_edges_from([(new_node, a), (new_node, b), (new_node, c)])
        triangles.extend([(a, b, new_node), (a, c, new_node), (b, c, new_node)])
    return graph


def random_graph_with_max_degree(n: int, max_degree: int, seed: int = 0) -> nx.Graph:
    """A random graph in which no node exceeds ``max_degree``.

    Used to exercise the truly local baselines as a function of Δ.  Edge
    endpoints are sampled from a candidate list holding only the nodes
    with residual degree budget; saturated nodes are swap-popped out, so
    the expected cost is ``O(n · Δ)`` total rather than the seed's
    ``4 · n · Δ`` uniform samples that mostly hit saturated nodes late in
    the construction.
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n < 2 or max_degree < 1:
        return graph

    residual = [max_degree] * n
    candidates = list(range(n))
    position = list(range(n))

    def saturate(node: int) -> None:
        # Swap-pop ``node`` out of the candidate list in O(1).
        slot = position[node]
        last = candidates[-1]
        candidates[slot] = last
        position[last] = slot
        candidates.pop()
        position[node] = -1

    # Stop once the candidate pool is (nearly) exhausted or repeated
    # draws stop finding fresh edges among the few remaining candidates.
    stall_limit = 64
    stalls = 0
    while len(candidates) >= 2 and stalls < stall_limit:
        u = candidates[rng.randrange(len(candidates))]
        v = candidates[rng.randrange(len(candidates))]
        if u == v or graph.has_edge(u, v):
            stalls += 1
            continue
        stalls = 0
        graph.add_edge(u, v)
        residual[u] -= 1
        residual[v] -= 1
        if residual[u] == 0:
            saturate(u)
        if residual[v] == 0:
            saturate(v)
    return graph
