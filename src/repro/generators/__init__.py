"""Instance generators: trees, regular balanced trees and bounded-arboricity graphs.

The paper's lower-bound instances are regular balanced trees; its upper
bounds apply to all trees and, for the edge problems, to all graphs of
bounded arboricity (e.g. planar graphs).  This package provides
deterministic, seedable generators for all of those families, used by the
test-suite and the experiment harness.
"""

from repro.generators.trees import (
    balanced_regular_tree,
    bfs_forest_parents,
    binary_tree,
    caterpillar,
    path_graph,
    random_tree,
    spider,
    star_graph,
    broom,
)
from repro.generators.bounded_arboricity import (
    forest_union,
    grid_graph,
    planar_triangulation_like,
    random_graph_with_max_degree,
)

__all__ = [
    "balanced_regular_tree",
    "bfs_forest_parents",
    "binary_tree",
    "caterpillar",
    "path_graph",
    "random_tree",
    "spider",
    "star_graph",
    "broom",
    "forest_union",
    "grid_graph",
    "planar_triangulation_like",
    "random_graph_with_max_degree",
]
