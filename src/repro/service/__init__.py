"""The distributed sweep service.

Six layers turn the single-machine experiment runner into a
multi-worker, multi-machine, resumable, mergeable, elastic sweep
platform:

* :mod:`repro.service.shard` — deterministic ``i/k`` partitioning of a
  suite's cells by fingerprint (implemented in
  :mod:`repro.experiments.shard`, re-exported here), so independent
  workers and machines run disjoint shards (``run --shard i/k``);
* :mod:`repro.service.pool` — :class:`WorkerPool`, warm worker processes
  reused across sweeps with batched cell submission, amortising process
  startup over many small cells;
* :mod:`repro.service.protocol` — the transport-neutral line-JSON wire
  protocol: :class:`Endpoint` addresses (Unix path or ``host:port``),
  the shared :class:`LineServer` listener (accept loops, per-connection
  threads, TCP token auth) that the daemon and the collector are verb
  tables on top of;
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — a job
  queue speaking the protocol over a local socket and, with
  ``--listen``, over token-authenticated TCP (``serve`` / ``submit``
  subcommands), so many clients feed one long-lived pool; the ``report``
  verb serves rendered report bundles for finished jobs;
* :mod:`repro.service.collector` — :class:`ResultCollector`, the live
  fan-in: shard workers (``run --shard i/k --collector host:port``)
  stream each completed cell record over the wire into one
  fingerprint-deduplicated store that ``report`` consumes unchanged —
  the cross-machine replacement for after-the-fact file merging, which
  remains available via :func:`repro.experiments.store.merge_result_files`
  and shares its duplicate policy
  (:func:`repro.experiments.store.resolve_duplicate`);
* :mod:`repro.service.leases` — the elastic control plane:
  :class:`LeaseTable` tracks registered workers, heartbeats and
  per-fingerprint leases inside the collector (``register`` /
  ``heartbeat`` / ``lease`` / ``fleet_status`` verbs; a ``push``
  completes the cell's lease), and :class:`FleetWorker` is the pull
  side behind ``run <suite> --fleet host:port`` — workers lease batches
  instead of computing a static shard, dead workers' leases expire and
  are reassigned to survivors, and replacement workers resume from the
  collector's completed fingerprints.
"""

from repro.service.client import (
    CollectorSink,
    ServiceClient,
    ServiceConnection,
    ServiceError,
    ServiceTransportError,
)
from repro.service.collector import ResultCollector
from repro.service.daemon import DEFAULT_SOCKET, Job, SweepDaemon
from repro.service.leases import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_LEASE_BATCH,
    LEASE_FATES,
    FleetWorker,
    LeaseTable,
)
from repro.service.pool import (
    DEFAULT_BATCH_SIZE,
    CellOutcome,
    WorkerPool,
    batch_cells,
)
from repro.service.protocol import (
    AUTH_TOKEN_ENV,
    Endpoint,
    LineServer,
    ProtocolError,
    connect_endpoint,
    parse_endpoint,
)
from repro.service.shard import ShardSpec, partition, shard_cells

__all__ = [
    "CollectorSink",
    "ServiceClient",
    "ServiceConnection",
    "ServiceError",
    "ServiceTransportError",
    "ResultCollector",
    "DEFAULT_SOCKET",
    "Job",
    "SweepDaemon",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_LEASE_BATCH",
    "LEASE_FATES",
    "FleetWorker",
    "LeaseTable",
    "DEFAULT_BATCH_SIZE",
    "CellOutcome",
    "WorkerPool",
    "batch_cells",
    "AUTH_TOKEN_ENV",
    "Endpoint",
    "LineServer",
    "ProtocolError",
    "connect_endpoint",
    "parse_endpoint",
    "ShardSpec",
    "partition",
    "shard_cells",
]
