"""The distributed sweep service.

Four layers turn the single-machine experiment runner into a
multi-worker, resumable, mergeable sweep platform:

* :mod:`repro.service.shard` — deterministic ``i/k`` partitioning of a
  suite's cells by fingerprint (implemented in
  :mod:`repro.experiments.shard`, re-exported here), so independent
  workers and machines run disjoint shards (``run --shard i/k``);
* :mod:`repro.service.pool` — :class:`WorkerPool`, warm worker processes
  reused across sweeps with batched cell submission, amortising process
  startup over many small cells;
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — a job
  queue speaking line-delimited JSON over a local socket (``serve`` /
  ``submit`` subcommands) so many clients feed one long-lived pool;
* the merge layer lives with the store
  (:func:`repro.experiments.store.merge_result_files`): sharded JSONL
  stores union by fingerprint into one store that ``report`` consumes
  unchanged.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import DEFAULT_SOCKET, Job, SweepDaemon
from repro.service.pool import (
    DEFAULT_BATCH_SIZE,
    CellOutcome,
    WorkerPool,
    batch_cells,
)
from repro.service.shard import ShardSpec, partition, shard_cells

__all__ = [
    "ServiceClient",
    "ServiceError",
    "DEFAULT_SOCKET",
    "Job",
    "SweepDaemon",
    "DEFAULT_BATCH_SIZE",
    "CellOutcome",
    "WorkerPool",
    "batch_cells",
    "ShardSpec",
    "partition",
    "shard_cells",
]
