"""Elastic fleet scheduling: leases over the cell-fingerprint space.

Static ``--shard i/k`` partitioning assumes ``k`` healthy, equal
machines for the whole sweep — one lost worker strands its shard until
a human reruns it.  The lease model drops that assumption: workers
*register* with the collector, *pull* batches of pending cells under
short-lived leases, renew them from a background heartbeat thread, and
stream each completed cell back through the ordinary ``push`` verb
(push doubles as lease completion).  A lease whose worker stops
heartbeating expires and its fingerprints return to the pending set,
where any live worker picks them up on its next ``lease`` call — the
robustness jump from "k machines" to "whatever shows up".

Two halves live here:

:class:`LeaseTable`
    The collector-side scheduler state: registered workers, heartbeat
    deadlines, active leases and the completed-fingerprint set, all
    under one lock and all on the **monotonic** clock (a wall-clock step
    must never mass-expire leases).  Expiry is lazy — checked at the
    top of every verb — so the table needs no background thread of its
    own.  Every lease event is reported through an optional callback,
    which is how the collector turns scheduling into
    ``fleet_leases_total{fate}`` metrics without this module importing
    any observability code.

:class:`FleetWorker`
    The worker-side loop behind ``run <suite> --fleet host:port``: it
    offers the suite's fingerprint universe, executes granted batches on
    a warm :class:`~repro.service.pool.WorkerPool`, appends each result
    to its local store and pushes it via
    :class:`~repro.service.client.CollectorSink`.  A replacement worker
    "resumes" a dead machine's sweep with no JSONL copying at all: the
    collector already knows the completed fingerprints and simply never
    grants them again.

Lease lifecycle fates (the ``fate`` label of ``fleet_leases_total``):

``granted``
    A pending fingerprint was handed to a worker.
``renewed``
    A heartbeat (or an explicit re-grant) pushed a lease deadline out.
``expired``
    The deadline passed without a heartbeat; the fingerprint is pending
    again.
``released``
    The worker gave the fingerprint back voluntarily (its cell raised),
    so another worker may try it.
``reassigned``
    A previously expired or released fingerprint was granted again —
    the recovery event the elastic-fleet smoke test asserts on.
``completed``
    A pushed record retired the lease.
"""

from __future__ import annotations

import os
import socket as socket_module
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.runner import CellFailure, SweepReport
from repro.experiments.spec import Suite
from repro.experiments.store import CellResult, ResultStore
from repro.service.client import CollectorSink, ServiceClient
from repro.service.pool import DEFAULT_BATCH_SIZE, WorkerPool

__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_LEASE_BATCH",
    "LEASE_FATES",
    "FleetWorker",
    "Lease",
    "LeaseTable",
    "WorkerEntry",
]

#: How often a fleet worker heartbeats, and the base unit of the lease
#: TTL.  The collector hands this to workers at registration, so one
#: ``--heartbeat-interval`` flag tunes the whole fleet.
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0

#: Lease TTL as a multiple of the heartbeat interval: a worker must miss
#: two consecutive heartbeats before its leases are up for reassignment.
DEFAULT_TTL_HEARTBEATS = 2.0

#: Fingerprints per lease grant (mirrors the pool's task batch size).
DEFAULT_LEASE_BATCH = DEFAULT_BATCH_SIZE

#: Every fate the event callback can report (metrics label values).
LEASE_FATES = (
    "granted", "renewed", "expired", "released", "reassigned", "completed",
)


@dataclass
class WorkerEntry:
    """One registered fleet worker, as the collector sees it."""

    worker_id: str
    name: str
    registered_unix: float
    last_seen: float  # monotonic
    heartbeats: int = 0
    completed: int = 0

    def describe(self, alive: bool, leases: int) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "state": "alive" if alive else "lost",
            "registered_unix": self.registered_unix,
            "heartbeats": self.heartbeats,
            "completed": self.completed,
            "leases": leases,
        }


@dataclass
class Lease:
    """One fingerprint on loan to one worker, with a monotonic deadline."""

    fingerprint: str
    worker_id: str
    granted_at: float  # monotonic
    deadline: float  # monotonic
    renewals: int = 0

    def age_s(self, now: float) -> float:
        return max(0.0, now - self.granted_at)


class LeaseTable:
    """Worker registry + lease ledger over the cell-fingerprint space.

    Thread-safe: every public method takes the table lock, and every
    mutating method first sweeps expired leases, so callers never see a
    lease that has outlived its deadline.  ``clock`` is injectable for
    deterministic tests and defaults to :func:`time.monotonic`.
    ``on_event(fate, age_s)`` fires once per lease event (``age_s`` is
    ``None`` except on ``completed``/``expired``/``released``, where it
    is the lease's age) — the collector points it at its metrics.
    """

    def __init__(
        self,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        lease_ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_event: Callable[[str, float | None], None] | None = None,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat interval must be positive, got {heartbeat_interval_s}"
            )
        if lease_ttl_s is None:
            lease_ttl_s = heartbeat_interval_s * DEFAULT_TTL_HEARTBEATS
        if lease_ttl_s < heartbeat_interval_s:
            raise ValueError(
                f"lease TTL ({lease_ttl_s}s) must be at least the heartbeat "
                f"interval ({heartbeat_interval_s}s) or every lease expires "
                f"between beats"
            )
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.lease_ttl_s = float(lease_ttl_s)
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerEntry] = {}
        self._leases: dict[str, Lease] = {}
        self._completed: set[str] = set()
        # Fingerprints whose lease expired or was released: granting one
        # of these again is the "reassigned" recovery event.
        self._orphaned: set[str] = set()
        self._worker_counter = 0
        self.counts: dict[str, int] = {fate: 0 for fate in LEASE_FATES}

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _event(self, fate: str, age_s: float | None = None) -> None:
        self.counts[fate] += 1
        if self._on_event is not None:
            self._on_event(fate, age_s)

    def _expire(self, now: float) -> None:
        """Sweep leases past their deadline back into the pending set."""
        expired = [
            lease for lease in self._leases.values() if lease.deadline < now
        ]
        for lease in expired:
            del self._leases[lease.fingerprint]
            self._orphaned.add(lease.fingerprint)
            self._event("expired", lease.age_s(now))

    def _alive(self, worker: WorkerEntry, now: float) -> bool:
        return (now - worker.last_seen) <= self.lease_ttl_s

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def register(self, name: str) -> dict[str, Any]:
        """Add a worker; returns its id and the fleet cadence settings."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            self._worker_counter += 1
            worker_id = f"worker-{self._worker_counter}"
            self._workers[worker_id] = WorkerEntry(
                worker_id=worker_id,
                name=str(name),
                registered_unix=time.time(),
                last_seen=now,
            )
            return {
                "worker_id": worker_id,
                "heartbeat_interval_s": self.heartbeat_interval_s,
                "lease_ttl_s": self.lease_ttl_s,
            }

    def heartbeat(self, worker_id: str) -> dict[str, Any] | None:
        """Mark the worker live and renew all its leases.

        Returns ``None`` for an unknown worker — the collector answers
        ``known: false`` and the worker re-registers, which is how a
        fleet survives a collector restart (the lease table is in-memory
        state; the *results* are durable in the store).
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            worker = self._workers.get(worker_id)
            if worker is None:
                return None
            worker.last_seen = now
            worker.heartbeats += 1
            renewed = 0
            for lease in self._leases.values():
                if lease.worker_id == worker_id:
                    lease.deadline = now + self.lease_ttl_s
                    lease.renewals += 1
                    renewed += 1
                    self._event("renewed")
            return {"leases": renewed}

    def grant(
        self,
        worker_id: str,
        offered: Sequence[str],
        limit: int = DEFAULT_LEASE_BATCH,
        release: Sequence[str] = (),
    ) -> dict[str, Any] | None:
        """Lease up to ``limit`` pending fingerprints from ``offered``.

        ``offered`` is the worker's whole fingerprint universe (its view
        of the suite); the table subtracts what is already completed or
        actively leased.  ``release`` hands back fingerprints the worker
        will not finish (failed cells) so another worker may try them.
        Returns ``None`` for an unknown worker.  The reply's ``done``
        flag is true only when every offered fingerprint is completed —
        an empty grant with ``done`` false means other workers hold the
        remainder, so the caller should poll again, not exit.
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            worker = self._workers.get(worker_id)
            if worker is None:
                return None
            worker.last_seen = now
            for fingerprint in release:
                lease = self._leases.get(fingerprint)
                if lease is not None and lease.worker_id == worker_id:
                    del self._leases[fingerprint]
                    self._orphaned.add(fingerprint)
                    self._event("released", lease.age_s(now))
            pending = [
                fingerprint
                for fingerprint in offered
                if fingerprint not in self._completed
                and fingerprint not in self._leases
            ]
            granted = pending[:limit]
            for fingerprint in granted:
                self._leases[fingerprint] = Lease(
                    fingerprint=fingerprint,
                    worker_id=worker_id,
                    granted_at=now,
                    deadline=now + self.lease_ttl_s,
                )
                self._event("granted")
                if fingerprint in self._orphaned:
                    self._orphaned.discard(fingerprint)
                    self._event("reassigned")
            outstanding = sum(
                1 for fingerprint in offered if fingerprint in self._leases
            )
            return {
                "granted": granted,
                "pending": len(pending) - len(granted),
                "outstanding": outstanding - len(granted),
                "done": not pending and outstanding == 0,
            }

    def complete(self, fingerprint: str) -> None:
        """Mark a fingerprint done; retires its lease if one is active.

        Wired to the collector's ``push`` ingest, so completion needs no
        verb of its own — and a record streamed by a *non*-fleet shard
        worker still informs the scheduler.
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            lease = self._leases.pop(fingerprint, None)
            self._completed.add(fingerprint)
            self._orphaned.discard(fingerprint)
            if lease is not None:
                worker = self._workers.get(lease.worker_id)
                if worker is not None:
                    worker.completed += 1
                self._event("completed", lease.age_s(now))

    def seed_completed(self, fingerprints: Iterable[str]) -> None:
        """Preload completed fingerprints from a restarted collector's
        store (verified records only — mirroring resume semantics)."""
        with self._lock:
            self._completed.update(fingerprints)

    # ------------------------------------------------------------------
    # introspection (fleet_status verb, metrics gauges)
    # ------------------------------------------------------------------
    def worker_counts(self) -> dict[str, int]:
        now = self._clock()
        with self._lock:
            counts = {"alive": 0, "lost": 0}
            for worker in self._workers.values():
                counts["alive" if self._alive(worker, now) else "lost"] += 1
            return counts

    def oldest_lease_age_s(self) -> float:
        """Age of the oldest *active* lease (0 when none) — the
        lease-stuck SLO's input.  Deliberately does not sweep: a stuck
        collector clock or a wedged verb path must not hide the age."""
        now = self._clock()
        with self._lock:
            if not self._leases:
                return 0.0
            return max(lease.age_s(now) for lease in self._leases.values())

    def active_leases(self) -> int:
        with self._lock:
            return len(self._leases)

    def completed_count(self) -> int:
        with self._lock:
            return len(self._completed)

    def fleet_status(self) -> dict[str, Any]:
        """The ``fleet_status`` verb payload: workers, leases, counters."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            held: dict[str, int] = {}
            for lease in self._leases.values():
                held[lease.worker_id] = held.get(lease.worker_id, 0) + 1
            workers = [
                worker.describe(
                    alive=self._alive(worker, now),
                    leases=held.get(worker.worker_id, 0),
                )
                for worker in self._workers.values()
            ]
            oldest = max(
                (lease.age_s(now) for lease in self._leases.values()),
                default=0.0,
            )
            return {
                "heartbeat_interval_s": self.heartbeat_interval_s,
                "lease_ttl_s": self.lease_ttl_s,
                "workers": workers,
                "active_leases": len(self._leases),
                "oldest_lease_age_s": oldest,
                "completed": len(self._completed),
                "lease_counts": dict(self.counts),
            }


def _default_worker_name() -> str:
    return f"{socket_module.gethostname()}-{os.getpid()}"


class FleetWorker:
    """Pull-based sweep worker for ``run <suite> --fleet host:port``.

    Instead of computing a static shard, the worker registers with the
    collector, then loops: lease a batch of pending fingerprints,
    execute the cells on a warm :class:`WorkerPool`, append each result
    to the local store and push it (push retires the lease).  A
    background heartbeat thread renews the worker's leases every
    ``heartbeat_interval_s`` (the cadence the collector hands out at
    registration), so a cell may run far longer than the lease TTL
    without losing its lease.  Failed cells are *released* back to the
    fleet and excluded from this worker's future offers — another
    machine may still try them, and local resume retries them next
    sweep, exactly like the static path.

    Unlike the fail-soft ``--collector`` sink of a static shard run, a
    push failure here aborts the run: in fleet mode the collector *is*
    the control plane, and a worker that cannot push cannot complete
    leases either.  The local store keeps everything already executed,
    so a rerun resumes collector-aware with no work lost.
    """

    def __init__(
        self,
        suite: Suite,
        store: ResultStore,
        fleet: str,
        token: str | None = None,
        jobs: int = 1,
        smoke: bool = False,
        sizes: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        engine: str | None = None,
        lease_batch: int = DEFAULT_LEASE_BATCH,
        name: str | None = None,
        progress: Callable[[CellResult], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        if lease_batch < 1:
            raise ValueError(f"lease batch must be at least 1, got {lease_batch}")
        self.suite = suite
        self.store = store
        self.fleet = fleet
        self.token = token
        self.jobs = jobs
        self.smoke = smoke
        self.sizes = sizes
        self.seeds = seeds
        self.engine = engine
        self.lease_batch = lease_batch
        self.name = name if name else _default_worker_name()
        self.progress = progress
        self.worker_id: str | None = None
        self.heartbeat_interval_s = DEFAULT_HEARTBEAT_INTERVAL_S
        self.pushed = 0
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _register(self, client: ServiceClient) -> None:
        reply = client.register(self.name)
        self.worker_id = reply["worker_id"]
        self.heartbeat_interval_s = float(reply["heartbeat_interval_s"])

    def _heartbeat_loop(self, client: ServiceClient) -> None:
        """Renew leases until told to stop; re-register if forgotten.

        Transient heartbeat failures are swallowed — the lease loop
        surfaces a real collector outage on its next request, and one
        missed beat inside the TTL costs nothing.
        """
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                reply = client.heartbeat(self.worker_id)
                if not reply.get("known", True):
                    self._register(client)
            except Exception:  # noqa: BLE001 - transient by design
                continue

    @property
    def poll_interval_s(self) -> float:
        """How long to idle between empty grants: half a heartbeat, so
        a reassignable (expired) lease is picked up well inside the
        2×-heartbeat recovery budget."""
        return max(0.05, self.heartbeat_interval_s / 2)

    # ------------------------------------------------------------------
    def run(self) -> SweepReport:
        """Lease, execute and stream until the suite is fleet-complete."""
        start = time.perf_counter()
        cells = self.suite.cells(
            smoke=self.smoke, sizes=self.sizes, seeds=self.seeds
        )
        by_fingerprint = {cell.fingerprint: cell for cell in cells}
        report = SweepReport(
            suite=self.suite.name,
            total_cells=len(cells),
            skipped=0,
            executed=0,
            unverified=0,
        )
        pool = WorkerPool(
            workers=self.jobs,
            batch_size=min(self.lease_batch, DEFAULT_BATCH_SIZE),
        )
        # Fork the workers before any thread or socket exists: the
        # children must not inherit a mid-flight connection or a lock
        # the heartbeat thread holds.
        pool.start()
        client = ServiceClient(self.fleet, token=self.token)
        sink = CollectorSink(client)
        self._register(client)
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(client,),
            name=f"fleet-heartbeat-{self.name}",
            daemon=True,
        )
        heartbeat.start()
        failed: set[str] = set()
        release: list[str] = []
        try:
            while True:
                offers = [
                    fingerprint
                    for fingerprint in by_fingerprint
                    if fingerprint not in failed
                ]
                reply = client.lease(
                    self.worker_id, offers,
                    limit=self.lease_batch, release=release,
                )
                release = []
                if not reply.get("known", True):
                    # The collector restarted and forgot us; re-register
                    # and retry — completed work is durable in its store.
                    self._register(client)
                    continue
                granted = [
                    fingerprint
                    for fingerprint in reply.get("granted", [])
                    if fingerprint in by_fingerprint
                ]
                if granted:
                    batch = [by_fingerprint[f] for f in granted]
                    for outcome in pool.submit_sweep(
                        self.suite.name, batch, engine=self.engine
                    ):
                        if outcome.error is not None:
                            report.failures.append(
                                CellFailure(outcome.cell, outcome.error)
                            )
                            failed.add(outcome.cell.fingerprint)
                            release.append(outcome.cell.fingerprint)
                            continue
                        self.store.append(outcome.result)
                        report.executed += 1
                        if not outcome.result.verified:
                            report.unverified += 1
                        sink(outcome.result)
                        self.pushed += 1
                        if self.progress is not None:
                            self.progress(outcome.result)
                    continue
                if reply.get("done"):
                    break
                # Nothing pending for us right now, but other workers
                # hold leases (or everything left is failed-everywhere):
                # wait half a beat and ask again — if a holder dies, its
                # expired leases land here.
                self._stop.wait(self.poll_interval_s)
        finally:
            self._stop.set()
            heartbeat.join(timeout=self.heartbeat_interval_s * 2 + 1)
            sink.close()
            pool.shutdown()
        report.skipped = (
            report.total_cells - report.executed - len(report.failures)
        )
        report.wall_clock_s = time.perf_counter() - start
        return report
