"""The wire protocol of the sweep service: line-delimited JSON over a
local stream socket.

Each request and each response is exactly one JSON object on one
``\\n``-terminated line, so the protocol is trivially debuggable
(``socat - UNIX-CONNECT:experiments/service.sock`` and type) and needs no
framing beyond ``readline``.  Requests carry an ``op`` field naming the
verb (``ping`` / ``submit`` / ``status`` / ``results`` / ``shutdown``);
responses always carry ``ok`` (bool) and, when ``ok`` is false, an
``error`` string.

One connection may issue any number of requests; the daemon answers each
line with one line and closes when the client half-closes.
"""

from __future__ import annotations

import json
import socket
from typing import Any

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "send_message",
    "recv_message",
    "error_response",
    "ok_response",
]

#: Upper bound on one protocol line.  Results of a large job dominate; a
#: 64 MiB line is ~100k cell records, far beyond a sane single response.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed or oversized protocol line."""


def send_message(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Serialise ``payload`` as one JSON line and send it whole."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    sock.sendall(line.encode("utf-8"))


def recv_message(reader) -> dict[str, Any] | None:
    """Read one JSON line from a file-like reader; ``None`` on EOF.

    ``reader`` is a binary file object (``socket.makefile("rb")``); using
    the file layer gets buffered ``readline`` for free.
    """
    line = reader.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"malformed protocol line: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return payload


def ok_response(**fields: Any) -> dict[str, Any]:
    return {"ok": True, **fields}


def error_response(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}
