"""The wire protocol of the sweep service: line-delimited JSON over a
stream socket — Unix-domain or TCP.

Each request and each response is exactly one JSON object on one
``\\n``-terminated line, so the protocol is trivially debuggable
(``socat - UNIX-CONNECT:experiments/service.sock`` — or
``socat - TCP:host:port`` — and type) and needs no framing beyond
``readline``.  Requests carry an ``op`` field naming the verb;
responses always carry ``ok`` (bool) and, when ``ok`` is false, an
``error`` string.

One connection may issue any number of requests; the server answers each
line with one line and closes when the client half-closes.  The framing
contract is transport-neutral — the conformance suite
(``tests/test_protocol_conformance.py``) pins it over both socket
families.

Transports and endpoints
------------------------
:func:`parse_endpoint` turns an address string into an :class:`Endpoint`:
``host:port`` (numeric port) means TCP, anything else is a Unix-socket
path.  :class:`LineServer` is the shared listener abstraction — it owns
the accept loop, the per-connection threads and the per-request token
check, and dispatches each decoded request to a handler callable.  The
sweep daemon and the result collector are both thin verb tables on top
of it.

Authentication
--------------
TCP crosses machine boundaries, so TCP listeners *require* a shared
token (``--token`` or the :data:`AUTH_TOKEN_ENV` environment variable):
every request on a TCP connection must carry a matching ``"token"``
field or it is refused and the connection closed.  Unix-socket
connections stay guarded by filesystem permissions and need no token.
"""

from __future__ import annotations

import hmac
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.obs import MetricsRegistry

__all__ = [
    "AUTH_TOKEN_ENV",
    "MAX_LINE_BYTES",
    "MAX_SOCKET_PATH_BYTES",
    "Endpoint",
    "LineServer",
    "ProtocolError",
    "ServiceError",
    "ServiceTransportError",
    "check_unix_socket_path",
    "connect_endpoint",
    "error_response",
    "metrics_history_response",
    "ok_response",
    "parse_endpoint",
    "recv_message",
    "resolve_token",
    "send_message",
    "unix_socket_is_live",
]

#: Upper bound on one protocol line.  Results of a large job dominate; a
#: 64 MiB line is ~100k cell records, far beyond a sane single response.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Environment variable holding the shared TCP auth token; ``--token``
#: flags override it.
AUTH_TOKEN_ENV = "REPRO_SERVICE_TOKEN"

#: Portable ceiling on an ``AF_UNIX`` socket path, in bytes.  ``sun_path``
#: is a fixed-size buffer: 108 bytes on Linux, 104 on the BSDs / macOS,
#: both including the trailing NUL — 103 payload bytes fit everywhere.
#: ``bind`` past the limit fails with an opaque ``OSError``, so servers
#: check up front and name the offending path instead (deep CI tmpdirs
#: hit this routinely).
MAX_SOCKET_PATH_BYTES = 103


class ProtocolError(RuntimeError):
    """A malformed or oversized protocol line."""


class ServiceError(RuntimeError):
    """A service-level failure: the peer answered ``ok: false``, could not
    be reached, or a server could not come up on its endpoint."""


class ServiceTransportError(ServiceError):
    """The transport failed underneath a request: connect, send or
    receive died, or the peer closed without answering.

    Distinct from the base :class:`ServiceError` raised for an
    ``ok: false`` *response*: an error response arrives over a healthy
    connection, so retrying it on a fresh connection just repeats the
    same doomed request.  Streaming callers (``CollectorSink``)
    reconnect-and-retry on this subclass only and propagate server
    error responses untouched."""


def send_message(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Serialise ``payload`` as one JSON line and send it whole."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    sock.sendall(line.encode("utf-8"))


def recv_message(reader) -> dict[str, Any] | None:
    """Read one JSON line from a file-like reader; ``None`` on EOF.

    ``reader`` is a binary file object (``socket.makefile("rb")``); using
    the file layer gets buffered ``readline`` for free.
    """
    line = reader.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except ValueError as error:
        # JSONDecodeError for syntax, UnicodeDecodeError for byte garbage
        # that is not even UTF-8 — both are ValueErrors, both malformed.
        raise ProtocolError(f"malformed protocol line: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return payload


def ok_response(**fields: Any) -> dict[str, Any]:
    return {"ok": True, **fields}


def error_response(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}


def metrics_history_response(history, request: dict[str, Any]) -> dict[str, Any]:
    """The shared ``metrics_history`` verb body for both services.

    Takes one fresh snapshot first — the reply always includes the
    state at request time, even on a just-started server — then returns
    the (bounded) retained window.  ``window_s`` restricts to a trailing
    window in seconds; ``max_points`` caps the reply below the server's
    own hard cap.
    """
    window_s = request.get("window_s")
    if window_s is not None:
        if not isinstance(window_s, (int, float)) or isinstance(window_s, bool) \
                or window_s <= 0:
            return error_response(
                f"metrics_history: 'window_s' must be a positive number, "
                f"got {window_s!r}"
            )
    max_points = request.get("max_points")
    if max_points is not None:
        if not isinstance(max_points, int) or isinstance(max_points, bool) \
                or max_points < 1:
            return error_response(
                f"metrics_history: 'max_points' must be a positive integer, "
                f"got {max_points!r}"
            )
    history.snapshot()
    return ok_response(**history.payload(window_s=window_s, max_points=max_points))


def resolve_token(token: str | None) -> str | None:
    """An explicit token, else the :data:`AUTH_TOKEN_ENV` variable, else None."""
    if token:
        return token
    return os.environ.get(AUTH_TOKEN_ENV) or None


# ----------------------------------------------------------------------
# endpoints: one address grammar for both transports
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Endpoint:
    """A parsed service address: a Unix-socket path or a TCP host/port."""

    kind: str  # "unix" | "tcp"
    path: str | None = None
    host: str | None = None
    port: int | None = None

    @property
    def is_tcp(self) -> bool:
        return self.kind == "tcp"

    def __str__(self) -> str:
        if self.is_tcp:
            host = f"[{self.host}]" if ":" in (self.host or "") else self.host
            return f"{host}:{self.port}"
        return str(self.path)


def parse_endpoint(text: str | Path | Endpoint) -> Endpoint:
    """Parse ``host:port`` as TCP, anything else as a Unix-socket path.

    The rule is syntactic and unambiguous: an address whose final
    ``:``-separated field is a valid port number (and that contains no
    path separator) is TCP — ``127.0.0.1:7919``, ``[::1]:7919``,
    ``sweeps.example.org:7919``.  Everything else — ``/tmp/svc.sock``,
    ``experiments/service.sock``, even ``weird:name`` with a non-numeric
    tail — is a filesystem path.
    """
    if isinstance(text, Endpoint):
        return text
    text = str(text)
    if not text:
        raise ValueError("empty service endpoint")
    if "/" not in text and ":" in text:
        host, _, port_text = text.rpartition(":")
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]
        if host and port_text.isdigit():
            port = int(port_text)
            if port > 65535:
                raise ValueError(f"TCP port out of range in endpoint {text!r}")
            return Endpoint(kind="tcp", host=host, port=port)
    return Endpoint(kind="unix", path=text)


def connect_endpoint(endpoint: Endpoint, timeout: float) -> socket.socket:
    """Open a connected stream socket to ``endpoint`` (either transport)."""
    if endpoint.is_tcp:
        return socket.create_connection((endpoint.host, endpoint.port), timeout)
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
        raise ServiceError("Unix-socket endpoints require a POSIX platform")
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(str(endpoint.path))
    except BaseException:
        sock.close()
        raise
    return sock


def check_unix_socket_path(path: str | Path, flag: str = "--socket") -> None:
    """Refuse an over-long ``AF_UNIX`` path with a clear, named error."""
    path_bytes = len(os.fsencode(str(path)))
    if path_bytes > MAX_SOCKET_PATH_BYTES:
        raise ServiceError(
            f"socket path is {path_bytes} bytes, over the "
            f"{MAX_SOCKET_PATH_BYTES}-byte AF_UNIX limit: "
            f"{path} — pass a shorter {flag} path (e.g. under /tmp)"
        )


def unix_socket_is_live(path: str | Path) -> bool:
    """Whether something is accepting connections on the socket file."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(str(path))
    except OSError:
        return False
    else:
        return True
    finally:
        probe.close()


# ----------------------------------------------------------------------
# the shared listener: accept loop + per-connection request/response
# ----------------------------------------------------------------------

class LineServer:
    """Transport-neutral request/response server over the line protocol.

    One :class:`LineServer` owns any number of listeners (Unix and/or
    TCP), an accept thread per listener, and one thread per connection.
    Every decoded request is passed to ``handler(request)`` which returns
    the response dict; handler exceptions become ``ok: false`` responses
    and the connection keeps serving.  ``close_after(request, response)``
    (when given) lets the owner close a connection after a terminal verb
    such as ``shutdown``.

    Requests on TCP connections must carry a ``"token"`` field matching
    the server token (compared constant-time); the field is stripped
    before the handler sees the request.  Unix connections skip the check
    — the socket file's permissions are the boundary.

    Every server self-instruments into ``registry`` (its own private
    :class:`~repro.obs.MetricsRegistry` when none is shared in): request
    counts and latency per verb, auth failures, malformed lines and
    connection churn, labelled by the server ``name``.  The ``verb``
    label is clamped to the ``verbs`` tuple the owner declares — any
    unknown ``op`` counts as ``"other"``, so an abusive client cannot
    mint unbounded label cardinality.
    """

    def __init__(
        self,
        handler: Callable[[dict[str, Any]], dict[str, Any]],
        token: str | None = None,
        name: str = "line-server",
        close_after: Callable[[dict[str, Any], dict[str, Any]], bool] | None = None,
        registry: MetricsRegistry | None = None,
        verbs: tuple[str, ...] = (),
    ) -> None:
        self.handler = handler
        self.token = token
        self.name = name
        self.close_after = close_after
        self.registry = registry if registry is not None else MetricsRegistry()
        self.verbs = tuple(verbs)
        self.unix_path: Path | None = None
        self.tcp_address: tuple[str, int] | None = None
        self._listeners: list[tuple[socket.socket, bool]] = []
        self._accept_threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._requests_total = self.registry.counter(
            "service_requests_total",
            "Requests handled, by server, verb and outcome (ok/error).",
            ("server", "verb", "outcome"),
        )
        self._request_seconds = self.registry.histogram(
            "service_request_seconds",
            "Request handling latency in seconds, by server and verb.",
            ("server", "verb"),
        )
        self._auth_failures = self.registry.counter(
            "service_auth_failures_total",
            "TCP requests refused for a missing or wrong token.",
            ("server",),
        )
        self._malformed_lines = self.registry.counter(
            "service_malformed_lines_total",
            "Protocol lines that failed to parse as one JSON object.",
            ("server",),
        )
        self._connections_total = self.registry.counter(
            "service_connections_total",
            "Connections accepted, by server.",
            ("server",),
        )
        self._connections_active = self.registry.gauge(
            "service_connections_active",
            "Connections currently being served, by server.",
            ("server",),
        )

    def _verb_label(self, request: dict[str, Any]) -> str:
        op = request.get("op")
        return op if op in self.verbs else "other"

    # -- listeners ------------------------------------------------------
    def listen_unix(self, path: str | Path, flag: str = "--socket") -> Path:
        """Bind a Unix listener, reclaiming a stale (dead) socket file.

        Raises :class:`ServiceError` for an over-long path and
        ``RuntimeError`` when a *live* server already owns the file.
        """
        if self._started:
            raise RuntimeError("cannot add listeners to a started server")
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServiceError("Unix-socket listeners require a POSIX platform")
        path = Path(path)
        check_unix_socket_path(path, flag=flag)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            # A previous server that crashed leaves a stale socket file; a
            # *live* one would still answer, so probe before stealing.
            if unix_socket_is_live(path):
                raise RuntimeError(f"another daemon is serving {path}")
            path.unlink()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(str(path))
        except BaseException:
            listener.close()
            raise
        self._add_listener(listener, requires_token=False)
        self.unix_path = path
        return path

    def listen_tcp(self, host: str, port: int) -> tuple[str, int]:
        """Bind a TCP listener; requires a token.  Returns the bound
        ``(host, port)`` — with ``port=0`` the kernel picks a free one."""
        if self._started:
            raise RuntimeError("cannot add listeners to a started server")
        if not self.token:
            raise ServiceError(
                "refusing to listen on TCP without an auth token — pass "
                f"--token or set {AUTH_TOKEN_ENV}"
            )
        listener = socket.socket(socket.AF_INET6 if ":" in host else socket.AF_INET)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
        except OSError as error:
            listener.close()
            raise ServiceError(f"cannot listen on {host}:{port} ({error})") from None
        self._add_listener(listener, requires_token=True)
        bound = listener.getsockname()
        self.tcp_address = (bound[0], bound[1])
        return self.tcp_address

    def _add_listener(self, listener: socket.socket, requires_token: bool) -> None:
        listener.listen(16)
        listener.settimeout(0.2)
        self._listeners.append((listener, requires_token))

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        if not self._listeners:
            raise RuntimeError("no listeners configured")
        self._started = True
        for index, (listener, requires_token) in enumerate(self._listeners):
            thread = threading.Thread(
                target=self._accept_loop,
                args=(listener, requires_token),
                name=f"{self.name}-accept-{index}",
                daemon=True,
            )
            thread.start()
            self._accept_threads.append(thread)

    def close(self) -> None:
        """Stop accepting, join the accept threads, release the sockets.

        In-flight connection threads are daemonic and finish (or die with
        the process) on their own; only the listeners are torn down here.
        """
        self._stop.set()
        for thread in self._accept_threads:
            thread.join(timeout=10)
        self._accept_threads.clear()
        for listener, _ in self._listeners:
            listener.close()
        self._listeners.clear()
        if self.unix_path is not None and self.unix_path.exists():
            self.unix_path.unlink()
        self.unix_path = None
        self._started = False

    # -- serving --------------------------------------------------------
    def _accept_loop(self, listener: socket.socket, requires_token: bool) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - listener closed under us
                break
            threading.Thread(
                target=self._serve_connection,
                args=(connection, requires_token),
                name=f"{self.name}-conn",
                daemon=True,
            ).start()

    def _authenticate(self, request: dict[str, Any]) -> bool:
        presented = request.pop("token", None)
        # Compare as bytes: compare_digest on str raises for non-ASCII,
        # which would let a perfectly matched non-ASCII token kill the
        # connection thread instead of authenticating.
        return (
            isinstance(presented, str)
            and self.token is not None
            and hmac.compare_digest(
                presented.encode("utf-8"), self.token.encode("utf-8")
            )
        )

    def _serve_connection(
        self, connection: socket.socket, requires_token: bool
    ) -> None:
        active = self._connections_active.labels(server=self.name)
        self._connections_total.labels(server=self.name).inc()
        active.inc()
        try:
            with connection, connection.makefile("rb") as reader:
                while True:
                    try:
                        request = recv_message(reader)
                    except ProtocolError as error:
                        self._malformed_lines.labels(server=self.name).inc()
                        try:
                            send_message(connection, error_response(str(error)))
                        except OSError:
                            pass
                        return
                    if request is None:
                        return
                    if requires_token and not self._authenticate(request):
                        self._auth_failures.labels(server=self.name).inc()
                        try:
                            send_message(connection, error_response(
                                "authentication failed: TCP requests must carry "
                                f"the shared token (set {AUTH_TOKEN_ENV} or pass "
                                "token=... to the client)"
                            ))
                        except OSError:
                            pass
                        return
                    request.pop("token", None)
                    verb = self._verb_label(request)
                    start = time.perf_counter()
                    try:
                        response = self.handler(request)
                    except Exception as error:  # noqa: BLE001 - keep serving
                        response = error_response(repr(error))
                    self._request_seconds.labels(
                        server=self.name, verb=verb
                    ).observe(time.perf_counter() - start)
                    self._requests_total.labels(
                        server=self.name,
                        verb=verb,
                        outcome="ok" if response.get("ok") else "error",
                    ).inc()
                    try:
                        send_message(connection, response)
                    except OSError:
                        return
                    if self.close_after is not None and self.close_after(request, response):
                        return
        finally:
            active.dec()
