"""The result collector: live fan-in of sharded sweep results.

``python -m repro.experiments collect --listen host:port`` runs one
:class:`ResultCollector`: a :class:`~repro.service.protocol.LineServer`
whose ``push`` verb appends streamed
:class:`~repro.experiments.store.CellResult` records into one
fingerprint-deduplicated :class:`~repro.experiments.store.ResultStore`.
Shard workers run ``run <suite> --shard i/k --collector host:port`` and
stream each completed cell the moment it finishes — the cross-machine
replacement for copying shard JSONL files around and merging them after
the fact.  The collector's store is a perfectly ordinary store:
``report`` consumes it unchanged, and the ``report`` verb serves the
rendered bundle straight off it.

Deduplication applies :func:`repro.experiments.store.resolve_duplicate`
— the *same* policy as file-based merging, under one lock, so the
verified-outranks-unverified rule holds regardless of the order in which
concurrent streams deliver a fingerprint:

* first record for a fingerprint: accepted and appended;
* a verified record never displaced by an unverified one: dropped;
* otherwise the newcomer wins and is appended (the store's readers
  resolve duplicates last-write-wins, so the append order *is* the
  resolution order);
* equal-rank records with differing semantic payloads are appended but
  counted as conflicts — diverging code or environments produced them.

Verbs
-----
``ping``
    Liveness + ingest counters.
``push``
    ``{"op": "push", "records": [<cell record>, ...]}`` → per-batch
    ``accepted`` / ``dropped`` / ``conflicts`` counts.
``status``
    Cumulative ingest counters, the store path, uptime and the
    cumulative records/sec ingest rate.
``report``
    The rendered report bundle over everything collected so far — the
    same bytes ``report --json`` would write from the store.
``metrics``
    The collector's full Prometheus-text exposition (ingest counters by
    fate, push-batch sizes, stream lag, per-verb latency).
``metrics_history``
    The retained scrape history (ring buffer snapshotted every
    ``scrape_interval_s``), optionally restricted by ``window_s`` and
    capped by ``max_points`` — what windowed SLO burn checks and
    dashboard sparklines consume.
``register`` / ``heartbeat`` / ``lease`` / ``fleet_status``
    The elastic-fleet control plane (:mod:`repro.service.leases`):
    workers started with ``run <suite> --fleet host:port`` register,
    pull batches of pending cells under heartbeat-renewed leases, and
    stream results back through ``push`` — which doubles as lease
    completion, so a record from *any* stream retires its lease.  A
    worker that stops heartbeating has its leases expired and handed to
    whoever asks next; ``fleet_status`` shows workers, active leases
    and the lifecycle counters.
``shutdown``
    Stop serving (the store is already durable; nothing to flush).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any

from repro.experiments.report import report_payload
from repro.obs import MetricsRegistry, ScrapeHistory
from repro.obs.timeseries import (
    DEFAULT_HISTORY_CAPACITY,
    DEFAULT_SCRAPE_INTERVAL_S,
)
from repro.experiments.store import (
    DEFAULT_OUT,
    CellResult,
    ResultStore,
    resolve_duplicate,
)
from repro.service.leases import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_LEASE_BATCH,
    LeaseTable,
)
from repro.service.protocol import (
    LineServer,
    ServiceError,
    error_response,
    metrics_history_response,
    ok_response,
    parse_endpoint,
    resolve_token,
)

__all__ = ["ResultCollector"]


class ResultCollector:
    """Collect streamed shard results into one deduplicated store."""

    def __init__(
        self,
        out: str | Path = DEFAULT_OUT,
        listen: str | None = None,
        socket_path: str | Path | None = None,
        token: str | None = None,
        scrape_interval_s: float = DEFAULT_SCRAPE_INTERVAL_S,
        history_capacity: int = DEFAULT_HISTORY_CAPACITY,
        history_spill: str | Path | None = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        lease_ttl_s: float | None = None,
    ) -> None:
        self.store = ResultStore(out)
        self.listen = listen
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.token = resolve_token(token)
        self._latest: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._server: LineServer | None = None
        # Cumulative ingest counters (served by ping/status).
        self.accepted = 0
        self.dropped = 0
        self.duplicates = 0
        self.conflicts = 0
        #: Store records skipped at startup for lacking a fingerprint —
        #: surfaced by status/metrics instead of refusing to serve.
        self.malformed_store_records = 0
        self.leases = LeaseTable(
            heartbeat_interval_s=heartbeat_interval_s,
            lease_ttl_s=lease_ttl_s,
            on_event=self._on_lease_event,
        )
        self._started_monotonic: float | None = None
        self._last_push_monotonic: float | None = None
        self.registry = MetricsRegistry()
        self.history = ScrapeHistory(
            self.registry,
            interval_s=scrape_interval_s,
            capacity=history_capacity,
            spill_path=history_spill,
        )
        self._register_metrics()

    def _register_metrics(self) -> None:
        # collector_records_ingested_total counts store *appends* only —
        # CI pins it equal to the streamed store's record count, so a
        # dropped record must not tick it.
        self._ingested_metric = self.registry.counter(
            "collector_records_ingested_total",
            "Records appended to the collector's store.",
        )
        self._fate_metric = self.registry.counter(
            "collector_records_total",
            "Pushed records by duplicate-policy fate.",
            ("fate",),
        )
        self._push_batch_records = self.registry.histogram(
            "collector_push_batch_records",
            "Records per push batch.",
            buckets=(1, 2, 5, 10, 25, 50, 100, 500),
        )
        self.registry.gauge(
            "collector_uptime_seconds", "Seconds since the collector started."
        ).set_function(self._uptime_s)
        self.registry.gauge(
            "collector_seconds_since_last_push",
            "Per-stream lag: seconds since the last push batch arrived "
            "(0 before the first push).",
        ).set_function(self._seconds_since_last_push)
        self.registry.gauge(
            "collector_store_malformed_records",
            "Store records skipped at startup for lacking a fingerprint.",
        ).set_function(lambda: float(self.malformed_store_records))
        # Fleet scheduling: lease lifecycle counters fed by the lease
        # table's event callback, liveness gauges read straight off it.
        self._lease_fates = self.registry.counter(
            "fleet_leases_total",
            "Lease lifecycle events by fate (granted/renewed/expired/"
            "released/reassigned/completed).",
            ("fate",),
        )
        self._lease_age = self.registry.histogram(
            "fleet_lease_age_seconds",
            "Lease age when it completed, expired or was released.",
            buckets=(0.5, 1.0, 2.0, 5.0, 15.0, 60.0, 300.0, 1800.0),
        )
        workers_gauge = self.registry.gauge(
            "fleet_workers",
            "Registered fleet workers, by liveness state.",
            ("state",),
        )
        for state in ("alive", "lost"):
            workers_gauge.labels(state=state).set_function(
                lambda state=state: float(
                    self.leases.worker_counts().get(state, 0)
                )
            )
        self.registry.gauge(
            "fleet_oldest_lease_age_seconds",
            "Age of the oldest active lease (0 when none are held).",
        ).set_function(self.leases.oldest_lease_age_s)
        self.registry.gauge(
            "fleet_lease_ttl_seconds",
            "The TTL a lease must be renewed within (the lease-stuck "
            "SLO's budget unit).",
        ).set_function(lambda: self.leases.lease_ttl_s)

    def _on_lease_event(self, fate: str, age_s: float | None) -> None:
        self._lease_fates.labels(fate=fate).inc()
        if age_s is not None:
            self._lease_age.observe(age_s)

    def _uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _seconds_since_last_push(self) -> float:
        if self._last_push_monotonic is None:
            return 0.0
        return time.monotonic() - self._last_push_monotonic

    def _records_per_s(self) -> float:
        uptime = self._uptime_s()
        return self.accepted / uptime if uptime > 0 else 0.0

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """The bound ``(host, port)`` of the TCP listener, if any."""
        return self._server.tcp_address if self._server is not None else None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed the dedup index from the existing store and start serving.

        A restarted collector picks up exactly where it stopped: the
        store's records are replayed through the same duplicate policy,
        so a verified record that survived the previous run still blocks
        unverified latecomers.
        """
        if self._server is not None:
            raise RuntimeError("collector already started")
        if self.listen is None and self.socket_path is None:
            raise ServiceError(
                "a collector needs an endpoint: --listen host:port and/or "
                "--socket path"
            )
        for record in self.store.records():
            fingerprint = record.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint:
                # One corrupt line must not brick a restart (and with it
                # collector-aware resume): skip it, count it, surface the
                # count via status and the malformed-records gauge.  The
                # line stays in the JSONL file untouched for forensics.
                self.malformed_store_records += 1
                continue
            previous = self._latest.get(fingerprint)
            if previous is None or resolve_duplicate(previous, record).keep_newcomer:
                self._latest[fingerprint] = record
        # Seed the fleet scheduler with what is already done: verified
        # records only, mirroring the store's completed_fingerprints()
        # resume policy, so an unverified record is re-leased and re-run.
        self.leases.seed_completed(
            fingerprint
            for fingerprint, record in self._latest.items()
            if record.get("verified")
        )
        server = LineServer(
            self._dispatch,
            token=self.token,
            name="result-collector",
            close_after=lambda request, _: request.get("op") == "shutdown",
            registry=self.registry,
            verbs=("ping", "push", "status", "report", "metrics",
                   "metrics_history", "register", "heartbeat", "lease",
                   "fleet_status", "shutdown"),
        )
        try:
            if self.socket_path is not None:
                server.listen_unix(self.socket_path)
            if self.listen is not None:
                endpoint = parse_endpoint(self.listen)
                if not endpoint.is_tcp:
                    raise ServiceError(
                        f"--listen takes a host:port TCP address, "
                        f"got {self.listen!r}"
                    )
                server.listen_tcp(endpoint.host, endpoint.port)
            server.start()
        except BaseException:
            server.close()
            raise
        self._server = server
        self._started_monotonic = time.monotonic()
        if self.history.interval_s > 0:
            self.history.start()

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            self.start()
        try:
            while not self._shutdown.is_set():
                self._shutdown.wait(0.2)
        finally:
            self.close()

    def stop(self) -> None:
        self._shutdown.set()

    def close(self) -> None:
        self.stop()
        self.history.stop()
        if self._server is not None:
            self._server.close()
            self._server = None

    def __enter__(self) -> "ResultCollector":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, record: dict[str, Any]) -> str:
        """Apply the duplicate policy to one record; append if it wins.

        Returns the record's fate: ``"accepted"`` (new fingerprint or a
        winning newcomer), ``"dropped"`` (an unverified record losing to
        a stored verified one) or ``"conflict"`` (accepted, but an
        equal-rank record with a different semantic payload was already
        present).  The decision and the append happen under one lock, so
        two streams racing the same fingerprint serialise and the policy
        — not arrival timing — picks the survivor.
        """
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ValueError("pushed record lacks a fingerprint field")
        result = CellResult.from_record(record)
        with self._lock:
            previous = self._latest.get(fingerprint)
            if previous is not None:
                self.duplicates += 1
                resolution = resolve_duplicate(previous, record)
                if not resolution.keep_newcomer:
                    self.dropped += 1
                    self._fate_metric.labels(fate="dropped").inc()
                    fate = "dropped"
                else:
                    fate = "conflict" if resolution.conflict else "accepted"
            else:
                fate = "accepted"
            if fate != "dropped":
                self._latest[fingerprint] = result.to_record()
                self.store.append(result)
                self.accepted += 1
                self._ingested_metric.inc()
                self._fate_metric.labels(fate=fate).inc()
                if fate == "conflict":
                    self.conflicts += 1
        # Push doubles as lease completion — outside the ingest lock
        # (the lease table has its own), and for *every* fate: even a
        # dropped duplicate proves the cell ran somewhere.
        self.leases.complete(fingerprint)
        return fate

    # ------------------------------------------------------------------
    # protocol handling
    # ------------------------------------------------------------------
    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return ok_response(role="collector", **self._counters())
        if op == "push":
            return self._handle_push(request)
        if op == "status":
            return ok_response(
                uptime_s=self._uptime_s(),
                records_per_s=self._records_per_s(),
                **self._counters(),
            )
        if op == "report":
            with self._lock:
                records = list(self._latest.values())
            if not records:
                return error_response("the collector has no results to report on")
            return ok_response(records=len(records), **report_payload(records))
        if op == "metrics":
            return ok_response(metrics=self.registry.render())
        if op == "metrics_history":
            return metrics_history_response(self.history, request)
        if op == "register":
            return self._handle_register(request)
        if op == "heartbeat":
            return self._handle_heartbeat(request)
        if op == "lease":
            return self._handle_lease(request)
        if op == "fleet_status":
            return ok_response(**self.leases.fleet_status())
        if op == "shutdown":
            self.stop()
            return ok_response(stopping=True)
        return error_response(
            f"unknown op {op!r} (expected ping/push/status/report/"
            f"metrics/metrics_history/register/heartbeat/lease/"
            f"fleet_status/shutdown)"
        )

    def _counters(self) -> dict[str, Any]:
        return {
            "records": len(self._latest),
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "dropped": self.dropped,
            "conflicts": self.conflicts,
            "malformed_store_records": self.malformed_store_records,
            "store": str(self.store.path),
        }

    # ------------------------------------------------------------------
    # fleet verbs (the lease-based control plane)
    # ------------------------------------------------------------------
    def _handle_register(self, request: dict[str, Any]) -> dict[str, Any]:
        worker = request.get("worker")
        if not isinstance(worker, str) or not worker:
            return error_response(
                "register requires a non-empty 'worker' name string"
            )
        return ok_response(**self.leases.register(worker))

    def _handle_heartbeat(self, request: dict[str, Any]) -> dict[str, Any]:
        worker_id = request.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return error_response("heartbeat requires a 'worker_id' string")
        beat = self.leases.heartbeat(worker_id)
        if beat is None:
            # Not an error: a restarted collector has an empty worker
            # table, and the cure (re-register) belongs to the worker.
            return ok_response(known=False)
        return ok_response(known=True, **beat)

    def _handle_lease(self, request: dict[str, Any]) -> dict[str, Any]:
        worker_id = request.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return error_response("lease requires a 'worker_id' string")
        fingerprints = request.get("fingerprints")
        if not isinstance(fingerprints, list) or not all(
            isinstance(item, str) and item for item in fingerprints
        ):
            return error_response(
                "lease requires a 'fingerprints' list of cell fingerprint "
                "strings (the worker's offered universe)"
            )
        limit = request.get("limit", DEFAULT_LEASE_BATCH)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            return error_response(
                f"lease: 'limit' must be a positive integer, got {limit!r}"
            )
        release = request.get("release", [])
        if not isinstance(release, list) or not all(
            isinstance(item, str) for item in release
        ):
            return error_response(
                "lease: 'release' must be a list of fingerprint strings"
            )
        grant = self.leases.grant(
            worker_id, fingerprints, limit=limit, release=release
        )
        if grant is None:
            return ok_response(known=False, granted=[], done=False)
        return ok_response(known=True, **grant)

    def _handle_push(self, request: dict[str, Any]) -> dict[str, Any]:
        records = request.get("records")
        if not isinstance(records, list):
            return error_response("push requires a 'records' list")
        # Validate the whole batch before ingesting any of it: a bad
        # record mid-batch must not leave a half-ingested prefix whose
        # counts are lost and whose retry would double-ingest.
        for index, record in enumerate(records):
            if not isinstance(record, dict):
                return error_response(
                    f"push record {index} is not a JSON object (cell record)"
                )
            fingerprint = record.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint:
                return error_response(
                    f"push record {index} lacks a fingerprint field"
                )
            try:
                CellResult.from_record(record)
            except (KeyError, TypeError, ValueError) as error:
                return error_response(
                    f"push record {index} is not a valid cell record ({error!r})"
                )
        self._push_batch_records.observe(len(records))
        self._last_push_monotonic = time.monotonic()
        counts = {"accepted": 0, "dropped": 0, "conflicts": 0}
        for record in records:
            fate = self.ingest(record)
            if fate == "dropped":
                counts["dropped"] += 1
            else:
                counts["accepted"] += 1
                if fate == "conflict":
                    counts["conflicts"] += 1
        return ok_response(**counts)
