"""The service's shard layer: deterministic ``i/k`` cell partitioning.

The implementation lives in :mod:`repro.experiments.shard` — the sweep
runner filters pending cells with it, and placing it below the runner
keeps the import graph acyclic (service modules import the experiments
layer, never the reverse).  This module re-exports it as the service
subsystem's partitioning layer; see that module for semantics
(disjointness, covering, resume-compatibility).
"""

from repro.experiments.shard import ShardSpec, partition, shard_cells

__all__ = ["ShardSpec", "shard_cells", "partition"]
