"""Client for the sweep daemon and result collector.

:class:`ServiceClient` wraps the protocol verbs as methods over either
transport — give it a Unix socket path or a ``host:port`` address
(:func:`repro.service.protocol.parse_endpoint` decides which).  Every
call opens a short-lived connection by default — connections are cheap,
and statelessness means a client never wedges the server by holding a
socket open.  Streaming callers (the ``--collector`` sink) use
:meth:`ServiceClient.connection` to reuse one connection for many
requests instead.

Startup races are absorbed here: a connect refused or a missing socket
file retries with exponential backoff for up to ``connect_retry_s``
seconds before surfacing :class:`ServiceError` — ``serve &`` followed
immediately by ``submit`` works without hand-written sleep loops.

TCP requests carry the shared auth token (explicit ``token=`` or the
``REPRO_SERVICE_TOKEN`` environment variable); Unix-socket requests
need none.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any

from repro.experiments.store import CellResult
from repro.service.protocol import (
    Endpoint,
    ProtocolError,
    ServiceError,
    ServiceTransportError,
    connect_endpoint,
    parse_endpoint,
    recv_message,
    resolve_token,
    send_message,
)

__all__ = [
    "ServiceError",
    "ServiceTransportError",
    "ServiceClient",
    "ServiceConnection",
    "CollectorSink",
]

#: Job states in which a job will make no further progress.
TERMINAL_STATES = ("done", "failed")

#: Default budget for connect retries, and the backoff ladder's first rung.
DEFAULT_CONNECT_RETRY_S = 2.0
_FIRST_BACKOFF_S = 0.05

#: Connect errors worth retrying during a server startup race: nothing is
#: accepting yet (stale or half-initialised socket) or the socket file has
#: not been bound yet.  Anything else — a timeout, a reset mid-flight, an
#: unroutable host — fails immediately.
_RETRYABLE_CONNECT_ERRORS = (ConnectionRefusedError, FileNotFoundError)


class ServiceConnection:
    """One open connection issuing any number of request/response pairs."""

    def __init__(self, client: "ServiceClient", sock: socket.socket) -> None:
        self._client = client
        self._sock = sock
        self._reader = sock.makefile("rb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request on this connection and return its response."""
        try:
            send_message(self._sock, self._client._with_token(payload))
            response = recv_message(self._reader)
        except (OSError, ProtocolError) as error:  # incl. socket.timeout
            raise ServiceTransportError(
                f"request to the sweep service at {self._client.endpoint} "
                f"failed mid-flight ({error})"
            ) from None
        return self._client._check_response(response)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceConnection":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class ServiceClient:
    """Talk to a sweep daemon or result collector on either transport."""

    def __init__(
        self,
        endpoint: str | Path | Endpoint,
        timeout: float = 30.0,
        token: str | None = None,
        connect_retry_s: float = DEFAULT_CONNECT_RETRY_S,
    ) -> None:
        self.endpoint = parse_endpoint(endpoint)
        self.timeout = timeout
        self.token = resolve_token(token)
        self.connect_retry_s = connect_retry_s

    def _with_token(self, payload: dict[str, Any]) -> dict[str, Any]:
        # Unix sockets are guarded by filesystem permissions; only TCP
        # requests need (and get) the shared token.
        if self.endpoint.is_tcp and self.token is not None:
            return {**payload, "token": self.token}
        return payload

    def _connect(self) -> socket.socket:
        """Connect, absorbing startup races with bounded backoff.

        A daemon that was just launched may not have bound (or begun
        accepting on) its socket yet: ``ConnectionRefusedError`` and
        ``FileNotFoundError`` retry with exponential backoff until the
        ``connect_retry_s`` budget runs out, then surface the usual
        "cannot reach" :class:`ServiceError`.
        """
        deadline = time.monotonic() + max(0.0, self.connect_retry_s)
        backoff = _FIRST_BACKOFF_S
        while True:
            try:
                return connect_endpoint(self.endpoint, self.timeout)
            except _RETRYABLE_CONNECT_ERRORS as error:
                now = time.monotonic()
                if now >= deadline:
                    raise ServiceTransportError(self._unreachable(error)) from None
                time.sleep(min(backoff, deadline - now))
                backoff *= 2
            except OSError as error:
                raise ServiceTransportError(self._unreachable(error)) from None

    def _unreachable(self, error: OSError) -> str:
        hint = (
            "is the collector/daemon listening there?"
            if self.endpoint.is_tcp
            else "is `python -m repro.experiments serve` running?"
        )
        return (
            f"cannot reach the sweep service at {self.endpoint} "
            f"({error}); {hint}"
        )

    def _check_response(self, response: dict[str, Any] | None) -> dict[str, Any]:
        # No response at all is a transport symptom (half-closed peer);
        # an explicit ok:false is an application answer over a healthy
        # connection — the two must raise distinguishably or streaming
        # callers tear down good connections to retry doomed requests.
        if response is None:
            raise ServiceTransportError(
                "the service closed the connection without answering"
            )
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    def connection(self) -> ServiceConnection:
        """Open a persistent connection for many requests (streaming)."""
        return ServiceConnection(self, self._connect())

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request on a fresh connection and return the response."""
        sock = self._connect()
        try:
            try:
                send_message(sock, self._with_token(payload))
                with sock.makefile("rb") as reader:
                    response = recv_message(reader)
            except (OSError, ProtocolError) as error:  # incl. socket.timeout
                raise ServiceTransportError(
                    f"request to the sweep service at {self.endpoint} "
                    f"failed mid-flight ({error})"
                ) from None
        finally:
            sock.close()
        return self._check_response(response)

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        suite: str,
        smoke: bool = False,
        sizes: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        shard: str | None = None,
        out: str | None = None,
        collector: str | None = None,
        engine: str | None = None,
    ) -> str:
        """Enqueue a sweep job; returns the job id."""
        payload: dict[str, Any] = {"op": "submit", "suite": suite, "smoke": smoke}
        if sizes is not None:
            payload["sizes"] = list(sizes)
        if seeds is not None:
            payload["seeds"] = list(seeds)
        if shard is not None:
            payload["shard"] = shard
        if out is not None:
            payload["out"] = out
        if collector is not None:
            payload["collector"] = collector
        if engine is not None:
            payload["engine"] = engine
        return self.request(payload)["job"]

    def status(self, job: str | None = None) -> dict[str, Any]:
        """One job's status dict, or the whole-daemon view without a job."""
        if job is None:
            return self.request({"op": "status"})
        return self.request({"op": "status", "job": job})["job"]

    def results(self, job: str) -> list[dict[str, Any]]:
        """The per-cell records the job has produced so far."""
        return self.request({"op": "results", "job": job})["records"]

    def report(self, job: str | None = None) -> dict[str, Any]:
        """A rendered report bundle, built server-side from the store.

        Against a daemon, ``job`` names a finished job and the bundle
        covers that job's store; against a collector, ``job`` is omitted
        and the bundle covers the streamed store.  The response carries
        ``render`` (the text report), ``json`` and ``csv`` (byte-for-byte
        what ``report --json`` / ``--csv`` would write) and
        ``all_verified``.
        """
        payload: dict[str, Any] = {"op": "report"}
        if job is not None:
            payload["job"] = job
        return self.request(payload)

    def push(self, records: list[dict[str, Any]]) -> dict[str, Any]:
        """Stream result records to a collector; returns ingest counters."""
        return self.request({"op": "push", "records": records})

    def metrics(self) -> str:
        """The server's Prometheus-text metrics exposition.

        Works against both the daemon and the collector; the returned
        string is scrape-ready (``repro.obs.parse_exposition`` reads it,
        as does any Prometheus-compatible tool).
        """
        return self.request({"op": "metrics"})["metrics"]

    def metrics_history(
        self,
        window_s: float | None = None,
        max_points: int | None = None,
    ) -> dict[str, Any]:
        """The server's retained scrape history (``metrics_history`` verb).

        Returns the raw payload: ``points`` (``{unix_s, metrics}``
        records, oldest first), the server's ``interval_s`` / ``capacity``
        / ``retained`` count, and ``truncated`` when the server clipped
        the reply to its response cap.  Feed ``points`` through
        :func:`repro.obs.points_from_payload` for query-ready objects.
        """
        payload: dict[str, Any] = {"op": "metrics_history"}
        if window_s is not None:
            payload["window_s"] = window_s
        if max_points is not None:
            payload["max_points"] = max_points
        return self.request(payload)

    # -- elastic-fleet verbs (collector as control plane) ---------------
    def register(self, worker: str) -> dict[str, Any]:
        """Register a fleet worker; returns ``worker_id`` plus the
        fleet cadence (``heartbeat_interval_s``, ``lease_ttl_s``)."""
        return self.request({"op": "register", "worker": worker})

    def heartbeat(self, worker_id: str) -> dict[str, Any]:
        """Renew the worker's liveness and all its leases.

        ``known`` is false when the collector does not recognise the id
        (it restarted) — the worker should re-register, not crash.
        """
        return self.request({"op": "heartbeat", "worker_id": worker_id})

    def lease(
        self,
        worker_id: str,
        fingerprints: list[str],
        limit: int | None = None,
        release: list[str] | None = None,
    ) -> dict[str, Any]:
        """Ask for a batch of pending cells from the offered universe.

        Returns ``granted`` (fingerprints now leased to this worker),
        ``pending`` / ``outstanding`` counts and ``done`` — true only
        when every offered fingerprint is completed fleet-wide.
        ``release`` hands back fingerprints this worker gave up on.
        """
        payload: dict[str, Any] = {
            "op": "lease",
            "worker_id": worker_id,
            "fingerprints": list(fingerprints),
        }
        if limit is not None:
            payload["limit"] = limit
        if release:
            payload["release"] = list(release)
        return self.request(payload)

    def fleet_status(self) -> dict[str, Any]:
        """Workers, active leases and lease-lifecycle counters."""
        return self.request({"op": "fleet_status"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def wait(
        self, job: str, poll_interval: float = 0.1, timeout: float = 600.0
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; return its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job} "
                    f"(state: {status['state']})"
                )
            time.sleep(poll_interval)


class CollectorSink:
    """Stream :class:`CellResult` records to a collector as they complete.

    Built for the runner's ``sinks`` hook: calling the sink pushes one
    record over a persistent connection (opened lazily, reopened once per
    push on failure — a collector restart costs one retry, not the
    sweep).  A push that still fails raises :class:`ServiceError`; the
    sweep's local store already holds the record, so the caller can
    surface the error without losing work.
    """

    def __init__(self, client: ServiceClient) -> None:
        self.client = client
        self.pushed = 0
        self._connection: ServiceConnection | None = None

    def __call__(self, result: CellResult) -> None:
        self.push_record(result.to_record())

    def push_record(self, record: dict[str, Any]) -> None:
        payload = {"op": "push", "records": [record]}
        try:
            self._ensure_connection().request(payload)
        except ServiceTransportError:
            # One reconnect: the collector may have restarted between
            # cells.  A second failure is a real outage and propagates.
            # Only *transport* failures retry — a server error response
            # (a rejected record) arrived over a healthy connection, so
            # tearing it down to re-push the same doomed record would
            # just double the rejection; it propagates immediately.
            self.close()
            self._ensure_connection().request(payload)
        self.pushed += 1

    def _ensure_connection(self) -> ServiceConnection:
        if self._connection is None:
            self._connection = self.client.connection()
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
