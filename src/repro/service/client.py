"""Client for the sweep daemon: one request, one connection, one JSON line.

:class:`ServiceClient` wraps the protocol verbs as methods.  Every call
opens a short-lived connection — the daemon is local, connections are
cheap, and statelessness means a client never wedges the daemon by holding
a socket open.  ``python -m repro.experiments submit`` is a thin shell
around this class.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any

from repro.service.protocol import ProtocolError, recv_message, send_message

__all__ = ["ServiceError", "ServiceClient"]

#: Job states in which a job will make no further progress.
TERMINAL_STATES = ("done", "failed")


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or could not be reached)."""


class ServiceClient:
    """Talk to a :class:`~repro.service.daemon.SweepDaemon` socket."""

    def __init__(self, socket_path: str | Path, timeout: float = 30.0) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = timeout

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request and return the (``ok: true``) response."""
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServiceError("the sweep service requires Unix-domain sockets")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(str(self.socket_path))
            except OSError as error:
                raise ServiceError(
                    f"cannot reach the sweep daemon at {self.socket_path} "
                    f"({error}); is `python -m repro.experiments serve` running?"
                ) from None
            try:
                send_message(sock, payload)
                with sock.makefile("rb") as reader:
                    response = recv_message(reader)
            except (OSError, ProtocolError) as error:  # incl. socket.timeout
                raise ServiceError(
                    f"request to the sweep daemon at {self.socket_path} "
                    f"failed mid-flight ({error})"
                ) from None
        finally:
            sock.close()
        if response is None:
            raise ServiceError("the daemon closed the connection without answering")
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown daemon error"))
        return response

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        suite: str,
        smoke: bool = False,
        sizes: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        shard: str | None = None,
        out: str | None = None,
    ) -> str:
        """Enqueue a sweep job; returns the job id."""
        payload: dict[str, Any] = {"op": "submit", "suite": suite, "smoke": smoke}
        if sizes is not None:
            payload["sizes"] = list(sizes)
        if seeds is not None:
            payload["seeds"] = list(seeds)
        if shard is not None:
            payload["shard"] = shard
        if out is not None:
            payload["out"] = out
        return self.request(payload)["job"]

    def status(self, job: str | None = None) -> dict[str, Any]:
        """One job's status dict, or the whole-daemon view without a job."""
        if job is None:
            return self.request({"op": "status"})
        return self.request({"op": "status", "job": job})["job"]

    def results(self, job: str) -> list[dict[str, Any]]:
        """The per-cell records the job has produced so far."""
        return self.request({"op": "results", "job": job})["records"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def wait(
        self, job: str, poll_interval: float = 0.1, timeout: float = 600.0
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; return its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job} "
                    f"(state: {status['state']})"
                )
            time.sleep(poll_interval)
