"""A persistent worker pool for heavy sweep traffic.

:class:`~repro.experiments.runner.SweepRunner` spins up a fresh
``ProcessPoolExecutor`` per sweep and ships **one cell per task**, so a
service-style workload — many sweeps of many small cells — pays process
startup, registry import and one IPC round trip per cell, over and over.
:class:`WorkerPool` amortises all three:

* worker processes are spawned **once** and stay warm across any number of
  :meth:`submit_sweep` / :meth:`run_suite` calls (the "heavy traffic"
  front end of the daemon);
* cells are shipped in **batches** (default :data:`DEFAULT_BATCH_SIZE`
  per task), so queue round trips scale with ``cells / batch_size``
  rather than ``cells``;
* results stream back per cell as each batch completes, preserving the
  runner's append-as-you-go / resume-for-free store semantics.

The pool executes one sweep at a time (submissions serialise on an
internal lock); concurrency lives *inside* a sweep, across the worker
processes.  That is exactly the daemon's job-queue model: many clients
feed jobs into one pool, jobs run in order, each job saturates the
workers.

Workers execute cells through the same
:func:`~repro.experiments.runner.run_cell` entry point as the plain
runner, so transform cells of the ``charged`` suite run under
``OracleCostModel`` charging here too: their streamed
:class:`~repro.experiments.store.CellResult` records carry
``charged_rounds`` next to the measured ``rounds``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.experiments.runner import (
    CellFailure,
    SweepReport,
    SweepRunner,
    default_jobs,
    make_recorder,
    run_cell,
)
from repro.experiments.spec import Cell, Suite
from repro.experiments.store import CellResult, ResultStore
from repro.obs import MetricsRegistry
from repro.service.shard import ShardSpec

__all__ = ["DEFAULT_BATCH_SIZE", "CellOutcome", "WorkerPool", "batch_cells"]

#: Cells per task submission.  Small enough to keep all workers busy on
#: modest sweeps, large enough that queue round trips are a rounding error.
DEFAULT_BATCH_SIZE = 8


def batch_cells(cells: Sequence[Cell], batch_size: int) -> list[list[Cell]]:
    """Chunk ``cells`` into submission batches of at most ``batch_size``."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be at least 1, got {batch_size}")
    return [
        list(cells[start:start + batch_size])
        for start in range(0, len(cells), batch_size)
    ]


@dataclass
class CellOutcome:
    """One streamed per-cell outcome of a pool sweep."""

    cell: Cell
    result: CellResult | None
    error: str | None

    @property
    def ok(self) -> bool:
        return self.error is None


def _worker_main(tasks, results) -> None:
    """Worker loop: execute batches until the ``None`` sentinel arrives.

    Lives at module top level so it is picklable under any multiprocessing
    start method.  A cell that raises is reported as an error string and
    the rest of its batch still runs — mirroring the runner's
    failed-cells-are-retried-next-sweep policy.
    """
    while True:
        task = tasks.get()
        if task is None:
            break
        job_id, suite_name, engine, batch_index, cells = task
        outcomes = []
        for cell in cells:
            try:
                outcomes.append((cell, run_cell(suite_name, cell, engine=engine), None))
            except Exception as error:  # noqa: BLE001 - reported to the caller
                outcomes.append((cell, None, repr(error)))
        results.put((job_id, batch_index, outcomes))


class WorkerPool:
    """Warm worker processes serving batched sweep submissions.

    Usage::

        with WorkerPool(workers=4) as pool:
            report = pool.run_suite(get_suite("paper-claims"), store, smoke=True)
            report = pool.run_suite(get_suite("scaling"), store)   # same workers

    The pool is lazy: processes spawn on the first submission, then stay
    alive until :meth:`shutdown`.  Workers use the platform-default
    multiprocessing context (fork on Linux) so that algorithms and
    generators registered at runtime are visible in the workers;
    multi-threaded hosts like the daemon should call :meth:`start`
    eagerly, before spawning their own threads, to keep the fork clean.
    """

    def __init__(
        self,
        workers: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        self.workers = workers if workers is not None else default_jobs()
        self.batch_size = batch_size
        self._context = multiprocessing.get_context()
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._processes: list = []
        self._worker_counter = 0
        self._sweep_lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._closed = False
        self._ever_started = False
        # Cumulative traffic counters (exposed by the daemon's status verb).
        self.sweeps_served = 0
        self.cells_executed = 0
        self.batches_executed = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._restarts_metric = self.registry.counter(
            "pool_worker_restarts_total",
            "Worker processes respawned after the pool first came up.",
        )
        self._batch_seconds = self.registry.histogram(
            "pool_batch_seconds",
            "Batch dispatch latency: enqueue to results arrival, in seconds.",
        )
        self._cells_metric = self.registry.counter(
            "pool_cells_executed_total",
            "Cells executed by the worker pool (ok and failed).",
        )
        self._sweeps_metric = self.registry.counter(
            "pool_sweeps_total",
            "Sweep submissions fully streamed by the pool.",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._processes)

    def start(self) -> None:
        """Spawn the worker processes (idempotent, self-healing).

        A worker that died while the pool sat idle (OOM, external kill)
        is detected here, before the next sweep: the pool is rebuilt
        wholesale rather than topped up, because a worker that died
        blocked on the shared task queue may have taken the queue's
        internal lock with it.
        """
        if self._closed:
            raise RuntimeError("the pool has been shut down")
        if any(not process.is_alive() for process in self._processes):
            self._rebuild_ipc()
        while len(self._processes) < self.workers:
            self._spawn_worker()
        self._ever_started = True

    def _rebuild_ipc(self) -> None:
        """Terminate every worker and rebuild both queues from scratch."""
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            process.join(timeout=5)
        self._processes.clear()
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()

    def _spawn_worker(self) -> None:
        if self._ever_started:
            # Spawning past the initial bring-up means a worker died and
            # is being replaced — the restart SLO watches exactly this.
            self._restarts_metric.inc()
        self._worker_counter += 1
        process = self._context.Process(
            target=_worker_main,
            args=(self._tasks, self._results),
            name=f"sweep-worker-{self._worker_counter}",
            daemon=True,
        )
        process.start()
        self._processes.append(process)

    def shutdown(self) -> None:
        """Stop the workers (idempotent; pending sentinels drain the loop)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._processes:
            self._tasks.put(None)
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10)
        self._processes.clear()

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    # sweep execution
    # ------------------------------------------------------------------
    def submit_sweep(
        self, suite_name: str, cells: Sequence[Cell], engine: str | None = None
    ) -> Iterator[CellOutcome]:
        """Run ``cells`` on the warm workers, streaming per-cell outcomes.

        Cells are shipped in batches of ``self.batch_size``; outcomes
        arrive grouped by batch, in batch completion order.  The iterator
        must be consumed fully — it holds the pool's sweep lock, and the
        stream *is* the progress signal.  ``engine`` is the sweep-level
        backend override forwarded to every cell.
        """
        cells = list(cells)
        job_id = next(self._job_ids)
        batches = batch_cells(cells, self.batch_size)

        def stream() -> Iterator[CellOutcome]:
            with self._sweep_lock:
                # start() (and its dead-worker rebuild) must run under
                # the sweep lock: healing while another sweep is mid-
                # flight would swap the queues out from under it.
                self.start()
                enqueued_at: dict[int, float] = {}
                for index, batch in enumerate(batches):
                    enqueued_at[index] = time.perf_counter()
                    self._tasks.put((job_id, suite_name, engine, index, batch))
                remaining = len(batches)
                while remaining:
                    try:
                        received_job, batch_index, outcomes = self._results.get(timeout=1.0)
                    except queue_module.Empty:
                        self._check_workers_alive()
                        continue
                    if received_job != job_id:
                        # Left over from an abandoned earlier stream; the
                        # cells completed, their sweep just stopped
                        # listening.  Drop the batch — resume re-runs it.
                        continue
                    remaining -= 1
                    self.batches_executed += 1
                    self._batch_seconds.observe(
                        time.perf_counter() - enqueued_at.pop(batch_index)
                    )
                    for cell, result, error in outcomes:
                        self.cells_executed += 1
                        self._cells_metric.inc()
                        yield CellOutcome(cell=cell, result=result, error=error)
                self.sweeps_served += 1
                self._sweeps_metric.inc()

        return stream()

    def _check_workers_alive(self) -> None:
        """Fail the current sweep if workers died — but heal the pool.

        A killed worker (OOM, external signal) loses its in-flight batch,
        so the sweep cannot complete and raises; the batch's cells were
        never stored, so resume re-runs them.  A worker that dies blocked
        on a shared queue may take the queue's internal lock with it, so
        healing must be wholesale: terminate the survivors, rebuild both
        queues, respawn everyone.  The *next* submission to a long-lived
        pool (the daemon's) then works without a restart.

        Fork-safety of respawning from a threaded host (the daemon's
        runner thread): the replacement children execute only
        ``_worker_main``, which touches nothing but the two queues this
        thread creates immediately before forking — their locks are
        provably unheld at fork time, and no daemon-side lock (jobs
        table, stdio) is ever acquired by worker code, so a lock some
        *other* thread held at fork cannot deadlock the child.
        """
        dead = [p.name for p in self._processes if not p.is_alive()]
        if not dead:
            return
        self._rebuild_ipc()
        if not self._closed:
            self.start()
        raise RuntimeError(
            f"worker process(es) died mid-sweep: {', '.join(dead)}; pool "
            f"rebuilt, the interrupted sweep's unstored cells re-run on resume"
        )

    def run_suite(
        self,
        suite: Suite,
        store: ResultStore,
        smoke: bool = False,
        sizes: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        shard: ShardSpec | None = None,
        progress: Callable[[CellResult], None] | None = None,
        on_plan: Callable[[int, int], None] | None = None,
        on_failure: Callable[[Cell, str], None] | None = None,
        sinks: Sequence[Callable[[CellResult], None]] = (),
        engine: str | None = None,
    ) -> SweepReport:
        """Run a suite's pending cells through the pool.

        Drop-in equivalent of :meth:`SweepRunner.run` — same store
        append-as-completed semantics, same :class:`SweepReport` — but
        served by the warm workers instead of a fresh executor.

        The hooks let a caller observe the sweep live (the daemon's
        status verb feeds off them): ``on_plan(total_cells, skipped)``
        fires once before the first cell runs, ``progress(result)`` per
        stored cell, ``on_failure(cell, error)`` per failed cell.
        ``sinks`` stream each stored result onward (e.g. to a TCP
        collector) with the runner's fail-soft semantics: a sink failure
        is recorded once in ``SweepReport.sink_error`` and the sink
        disabled, never the sweep aborted.
        """
        start = time.perf_counter()
        planner = SweepRunner(
            suite, store, jobs=1, smoke=smoke, sizes=sizes, seeds=seeds, shard=shard
        )
        pending, skipped = planner.pending_cells()
        if on_plan is not None:
            on_plan(len(pending) + skipped, skipped)
        report = SweepReport(
            suite=suite.name,
            total_cells=len(pending) + skipped,
            skipped=skipped,
            executed=0,
            unverified=0,
        )
        record = make_recorder(store, sinks, report, progress)
        for outcome in self.submit_sweep(suite.name, pending, engine=engine):
            if outcome.error is not None:
                report.failures.append(CellFailure(outcome.cell, outcome.error))
                if on_failure is not None:
                    on_failure(outcome.cell, outcome.error)
                continue
            record(outcome.result)
        report.wall_clock_s = time.perf_counter() - start
        return report
