"""The sweep daemon: a job queue in front of one persistent worker pool.

``python -m repro.experiments serve`` runs one :class:`SweepDaemon` per
machine.  It listens on a local Unix-domain socket, speaks the
line-delimited JSON protocol of :mod:`repro.service.protocol`, and lets
any number of clients feed sweep jobs into one long-lived
:class:`~repro.service.pool.WorkerPool` — the process-startup cost of a
sweep is paid once per daemon, not once per request.

Verbs
-----
``ping``
    Liveness + pool statistics.
``submit``
    Enqueue a sweep job: ``{"op": "submit", "suite": "paper-claims",
    "smoke": true, "shard": "0/2", "out": "experiments/results"}``.
    Validation (suite name, shard spec) happens here, so a bad request
    fails fast at the client instead of inside the queue.
``status``
    One job's state (``{"op": "status", "job": "job-1"}``) or, without a
    job id, every job plus pool traffic counters.
``results``
    The per-cell result records a job has produced so far.
``shutdown``
    Stop accepting work, finish the jobs already queued, exit.

Jobs run strictly in submission order (one at a time — the pool's
workers parallelise *within* a job).  Every completed cell is appended to
the job's :class:`~repro.experiments.store.ResultStore` the moment it
finishes, so daemon jobs are resumable and mergeable exactly like CLI
``run`` sweeps.
"""

from __future__ import annotations

import os
import queue as queue_module
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.spec import get_suite
from repro.experiments.store import DEFAULT_OUT, ResultStore
from repro.service.client import ServiceError
from repro.service.pool import DEFAULT_BATCH_SIZE, WorkerPool
from repro.service.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    recv_message,
    send_message,
)
from repro.service.shard import ShardSpec

__all__ = ["DEFAULT_SOCKET", "MAX_SOCKET_PATH_BYTES", "Job", "SweepDaemon"]

#: Default rendezvous point, next to the default result store.
DEFAULT_SOCKET = "experiments/service.sock"

#: Portable ceiling on an ``AF_UNIX`` socket path, in bytes.  ``sun_path``
#: is a fixed-size buffer: 108 bytes on Linux, 104 on the BSDs / macOS,
#: both including the trailing NUL — 103 payload bytes fit everywhere.
#: ``bind`` past the limit fails with an opaque ``OSError``, so the daemon
#: checks up front and names the offending path instead (deep CI tmpdirs
#: hit this routinely).
MAX_SOCKET_PATH_BYTES = 103

#: Per-job cap on cell records kept in memory for the ``results`` verb.
#: The on-disk ResultStore is the durable record; the in-memory copy is a
#: convenience for small jobs, and capping it keeps a long-lived daemon's
#: memory (and the single-line ``results`` response) bounded.
MAX_RESULT_RECORDS_IN_MEMORY = 10_000

#: Finished jobs retained in the job table.  Older done/failed jobs are
#: evicted as new ones are submitted, so heavy traffic cannot grow the
#: daemon without bound.
MAX_FINISHED_JOBS = 50


@dataclass
class Job:
    """One queued/running/finished sweep request."""

    id: str
    suite: str
    smoke: bool = False
    sizes: tuple[int, ...] | None = None
    seeds: tuple[int, ...] | None = None
    shard: str | None = None
    out: str = DEFAULT_OUT
    state: str = "queued"  # queued | running | done | failed
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    total_cells: int = 0
    skipped: int = 0
    executed: int = 0
    unverified: int = 0
    failures: list[dict[str, Any]] = field(default_factory=list)
    error: str | None = None
    results: list[dict[str, Any]] = field(default_factory=list)
    results_truncated: bool = False

    def describe(self) -> dict[str, Any]:
        """The status-verb view of the job (everything but the records)."""
        return {
            "id": self.id,
            "suite": self.suite,
            "smoke": self.smoke,
            "sizes": list(self.sizes) if self.sizes else None,
            "seeds": list(self.seeds) if self.seeds else None,
            "shard": self.shard,
            "out": self.out,
            "state": self.state,
            "total_cells": self.total_cells,
            "skipped": self.skipped,
            "executed": self.executed,
            "unverified": self.unverified,
            "failures": self.failures,
            "error": self.error,
        }


class SweepDaemon:
    """Serve sweep jobs over a local socket from one warm worker pool."""

    def __init__(
        self,
        socket_path: str | Path = DEFAULT_SOCKET,
        workers: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.pool = WorkerPool(workers=workers, batch_size=batch_size)
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_queue: queue_module.Queue[str] = queue_module.Queue()
        self._job_counter = 0
        self._shutdown = threading.Event()
        self._accept_stop = threading.Event()
        self._bound_socket = False
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._runner_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and start the accept and job-runner threads."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise RuntimeError("the sweep daemon requires Unix-domain sockets")
        path_bytes = len(os.fsencode(str(self.socket_path)))
        if path_bytes > MAX_SOCKET_PATH_BYTES:
            raise ServiceError(
                f"socket path is {path_bytes} bytes, over the "
                f"{MAX_SOCKET_PATH_BYTES}-byte AF_UNIX limit: "
                f"{self.socket_path} — pass a shorter --socket path "
                f"(e.g. under /tmp)"
            )
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            # A previous daemon that crashed leaves a stale socket file; a
            # *live* daemon would still answer, so probe before stealing.
            if self._socket_is_live():
                raise RuntimeError(f"another daemon is serving {self.socket_path}")
            self.socket_path.unlink()
        # Fork the worker processes *now*, while this is still the only
        # thread: forking lazily from the runner thread with accept /
        # connection threads live risks a child inheriting a lock some
        # other thread held at fork time.
        self.pool.start()
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(self.socket_path))
        self._bound_socket = True
        server.listen(16)
        server.settimeout(0.2)
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sweep-daemon-accept", daemon=True
        )
        self._runner_thread = threading.Thread(
            target=self._runner_loop, name="sweep-daemon-runner", daemon=True
        )
        self._accept_thread.start()
        self._runner_thread.start()

    def _socket_is_live(self) -> bool:
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.5)
        try:
            probe.connect(str(self.socket_path))
        except OSError:
            return False
        else:
            return True
        finally:
            probe.close()

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            self.start()
        try:
            while not self._shutdown.is_set():
                self._shutdown.wait(0.2)
        finally:
            self.close()

    def stop(self) -> None:
        """Request shutdown: queued jobs still finish, then threads exit.

        Taking the jobs lock makes stopping atomic with respect to
        ``submit``: a submit that passed its shutdown check under the
        lock has already enqueued its job before the flag can be set, so
        the runner loop (which exits only once the flag is set *and* the
        queue is drained) never strands an accepted job.
        """
        with self._jobs_lock:
            self._shutdown.set()

    def close(self) -> None:
        """Stop, drain the queued jobs, and release every resource.

        The runner thread is joined *before* the accept loop is stopped:
        clients keep polling ``status`` / ``results`` while the queued
        jobs drain (only new ``submit`` requests are rejected once the
        shutdown flag is up).
        """
        self.stop()
        if self._runner_thread is not None:
            # No timeout: the shutdown contract is "queued jobs still
            # finish", however long they take.  A wedged sweep cannot
            # hang this forever — the pool detects dead workers within
            # ~1s and fails the job rather than blocking.
            self._runner_thread.join()
            self._runner_thread = None
        self._accept_stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
            self._accept_thread = None
        if self._server is not None:
            self._server.close()
            self._server = None
        # Unlink only a socket *this* daemon bound: a close() after a
        # failed start() ("another daemon is serving") must not sever the
        # live daemon that owns the file.
        if self._bound_socket and self.socket_path.exists():
            self.socket_path.unlink()
        self._bound_socket = False
        self.pool.shutdown()

    def __enter__(self) -> "SweepDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # job execution (runner thread)
    # ------------------------------------------------------------------
    def _runner_loop(self) -> None:
        while not (self._shutdown.is_set() and self._job_queue.empty()):
            try:
                job_id = self._job_queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            self._run_job(self._jobs[job_id])

    def _run_job(self, job: Job) -> None:
        """Execute one job, updating its fields *live* for the status verb.

        The plan (total cells, resume skips) is published before the first
        cell runs, and executed/unverified/failure counters tick per cell,
        so a polling client always sees a meaningful denominator — even if
        the sweep later dies and the job ends up ``failed``.
        """
        job.state = "running"
        job.started_s = time.time()

        def on_plan(total: int, skipped: int) -> None:
            job.total_cells = total
            job.skipped = skipped

        def progress(result) -> None:
            job.executed += 1
            if not result.verified:
                job.unverified += 1
            if len(job.results) < MAX_RESULT_RECORDS_IN_MEMORY:
                job.results.append(result.to_record())
            else:
                job.results_truncated = True

        def on_failure(cell, error: str) -> None:
            job.failures.append({
                "scenario": cell.scenario,
                "n": cell.n,
                "seed": cell.seed,
                "error": error,
            })

        try:
            suite = get_suite(job.suite)
            shard = ShardSpec.parse(job.shard) if job.shard else None
            self.pool.run_suite(
                suite,
                ResultStore(job.out),
                smoke=job.smoke,
                sizes=job.sizes,
                seeds=job.seeds,
                shard=shard,
                progress=progress,
                on_plan=on_plan,
                on_failure=on_failure,
            )
        except Exception as error:  # noqa: BLE001 - surfaced via status verb
            job.state = "failed"
            job.error = repr(error)
        else:
            job.state = "done"
        finally:
            job.finished_s = time.time()

    # ------------------------------------------------------------------
    # protocol handling (accept thread + one thread per connection)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._accept_stop.is_set():
            try:
                connection, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - socket closed under us
                break
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="sweep-daemon-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection, connection.makefile("rb") as reader:
            while True:
                try:
                    request = recv_message(reader)
                except ProtocolError as error:
                    try:
                        send_message(connection, error_response(str(error)))
                    except OSError:
                        pass
                    return
                if request is None:
                    return
                try:
                    response = self._dispatch(request)
                except Exception as error:  # noqa: BLE001 - keep serving
                    response = error_response(repr(error))
                try:
                    send_message(connection, response)
                except OSError:
                    return
                if request.get("op") == "shutdown":
                    return

    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return ok_response(pool=self._pool_stats(), jobs=len(self._jobs))
        if op == "submit":
            return self._handle_submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "results":
            return self._handle_results(request)
        if op == "shutdown":
            self.stop()
            return ok_response(stopping=True)
        return error_response(
            f"unknown op {op!r} (expected ping/submit/status/results/shutdown)"
        )

    def _pool_stats(self) -> dict[str, Any]:
        return {
            "workers": self.pool.workers,
            "batch_size": self.pool.batch_size,
            "started": self.pool.started,
            "sweeps_served": self.pool.sweeps_served,
            "cells_executed": self.pool.cells_executed,
            "batches_executed": self.pool.batches_executed,
        }

    def _handle_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._shutdown.is_set():
            return error_response("daemon is shutting down; job rejected")
        suite_name = request.get("suite")
        if not suite_name:
            return error_response("submit requires a 'suite' field")
        try:
            get_suite(suite_name)
        except KeyError as error:
            return error_response(error.args[0])
        shard = request.get("shard")
        if shard is not None:
            try:
                ShardSpec.parse(str(shard))
            except ValueError as error:
                return error_response(str(error))
        sizes = request.get("sizes")
        seeds = request.get("seeds")
        with self._jobs_lock:
            # Re-check under the lock: stop() also takes it, so a job
            # accepted here is enqueued before the flag can flip and the
            # runner loop is guaranteed to drain it.
            if self._shutdown.is_set():
                return error_response("daemon is shutting down; job rejected")
            self._evict_finished_jobs()
            self._job_counter += 1
            job = Job(
                id=f"job-{self._job_counter}",
                suite=suite_name,
                smoke=bool(request.get("smoke", False)),
                sizes=tuple(int(n) for n in sizes) if sizes else None,
                seeds=tuple(int(s) for s in seeds) if seeds else None,
                shard=str(shard) if shard is not None else None,
                out=str(request.get("out") or DEFAULT_OUT),
            )
            self._jobs[job.id] = job
            self._job_queue.put(job.id)
        return ok_response(job=job.id, queued=self._job_queue.qsize())

    def _evict_finished_jobs(self) -> None:
        """Drop the oldest done/failed jobs beyond :data:`MAX_FINISHED_JOBS`.

        Called with the jobs lock held.  The on-disk stores are untouched
        — only the in-memory job table (and its cached result records)
        is bounded.
        """
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in ("done", "failed")
        ]
        for job_id in finished[: max(0, len(finished) - MAX_FINISHED_JOBS)]:
            del self._jobs[job_id]

    def _get_job(self, request: dict[str, Any]) -> Job | None:
        return self._jobs.get(str(request.get("job")))

    def _handle_status(self, request: dict[str, Any]) -> dict[str, Any]:
        if "job" in request:
            job = self._get_job(request)
            if job is None:
                return error_response(f"unknown job {request.get('job')!r}")
            return ok_response(job=job.describe())
        with self._jobs_lock:
            jobs = [job.describe() for job in self._jobs.values()]
        return ok_response(jobs=jobs, pool=self._pool_stats())

    def _handle_results(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._get_job(request)
        if job is None:
            return error_response(f"unknown job {request.get('job')!r}")
        return ok_response(
            job=job.id,
            state=job.state,
            records=list(job.results),
            truncated=job.results_truncated,
            store=str(ResultStore(job.out).path),
        )
