"""The sweep daemon: a job queue in front of one persistent worker pool.

``python -m repro.experiments serve`` runs one :class:`SweepDaemon` per
machine.  It listens on a local Unix-domain socket — and, with
``--listen host:port``, on TCP as well — speaking the line-delimited
JSON protocol of :mod:`repro.service.protocol` through its shared
:class:`~repro.service.protocol.LineServer`, and lets any number of
clients feed sweep jobs into one long-lived
:class:`~repro.service.pool.WorkerPool` — the process-startup cost of a
sweep is paid once per daemon, not once per request.  TCP requests are
token-authenticated (``--token`` / ``REPRO_SERVICE_TOKEN``); the Unix
socket stays guarded by filesystem permissions.

Verbs
-----
``ping``
    Liveness + pool statistics.
``submit``
    Enqueue a sweep job: ``{"op": "submit", "suite": "paper-claims",
    "smoke": true, "shard": "0/2", "out": "experiments/results",
    "collector": "host:port", "engine": "vectorized"}``.  Validation
    (suite name, shard spec, collector endpoint, engine mode) happens
    here, so a bad request fails fast at the client instead of inside
    the queue.  With a ``collector``, every
    stored record is also streamed to that result collector live.
``status``
    One job's state (``{"op": "status", "job": "job-1"}``) or, without a
    job id, every job plus pool traffic counters.
``results``
    The per-cell result records a job has produced so far.
``report``
    A rendered report bundle (scaling tables + β fits) for a *finished*
    job, built server-side from the job's store — clients get the exact
    bytes ``report --json`` would write, without touching the store.
``metrics``
    The daemon's full Prometheus-text exposition (queue depth, per-verb
    latency, per-phase cell timings, pool traffic) as one string field.
``metrics_history``
    The retained scrape history (a :class:`~repro.obs.ScrapeHistory`
    ring buffer snapshotted every ``scrape_interval_s``), optionally
    restricted by ``window_s`` and capped by ``max_points`` — the input
    to windowed SLO burn checks and dashboard sparklines.
``shutdown``
    Stop accepting work, finish the jobs already queued, exit.

Jobs run strictly in submission order (one at a time — the pool's
workers parallelise *within* a job).  Every completed cell is appended to
the job's :class:`~repro.experiments.store.ResultStore` the moment it
finishes, so daemon jobs are resumable and mergeable exactly like CLI
``run`` sweeps.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.report import report_payload
from repro.experiments.spec import get_suite
from repro.experiments.store import DEFAULT_OUT, ResultStore
from repro.local import ENGINE_MODES
from repro.obs import MetricsRegistry, ScrapeHistory
from repro.obs.timeseries import (
    DEFAULT_HISTORY_CAPACITY,
    DEFAULT_SCRAPE_INTERVAL_S,
)
from repro.service.client import CollectorSink, ServiceClient, ServiceError
from repro.service.pool import DEFAULT_BATCH_SIZE, WorkerPool
from repro.service.protocol import (
    MAX_SOCKET_PATH_BYTES,
    LineServer,
    check_unix_socket_path,
    error_response,
    metrics_history_response,
    ok_response,
    parse_endpoint,
    resolve_token,
    unix_socket_is_live,
)
from repro.service.shard import ShardSpec

__all__ = ["DEFAULT_SOCKET", "MAX_SOCKET_PATH_BYTES", "Job", "SweepDaemon"]

#: Default rendezvous point, next to the default result store.
DEFAULT_SOCKET = "experiments/service.sock"

#: Per-job cap on cell records kept in memory for the ``results`` verb.
#: The on-disk ResultStore is the durable record; the in-memory copy is a
#: convenience for small jobs, and capping it keeps a long-lived daemon's
#: memory (and the single-line ``results`` response) bounded.
MAX_RESULT_RECORDS_IN_MEMORY = 10_000

#: Finished jobs retained in the job table.  Older done/failed jobs are
#: evicted as new ones are submitted, so heavy traffic cannot grow the
#: daemon without bound.
MAX_FINISHED_JOBS = 50


def _int_tuple_field(name: str, value: Any) -> tuple[int, ...] | None:
    """Coerce a submit list field (``sizes``/``seeds``) to an int tuple.

    Raises :class:`ValueError` naming the field and the offending value,
    so the submit handler answers a validation ``error_response`` like
    every other parameter instead of letting a bare ``int(...)`` crash
    escape as an opaque handler exception.  Empty/absent means "use the
    suite's own sweep" (``None``); booleans are rejected — ``True`` is
    an ``int`` to Python but never a sweep size anyone meant.
    """
    if value is None or value == []:
        return None
    if not isinstance(value, (list, tuple)):
        raise ValueError(
            f"submit: {name!r} must be a list of integers, got {value!r}"
        )
    items = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float, str)):
            raise ValueError(
                f"submit: {name!r} must be a list of integers, "
                f"got {item!r} in {value!r}"
            )
        try:
            items.append(int(item))
        except (TypeError, ValueError):
            raise ValueError(
                f"submit: {name!r} must be a list of integers, "
                f"got {item!r} in {value!r}"
            ) from None
    return tuple(items)


@dataclass
class Job:
    """One queued/running/finished sweep request."""

    id: str
    suite: str
    smoke: bool = False
    sizes: tuple[int, ...] | None = None
    seeds: tuple[int, ...] | None = None
    shard: str | None = None
    out: str = DEFAULT_OUT
    collector: str | None = None
    engine: str | None = None
    state: str = "queued"  # queued | running | done | failed
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    total_cells: int = 0
    skipped: int = 0
    executed: int = 0
    unverified: int = 0
    failures: list[dict[str, Any]] = field(default_factory=list)
    error: str | None = None
    sink_error: str | None = None
    results: list[dict[str, Any]] = field(default_factory=list)
    results_truncated: bool = False

    def describe(self) -> dict[str, Any]:
        """The status-verb view of the job (everything but the records).

        Mutable fields are copied: connection threads serialise this
        dict while the runner thread appends to ``failures``, so handing
        out the live list would let ``json.dumps`` race a mutation.
        Callers hold ``_jobs_lock`` so the copy is a consistent snapshot.
        """
        return {
            "id": self.id,
            "suite": self.suite,
            "smoke": self.smoke,
            "sizes": list(self.sizes) if self.sizes else None,
            "seeds": list(self.seeds) if self.seeds else None,
            "shard": self.shard,
            "out": self.out,
            "collector": self.collector,
            "engine": self.engine,
            "state": self.state,
            "total_cells": self.total_cells,
            "skipped": self.skipped,
            "executed": self.executed,
            "unverified": self.unverified,
            "failures": list(self.failures),
            "error": self.error,
            "sink_error": self.sink_error,
        }


class SweepDaemon:
    """Serve sweep jobs over local and/or TCP sockets from one warm pool."""

    def __init__(
        self,
        socket_path: str | Path = DEFAULT_SOCKET,
        workers: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        listen: str | None = None,
        token: str | None = None,
        scrape_interval_s: float = DEFAULT_SCRAPE_INTERVAL_S,
        history_capacity: int = DEFAULT_HISTORY_CAPACITY,
        history_spill: str | Path | None = None,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.listen = listen
        self.token = resolve_token(token)
        self.registry = MetricsRegistry()
        self.history = ScrapeHistory(
            self.registry,
            interval_s=scrape_interval_s,
            capacity=history_capacity,
            spill_path=history_spill,
        )
        self.pool = WorkerPool(
            workers=workers, batch_size=batch_size, registry=self.registry
        )
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_queue: queue_module.Queue[str] = queue_module.Queue()
        self._job_counter = 0
        self._shutdown = threading.Event()
        self._server: LineServer | None = None
        self._runner_thread: threading.Thread | None = None
        self._started_monotonic: float | None = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Daemon-level gauges/counters in the shared registry.

        Queue depth, uptime and per-state job counts are *function*
        gauges — read live at scrape time, never maintained by hand.
        Cell phase timings observed here come off
        ``CellResult.timings``: worker processes have their own address
        space, so their spans travel back inside the result record and
        land in this (scrapable) registry at the progress callback.
        """
        self.registry.gauge(
            "daemon_queue_depth", "Jobs waiting in the submission queue."
        ).set_function(self._job_queue.qsize)
        self.registry.gauge(
            "daemon_uptime_seconds", "Seconds since the daemon started."
        ).set_function(self._uptime_s)
        jobs_gauge = self.registry.gauge(
            "daemon_jobs", "Jobs in the table, by state.", ("state",)
        )
        for state in ("queued", "running", "done", "failed"):
            jobs_gauge.labels(state=state).set_function(
                lambda state=state: sum(
                    1 for job in list(self._jobs.values()) if job.state == state
                )
            )
        self._cells_completed = self.registry.counter(
            "daemon_cells_completed_total",
            "Cells stored by daemon jobs (verified or not).",
        )
        self._job_seconds = self.registry.histogram(
            "daemon_job_seconds",
            "Wall-clock seconds per finished job.",
            buckets=(0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0),
        )
        self._cell_phase_seconds = self.registry.histogram(
            "daemon_cell_phase_seconds",
            "Per-cell phase durations (generate/run/verify/simulate).",
            ("phase",),
        )
        self._engine_rounds = self.registry.counter(
            "engine_rounds_total",
            "Rounds simulated per engine, kernel and array backend "
            "(interpreted fallbacks show up as engine=interpreted).",
            ("engine", "kernel", "backend"),
        )

    def _uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _cells_per_s(self) -> float:
        uptime = self._uptime_s()
        return self.pool.cells_executed / uptime if uptime > 0 else 0.0

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """The bound ``(host, port)`` of the TCP listener, if any."""
        return self._server.tcp_address if self._server is not None else None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind the listener(s) and start the accept and job-runner threads."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        # Fail fast on every endpoint problem *before* acquiring any
        # resource: the pool must never fork for a daemon that cannot
        # come up (over-long socket path, TCP without a token, busy
        # address).  listen_unix repeats these checks, but binding can
        # only happen *after* the fork — a listener bound first would be
        # inherited by every worker and keep the socket alive past the
        # daemon's death — so the pre-checks here are what keeps a
        # doomed start from forking at all.
        check_unix_socket_path(self.socket_path)
        tcp_endpoint = None
        if self.listen is not None:
            tcp_endpoint = parse_endpoint(self.listen)
            if not tcp_endpoint.is_tcp:
                raise ServiceError(
                    f"--listen takes a host:port TCP address, got {self.listen!r}"
                )
            if not self.token:
                raise ServiceError(
                    "refusing to listen on TCP without an auth token — pass "
                    "--token or set REPRO_SERVICE_TOKEN"
                )
        if self.socket_path.exists() and unix_socket_is_live(self.socket_path):
            raise RuntimeError(f"another daemon is serving {self.socket_path}")
        # Fork the worker processes *now*, while this is still the only
        # thread: forking lazily from the runner thread with accept /
        # connection threads live risks a child inheriting a lock some
        # other thread held at fork time.
        self.pool.start()
        server = LineServer(
            self._dispatch,
            token=self.token,
            name="sweep-daemon",
            close_after=lambda request, _: request.get("op") == "shutdown",
            registry=self.registry,
            verbs=("ping", "submit", "status", "results", "report",
                   "metrics", "metrics_history", "shutdown"),
        )
        try:
            server.listen_unix(self.socket_path)
            if tcp_endpoint is not None:
                server.listen_tcp(tcp_endpoint.host, tcp_endpoint.port)
            server.start()
        except BaseException:
            server.close()
            self.pool.shutdown()
            raise
        self._server = server
        self._started_monotonic = time.monotonic()
        if self.history.interval_s > 0:
            self.history.start()
        self._runner_thread = threading.Thread(
            target=self._runner_loop, name="sweep-daemon-runner", daemon=True
        )
        self._runner_thread.start()

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            self.start()
        try:
            while not self._shutdown.is_set():
                self._shutdown.wait(0.2)
        finally:
            self.close()

    def stop(self) -> None:
        """Request shutdown: queued jobs still finish, then threads exit.

        Taking the jobs lock makes stopping atomic with respect to
        ``submit``: a submit that passed its shutdown check under the
        lock has already enqueued its job before the flag can be set, so
        the runner loop (which exits only once the flag is set *and* the
        queue is drained) never strands an accepted job.
        """
        with self._jobs_lock:
            self._shutdown.set()

    def close(self) -> None:
        """Stop, drain the queued jobs, and release every resource.

        The runner thread is joined *before* the accept loops are
        stopped: clients keep polling ``status`` / ``results`` while the
        queued jobs drain (only new ``submit`` requests are rejected once
        the shutdown flag is up).
        """
        self.stop()
        if self._runner_thread is not None:
            # No timeout: the shutdown contract is "queued jobs still
            # finish", however long they take.  A wedged sweep cannot
            # hang this forever — the pool detects dead workers within
            # ~1s and fails the job rather than blocking.
            self._runner_thread.join()
            self._runner_thread = None
        self.history.stop()
        if self._server is not None:
            # The server unlinks only a socket *it* bound: a close()
            # after a failed start ("another daemon is serving") has no
            # server and must not sever the live daemon owning the file.
            self._server.close()
            self._server = None
        self.pool.shutdown()

    def __enter__(self) -> "SweepDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # job execution (runner thread)
    # ------------------------------------------------------------------
    def _runner_loop(self) -> None:
        while not (self._shutdown.is_set() and self._job_queue.empty()):
            try:
                job_id = self._job_queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            self._run_job(self._jobs[job_id])

    def _run_job(self, job: Job) -> None:
        """Execute one job, updating its fields *live* for the status verb.

        The plan (total cells, resume skips) is published before the first
        cell runs, and executed/unverified/failure counters tick per cell,
        so a polling client always sees a meaningful denominator — even if
        the sweep later dies and the job ends up ``failed``.
        """
        job.state = "running"
        job.started_s = time.time()
        job_start = time.perf_counter()

        def on_plan(total: int, skipped: int) -> None:
            job.total_cells = total
            job.skipped = skipped

        def progress(result) -> None:
            job.executed += 1
            self._cells_completed.inc()
            for phase, seconds in (result.timings or {}).items():
                self._cell_phase_seconds.labels(phase=phase).observe(seconds)
            for dispatch, rounds in (result.engine_rounds or {}).items():
                engine_kind, _, rest = dispatch.partition("/")
                kernel, _, backend = rest.partition("/")
                self._engine_rounds.labels(
                    engine=engine_kind, kernel=kernel or "unknown",
                    backend=backend or "-",
                ).inc(rounds)
            if not result.verified:
                job.unverified += 1
            with self._jobs_lock:
                if len(job.results) < MAX_RESULT_RECORDS_IN_MEMORY:
                    job.results.append(result.to_record())
                else:
                    job.results_truncated = True

        def on_failure(cell, error: str) -> None:
            # Under the jobs lock: status/results handlers snapshot the
            # job's mutable lists under the same lock.
            with self._jobs_lock:
                job.failures.append({
                    "scenario": cell.scenario,
                    "n": cell.n,
                    "seed": cell.seed,
                    "error": error,
                })

        sink = None
        try:
            suite = get_suite(job.suite)
            shard = ShardSpec.parse(job.shard) if job.shard else None
            sinks: tuple = ()
            if job.collector:
                sink = CollectorSink(ServiceClient(job.collector, token=self.token))
                sinks = (sink,)
            report = self.pool.run_suite(
                suite,
                ResultStore(job.out),
                smoke=job.smoke,
                sizes=job.sizes,
                seeds=job.seeds,
                shard=shard,
                progress=progress,
                on_plan=on_plan,
                on_failure=on_failure,
                sinks=sinks,
                engine=job.engine,
            )
            job.sink_error = report.sink_error
        except Exception as error:  # noqa: BLE001 - surfaced via status verb
            job.state = "failed"
            job.error = repr(error)
        else:
            job.state = "done"
        finally:
            if sink is not None:
                sink.close()
            job.finished_s = time.time()
            self._job_seconds.observe(time.perf_counter() - job_start)

    # ------------------------------------------------------------------
    # protocol handling (dispatched from LineServer connection threads)
    # ------------------------------------------------------------------
    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return ok_response(pool=self._pool_stats(), jobs=len(self._jobs))
        if op == "submit":
            return self._handle_submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "results":
            return self._handle_results(request)
        if op == "report":
            return self._handle_report(request)
        if op == "metrics":
            return ok_response(metrics=self.registry.render())
        if op == "metrics_history":
            return metrics_history_response(self.history, request)
        if op == "shutdown":
            self.stop()
            return ok_response(stopping=True)
        return error_response(
            f"unknown op {op!r} (expected ping/submit/status/results/"
            f"report/metrics/metrics_history/shutdown)"
        )

    def _pool_stats(self) -> dict[str, Any]:
        return {
            "workers": self.pool.workers,
            "batch_size": self.pool.batch_size,
            "started": self.pool.started,
            "sweeps_served": self.pool.sweeps_served,
            "cells_executed": self.pool.cells_executed,
            "batches_executed": self.pool.batches_executed,
        }

    def _handle_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._shutdown.is_set():
            return error_response("daemon is shutting down; job rejected")
        suite_name = request.get("suite")
        if not suite_name:
            return error_response("submit requires a 'suite' field")
        try:
            get_suite(suite_name)
        except KeyError as error:
            return error_response(error.args[0])
        shard = request.get("shard")
        if shard is not None:
            try:
                ShardSpec.parse(str(shard))
            except ValueError as error:
                return error_response(str(error))
        collector = request.get("collector")
        if collector is not None:
            try:
                parse_endpoint(str(collector))
            except ValueError as error:
                return error_response(str(error))
        engine = request.get("engine")
        if engine is not None and engine not in ENGINE_MODES:
            return error_response(
                f"unknown engine {engine!r} "
                f"(expected one of: {', '.join(ENGINE_MODES)})"
            )
        # Validate before taking the lock: a malformed value must answer
        # a named validation error, never raise inside the handler.
        try:
            sizes = _int_tuple_field("sizes", request.get("sizes"))
            seeds = _int_tuple_field("seeds", request.get("seeds"))
        except ValueError as error:
            return error_response(str(error))
        with self._jobs_lock:
            # Re-check under the lock: stop() also takes it, so a job
            # accepted here is enqueued before the flag can flip and the
            # runner loop is guaranteed to drain it.
            if self._shutdown.is_set():
                return error_response("daemon is shutting down; job rejected")
            self._evict_finished_jobs()
            self._job_counter += 1
            job = Job(
                id=f"job-{self._job_counter}",
                suite=suite_name,
                smoke=bool(request.get("smoke", False)),
                sizes=sizes,
                seeds=seeds,
                shard=str(shard) if shard is not None else None,
                out=str(request.get("out") or DEFAULT_OUT),
                collector=str(collector) if collector is not None else None,
                engine=str(engine) if engine is not None else None,
            )
            self._jobs[job.id] = job
            self._job_queue.put(job.id)
        return ok_response(job=job.id, queued=self._job_queue.qsize())

    def _evict_finished_jobs(self) -> None:
        """Drop the oldest done/failed jobs beyond :data:`MAX_FINISHED_JOBS`.

        Called with the jobs lock held.  The on-disk stores are untouched
        — only the in-memory job table (and its cached result records)
        is bounded.
        """
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in ("done", "failed")
        ]
        for job_id in finished[: max(0, len(finished) - MAX_FINISHED_JOBS)]:
            del self._jobs[job_id]

    def _get_job(self, request: dict[str, Any]) -> Job | None:
        return self._jobs.get(str(request.get("job")))

    def _handle_status(self, request: dict[str, Any]) -> dict[str, Any]:
        if "job" in request:
            # Same lock as the all-jobs path: describe() snapshots
            # mutable fields, and the snapshot is only consistent if the
            # runner thread cannot mutate the job mid-copy.
            with self._jobs_lock:
                job = self._get_job(request)
                if job is None:
                    return error_response(f"unknown job {request.get('job')!r}")
                return ok_response(job=job.describe())
        with self._jobs_lock:
            jobs = [job.describe() for job in self._jobs.values()]
        return ok_response(
            jobs=jobs,
            pool=self._pool_stats(),
            uptime_s=self._uptime_s(),
            queue_depth=self._job_queue.qsize(),
            cells_per_s=self._cells_per_s(),
        )

    def _handle_results(self, request: dict[str, Any]) -> dict[str, Any]:
        with self._jobs_lock:
            job = self._get_job(request)
            if job is None:
                return error_response(f"unknown job {request.get('job')!r}")
            return ok_response(
                job=job.id,
                state=job.state,
                records=list(job.results),
                truncated=job.results_truncated,
                store=str(ResultStore(job.out).path),
            )

    def _handle_report(self, request: dict[str, Any]) -> dict[str, Any]:
        """Build the report bundle for a finished job, server-side.

        The bundle is built from the job's on-disk store — the same bytes
        ``report --out <job.out> --json`` would produce — so clients on
        other machines never need the store file itself.
        """
        if "job" not in request:
            return error_response(
                "report requires a 'job' field naming a finished job"
            )
        job = self._get_job(request)
        if job is None:
            return error_response(f"unknown job {request.get('job')!r}")
        if job.state not in ("done", "failed"):
            return error_response(
                f"{job.id} is still {job.state}; report needs a finished job"
            )
        records = ResultStore(job.out).records()
        if not records:
            return error_response(f"{job.id} stored no results to report on")
        return ok_response(job=job.id, state=job.state, **report_payload(records))
