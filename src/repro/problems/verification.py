"""Verification of half-edge labelings against a node-edge-checkable problem.

A solution is valid (Definition 6) when every node's label multiset is in
``N_Π^{deg}`` and every edge's label multiset is in ``E_Π^{rank}``.  The
verifier reports every violated constraint, which the test-suite and the
experiment harness use both to assert correctness and to produce useful
diagnostics when an algorithm is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.problems.base import NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph


@dataclass(frozen=True)
class Violation:
    """A single violated constraint."""

    kind: str  # "node", "edge", or "unlabeled"
    subject: Any  # the node or edge identifier
    configuration: tuple
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.subject!r}: {self.message} (labels={self.configuration!r})"


@dataclass
class VerificationResult:
    """Outcome of verifying a labeling against a problem."""

    ok: bool
    violations: list[Violation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """Human-readable one-line summary."""
        if self.ok:
            return "valid solution"
        return f"{len(self.violations)} violations: " + "; ".join(
            str(v) for v in self.violations[:5]
        )


def verify_solution(
    problem: NodeEdgeCheckableProblem,
    semigraph: SemiGraph,
    labeling: HalfEdgeLabeling,
    require_complete: bool = True,
) -> VerificationResult:
    """Check a half-edge labeling against ``problem`` on ``semigraph``.

    Parameters
    ----------
    require_complete:
        When true (the default), any unlabeled half-edge is reported as a
        violation.  When false, only nodes and edges all of whose incident
        half-edges are labeled are checked — useful for verifying the
        intermediate, partial outputs produced inside the transformation.
    """
    violations: list[Violation] = []

    if require_complete:
        for half_edge in semigraph.half_edges():
            if not labeling.is_labeled(half_edge):
                violations.append(
                    Violation("unlabeled", half_edge, (), "half-edge has no label")
                )

    for node in semigraph.nodes:
        incident = semigraph.half_edges_of_node(node)
        if not all(labeling.is_labeled(h) for h in incident):
            continue
        config = labeling.node_configuration(semigraph, node)
        if not problem.node_config_ok(config):
            violations.append(
                Violation("node", node, config, "node configuration not allowed")
            )

    for edge in semigraph.edges:
        incident = semigraph.half_edges_of_edge(edge)
        if not all(labeling.is_labeled(h) for h in incident):
            continue
        config = labeling.edge_configuration(semigraph, edge)
        if not problem.edge_config_ok(config, semigraph.rank(edge)):
            violations.append(
                Violation("edge", edge, config, "edge configuration not allowed")
            )

    return VerificationResult(ok=not violations, violations=violations)
