"""Vertex colouring problems in the node-edge-checkability formalism.

Two variants are provided:

* :class:`DegreePlusOneColoring` — the (deg+1)-list-style colouring in
  which every node must receive a colour of value at most its degree plus
  one;
* :class:`DeltaPlusOneColoring` — the classic (Δ+1)-colouring in which
  every node must receive a colour of value at most a globally fixed
  number of colours.

Encoding: the label on a half-edge ``(v, e)`` is the colour of ``v`` (a
positive integer).  The node constraint requires all incident half-edges of
a node to carry the same colour and bounds its value; the edge constraint
requires the two endpoints of a rank-2 edge to carry different colours.
Rank-1 edges may carry any colour (the colour of their single endpoint) and
rank-0 edges carry nothing.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.problems.base import NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import HalfEdge


def _is_colour(label: Any) -> bool:
    return isinstance(label, int) and label >= 1


class DegreePlusOneColoring(NodeEdgeCheckableProblem):
    """(deg+1)-vertex colouring: colour of a node is at most its degree + 1."""

    name = "(deg+1)-coloring"

    def _colour_bound(self, degree: int) -> int:
        return degree + 1

    def node_config_ok(self, labels: Iterable[Any]) -> bool:
        labels = tuple(labels)
        if not labels:
            return True
        if not all(_is_colour(lab) for lab in labels):
            return False
        if len(set(labels)) != 1:
            return False
        return labels[0] <= self._colour_bound(len(labels))

    def edge_config_ok(self, labels: Iterable[Any], rank: int) -> bool:
        labels = tuple(labels)
        if len(labels) != rank:
            return False
        if rank == 0:
            return True
        if not all(_is_colour(lab) for lab in labels):
            return False
        if rank == 1:
            return True
        return labels[0] != labels[1]

    # ------------------------------------------------------------------
    # classic conversions
    # ------------------------------------------------------------------
    def to_classic(
        self, semigraph: SemiGraph, labeling: HalfEdgeLabeling
    ) -> dict[Any, int]:
        """Extract the vertex colouring: node -> colour.

        Nodes with no incident half-edges receive colour 1.
        """
        colouring: dict[Any, int] = {}
        for node in semigraph.nodes:
            half_edges = semigraph.half_edges_of_node(node)
            if not half_edges:
                colouring[node] = 1
                continue
            colours = {labeling[h] for h in half_edges}
            if len(colours) != 1:
                raise ValueError(f"node {node!r} carries inconsistent colours: {colours!r}")
            colouring[node] = next(iter(colours))
        return colouring

    def from_classic(
        self, semigraph: SemiGraph, classic: dict[Any, int]
    ) -> HalfEdgeLabeling:
        """Lift a vertex colouring (node -> colour) to a half-edge labeling."""
        labeling = HalfEdgeLabeling()
        for node in semigraph.nodes:
            for edge in semigraph.incident_edges(node):
                labeling.assign(HalfEdge(node, edge), classic[node])
        return labeling


class DeltaPlusOneColoring(DegreePlusOneColoring):
    """(Δ+1)-vertex colouring with a global colour budget.

    Parameters
    ----------
    num_colours:
        The total number of allowed colours (``Δ + 1`` for the classical
        problem); colours are the integers ``1 .. num_colours``.
    """

    def __init__(self, num_colours: int) -> None:
        if num_colours < 1:
            raise ValueError("num_colours must be at least 1")
        self.num_colours = num_colours
        self.name = f"({num_colours})-coloring"

    def _colour_bound(self, degree: int) -> int:
        return self.num_colours
