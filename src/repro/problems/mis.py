"""Maximal independent set (MIS) in the node-edge-checkability formalism.

The paper names MIS as one of the problems in the class ``P1`` covered by
Theorem 1 / Theorem 12 but does not spell out its encoding; we use the
standard encoding from the round-elimination literature, adapted to
semi-graphs so that rank-1 edges (edges whose other endpoint lies outside
the current sub-instance) never create unsatisfiable residual constraints:

* labels: ``M`` (the node is in the MIS), ``P`` (the node is not in the
  MIS and the other endpoint of this edge is in the MIS), ``O`` (the node
  is not in the MIS, no claim about the other endpoint);
* node constraint: either every incident half-edge is ``M``, or at least
  one incident half-edge is ``P`` and all are in ``{P, O}`` (a node with no
  incident half-edges is also valid — isolated nodes join the MIS during
  the classic conversion);
* edge constraint: rank-2 edges carry ``{M, P}``, ``{M, O}`` or ``{O, O}``
  (never ``{M, M}`` — independence — and ``P`` only opposite ``M`` —
  maximality); rank-1 edges carry ``{M}`` or ``{O}`` (``P`` is forbidden,
  so an algorithm running on a sub-semi-graph never relies on an unseen
  endpoint for its maximality); rank-0 edges carry nothing.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.problems.base import NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import HalfEdge

IN_MIS = "M"
POINTER = "P"
OUT = "O"

_RANK2_CONFIGS = {
    (IN_MIS, POINTER),
    (POINTER, IN_MIS),
    (IN_MIS, OUT),
    (OUT, IN_MIS),
    (OUT, OUT),
}


class MaximalIndependentSetProblem(NodeEdgeCheckableProblem):
    """Maximal independent set as a node-edge-checkable problem."""

    name = "maximal-independent-set"

    def node_config_ok(self, labels: Iterable[Any]) -> bool:
        labels = tuple(labels)
        if any(lab not in (IN_MIS, POINTER, OUT) for lab in labels):
            return False
        if not labels:
            return True
        if all(lab == IN_MIS for lab in labels):
            return True
        return POINTER in labels and all(lab in (POINTER, OUT) for lab in labels)

    def edge_config_ok(self, labels: Iterable[Any], rank: int) -> bool:
        labels = tuple(labels)
        if len(labels) != rank:
            return False
        if rank == 0:
            return True
        if rank == 1:
            return labels[0] in (IN_MIS, OUT)
        return tuple(labels) in _RANK2_CONFIGS

    # ------------------------------------------------------------------
    # classic conversions
    # ------------------------------------------------------------------
    def to_classic(self, semigraph: SemiGraph, labeling: HalfEdgeLabeling) -> set:
        """The independent set: nodes all of whose half-edges are ``M``.

        Nodes with no incident half-edges are included (an isolated node
        always belongs to every maximal independent set).
        """
        independent = set()
        for node in semigraph.nodes:
            half_edges = semigraph.half_edges_of_node(node)
            if not half_edges:
                independent.add(node)
                continue
            if all(labeling[h] == IN_MIS for h in half_edges):
                independent.add(node)
        return independent

    def from_classic(self, semigraph: SemiGraph, classic: set) -> HalfEdgeLabeling:
        """Lift an MIS (set of nodes) of the underlying graph to a labeling."""
        labeling = HalfEdgeLabeling()
        for node in semigraph.nodes:
            in_mis = node in classic
            for edge in semigraph.incident_edges(node):
                other = semigraph.other_endpoint(edge, node)
                if in_mis:
                    label = IN_MIS
                elif other is not None and other in classic:
                    label = POINTER
                else:
                    label = OUT
                labeling.assign(HalfEdge(node, edge), label)
        return labeling
