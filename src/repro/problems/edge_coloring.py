"""(edge-degree + 1)-edge colouring in the node-edge-checkability formalism.

This is the problem ``Π`` of Section 5.1 of the paper:

* labels are pairs ``(a, b)`` of positive integers ("degree part" ``a`` and
  "colour part" ``b``) plus the dummy label ``D``;
* the node constraint requires that, among the non-dummy labels incident on
  a node, every degree part is at most the number of non-dummy labels and
  all colour parts are pairwise distinct;
* the edge constraint requires that a rank-2 edge carries two pairs with
  the same colour part ``b`` and degree parts summing to at least ``b + 1``,
  a rank-1 edge carries the dummy label, and a rank-0 edge carries nothing.

A valid solution induces a proper edge colouring of the underlying graph in
which every edge ``e`` receives a colour of value at most
``edge-degree(e) + 1``; conversely any such colouring can be lifted to a
valid solution (both directions are the 1-round transformations described
in the paper).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.problems.base import DUMMY, NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import HalfEdge


def is_pair_label(label: Any) -> bool:
    """Whether ``label`` is a well-formed ``(degree part, colour part)`` pair."""
    return (
        isinstance(label, tuple)
        and len(label) == 2
        and all(isinstance(x, int) and x >= 1 for x in label)
    )


class EdgeDegreePlusOneEdgeColoring(NodeEdgeCheckableProblem):
    """The (edge-degree + 1)-edge colouring problem of Section 5.1."""

    name = "(edge-degree+1)-edge-coloring"

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def node_config_ok(self, labels: Iterable[Any]) -> bool:
        labels = tuple(labels)
        pairs = [lab for lab in labels if lab != DUMMY]
        if not all(is_pair_label(lab) for lab in pairs):
            return False
        degree_parts = [a for a, _ in pairs]
        colour_parts = [b for _, b in pairs]
        if any(a > len(pairs) for a in degree_parts):
            return False
        return len(colour_parts) == len(set(colour_parts))

    def edge_config_ok(self, labels: Iterable[Any], rank: int) -> bool:
        labels = tuple(labels)
        if len(labels) != rank:
            return False
        if rank == 0:
            return True
        if rank == 1:
            return labels[0] == DUMMY
        first, second = labels
        if not (is_pair_label(first) and is_pair_label(second)):
            return False
        (a1, b1), (a2, b2) = first, second
        return b1 == b2 and a1 + a2 >= b1 + 1

    # ------------------------------------------------------------------
    # classic conversions
    # ------------------------------------------------------------------
    def to_classic(
        self, semigraph: SemiGraph, labeling: HalfEdgeLabeling
    ) -> dict[Any, int]:
        """Extract the edge colouring: edge identifier -> colour.

        Only rank-2 edges receive colours (rank-1 edges carry the dummy
        label and correspond to no edge of the underlying graph).
        """
        colouring: dict[Any, int] = {}
        for edge in semigraph.edges_of_rank(2):
            half_edges = semigraph.half_edges_of_edge(edge)
            labels = [labeling[h] for h in half_edges]
            if not all(is_pair_label(lab) for lab in labels):
                raise ValueError(f"edge {edge!r} does not carry pair labels: {labels!r}")
            colour_parts = {lab[1] for lab in labels}
            if len(colour_parts) != 1:
                raise ValueError(f"edge {edge!r} carries inconsistent colours: {labels!r}")
            colouring[edge] = labels[0][1]
        return colouring

    def from_classic(
        self, semigraph: SemiGraph, classic: dict[Any, int]
    ) -> HalfEdgeLabeling:
        """Lift an edge colouring (edge id -> colour) to a half-edge labeling.

        Degree parts are chosen as the endpoints' degrees, which always
        satisfies the constraint because a colour of value at most
        ``edge-degree(e) + 1`` obeys ``deg(u) + deg(v) >= colour + 1``.
        """
        labeling = HalfEdgeLabeling()
        rank2_degree = {
            node: sum(
                1 for e in semigraph.incident_edges(node) if semigraph.rank(e) == 2
            )
            for node in semigraph.nodes
        }
        for edge in semigraph.edges:
            rank = semigraph.rank(edge)
            if rank == 1:
                (node,) = semigraph.endpoints(edge)
                labeling.assign(HalfEdge(node, edge), DUMMY)
            elif rank == 2:
                colour = classic[edge]
                for node in semigraph.endpoints(edge):
                    labeling.assign(HalfEdge(node, edge), (rank2_degree[node], colour))
        return labeling
