"""Verifiers for the classic (graph-level) formulations of the problems.

These operate directly on :mod:`networkx` graphs and the natural solution
objects (colour maps, matchings, independent sets) and are used by the
test-suite and the experiment harness to check end-to-end outputs of the
transformation independently of the half-edge formalism.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx


def is_proper_vertex_coloring(graph: nx.Graph, colours: Mapping[Hashable, int]) -> bool:
    """Every node coloured, adjacent nodes differ."""
    if any(node not in colours for node in graph.nodes()):
        return False
    return all(colours[u] != colours[v] for u, v in graph.edges())


def is_deg_plus_one_coloring(graph: nx.Graph, colours: Mapping[Hashable, int]) -> bool:
    """Proper colouring in which each node's colour is at most its degree + 1."""
    if not is_proper_vertex_coloring(graph, colours):
        return False
    return all(colours[v] <= graph.degree(v) + 1 for v in graph.nodes())


def is_delta_plus_one_coloring(graph: nx.Graph, colours: Mapping[Hashable, int]) -> bool:
    """Proper colouring using colours from ``1 .. Δ + 1``."""
    if not is_proper_vertex_coloring(graph, colours):
        return False
    max_degree = max((d for _, d in graph.degree()), default=0)
    return all(1 <= colours[v] <= max_degree + 1 for v in graph.nodes())


def edge_degree(graph: nx.Graph, edge: tuple) -> int:
    """Number of edges adjacent to ``edge`` (sharing an endpoint)."""
    u, v = edge
    return graph.degree(u) + graph.degree(v) - 2


def _is_proper_normalised(graph: nx.Graph, normalised: Mapping[tuple, int]) -> bool:
    """Properness check on an already-normalised complete edge-colour map."""
    for node, adjacency in graph.adj.items():
        seen: set = set()
        for neighbor in adjacency:
            colour = normalised[_edge_key(node, neighbor)]
            if colour in seen:
                return False
            seen.add(colour)
    return True


def is_proper_edge_coloring(graph: nx.Graph, colours: Mapping[tuple, int]) -> bool:
    """Every edge coloured, adjacent edges differ.

    Edge keys may be given in either endpoint order.
    """
    normalised = _normalise_edge_map(graph, colours)
    if normalised is None:
        return False
    return _is_proper_normalised(graph, normalised)


def is_edge_degree_plus_one_coloring(
    graph: nx.Graph, colours: Mapping[tuple, int]
) -> bool:
    """Proper edge colouring with each edge's colour at most edge-degree + 1."""
    normalised = _normalise_edge_map(graph, colours)
    if normalised is None:
        return False
    if not _is_proper_normalised(graph, normalised):
        return False
    # One degree map instead of two graph.degree() calls per edge.
    degrees = dict(graph.degree())
    return all(
        normalised[_edge_key(u, v)] <= degrees[u] + degrees[v] - 1
        for u, v in graph.edges()
    )


def is_two_delta_minus_one_edge_coloring(
    graph: nx.Graph, colours: Mapping[tuple, int]
) -> bool:
    """Proper edge colouring using colours from ``1 .. 2Δ - 1``."""
    normalised = _normalise_edge_map(graph, colours)
    if normalised is None:
        return False
    if not _is_proper_normalised(graph, normalised):
        return False
    max_degree = max((d for _, d in graph.degree()), default=0)
    budget = max(1, 2 * max_degree - 1)
    return all(1 <= c <= budget for c in normalised.values())


def is_matching(graph: nx.Graph, matching: Iterable[tuple]) -> bool:
    """The edge set is a matching of the graph."""
    seen_nodes: set = set()
    for edge in matching:
        u, v = edge
        if not graph.has_edge(u, v):
            return False
        if u in seen_nodes or v in seen_nodes:
            return False
        seen_nodes.update((u, v))
    return True


def is_maximal_matching(graph: nx.Graph, matching: Iterable[tuple]) -> bool:
    """The edge set is a matching and no edge can be added."""
    matching = list(matching)
    if not is_matching(graph, matching):
        return False
    matched_nodes: set = set()
    for u, v in matching:
        matched_nodes.update((u, v))
    return all(u in matched_nodes or v in matched_nodes for u, v in graph.edges())


def is_independent_set(graph: nx.Graph, nodes: Iterable[Hashable]) -> bool:
    """No two selected nodes are adjacent."""
    selected = set(nodes)
    if not selected <= set(graph.nodes()):
        return False
    return all(not (u in selected and v in selected) for u, v in graph.edges())


def is_maximal_independent_set(graph: nx.Graph, nodes: Iterable[Hashable]) -> bool:
    """Independent set to which no node can be added."""
    selected = set(nodes)
    if not is_independent_set(graph, selected):
        return False
    for node in graph.nodes():
        if node in selected:
            continue
        if not any(nbr in selected for nbr in graph.neighbors(node)):
            return False
    return True


def _edge_key(u: Hashable, v: Hashable) -> tuple:
    a, b = sorted((u, v), key=repr)
    return (a, b)


def _normalise_edge_map(
    graph: nx.Graph, colours: Mapping[tuple, int]
) -> dict[tuple, int] | None:
    """Map arbitrary edge keys to canonical sorted keys; None if incomplete."""
    normalised: dict[tuple, int] = {}
    for edge, colour in colours.items():
        u, v = edge
        normalised[_edge_key(u, v)] = colour
    for u, v in graph.edges():
        if _edge_key(u, v) not in normalised:
            return None
    return normalised
