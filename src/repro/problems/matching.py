"""Maximal matching in the node-edge-checkability formalism (Section 5.2).

Labels: ``M`` (this endpoint is matched through this edge), ``P`` (this
endpoint is matched through another edge), ``O`` (this endpoint is
unmatched), ``D`` (dummy, used on rank-1 edges).

* Node constraint: either exactly one incident half-edge is ``M`` and the
  rest are in ``{P, O, D}``, or every incident half-edge is in ``{O, D}``.
* Edge constraint: a rank-2 edge carries ``{M, M}`` (matched), ``{P, P}``
  (both endpoints matched elsewhere) or ``{P, O}``; a rank-1 edge carries
  ``{D}``; a rank-0 edge carries nothing.  The absence of ``{O, O}``
  enforces maximality.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.problems.base import DUMMY, NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import HalfEdge

MATCHED = "M"
POINTER = "P"
UNMATCHED = "O"

_NODE_REST = {POINTER, UNMATCHED, DUMMY}
_EDGE_CONFIGS = {
    frozenset({MATCHED}): 2,  # {M, M}
    frozenset({POINTER}): 2,  # {P, P}
    frozenset({POINTER, UNMATCHED}): 2,  # {P, O}
}


class MaximalMatchingProblem(NodeEdgeCheckableProblem):
    """The maximal matching problem of Section 5.2."""

    name = "maximal-matching"

    def node_config_ok(self, labels: Iterable[Any]) -> bool:
        labels = tuple(labels)
        if any(lab not in (MATCHED, POINTER, UNMATCHED, DUMMY) for lab in labels):
            return False
        matched_count = sum(1 for lab in labels if lab == MATCHED)
        if matched_count == 1:
            return all(lab in _NODE_REST for lab in labels if lab != MATCHED)
        if matched_count == 0:
            return all(lab in (UNMATCHED, DUMMY) for lab in labels)
        return False

    def edge_config_ok(self, labels: Iterable[Any], rank: int) -> bool:
        labels = tuple(labels)
        if len(labels) != rank:
            return False
        if rank == 0:
            return True
        if rank == 1:
            return labels[0] == DUMMY
        pair = tuple(sorted(labels))
        return pair in (
            (MATCHED, MATCHED),
            (POINTER, POINTER),
            (UNMATCHED, POINTER),
            (POINTER, UNMATCHED),
        )

    # ------------------------------------------------------------------
    # classic conversions
    # ------------------------------------------------------------------
    def to_classic(self, semigraph: SemiGraph, labeling: HalfEdgeLabeling) -> set:
        """The matching: the set of rank-2 edge identifiers labeled ``{M, M}``."""
        matching = set()
        for edge in semigraph.edges_of_rank(2):
            labels = [labeling[h] for h in semigraph.half_edges_of_edge(edge)]
            if labels == [MATCHED, MATCHED]:
                matching.add(edge)
        return matching

    def from_classic(self, semigraph: SemiGraph, classic: set) -> HalfEdgeLabeling:
        """Lift a maximal matching (set of edge identifiers) to a labeling."""
        matched_nodes = set()
        for edge in classic:
            matched_nodes.update(semigraph.endpoints(edge))
        labeling = HalfEdgeLabeling()
        for edge in semigraph.edges:
            rank = semigraph.rank(edge)
            if rank == 1:
                (node,) = semigraph.endpoints(edge)
                labeling.assign(HalfEdge(node, edge), DUMMY)
            elif rank == 2:
                for node in semigraph.endpoints(edge):
                    if edge in classic:
                        label = MATCHED
                    elif node in matched_nodes:
                        label = POINTER
                    else:
                        label = UNMATCHED
                    labeling.assign(HalfEdge(node, edge), label)
        return labeling
