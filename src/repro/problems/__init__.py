"""Node-edge-checkable problems (Section 2 of the paper).

A node-edge-checkable problem ``Π = (Σ, N_Π, E_Π)`` assigns labels to
half-edges and is checked by a node constraint (the multiset of labels
around each node) and an edge constraint (the multiset of labels around
each edge, depending on its rank).  This package provides:

* the abstract problem interface (:mod:`repro.problems.base`),
* solution verification (:mod:`repro.problems.verification`),
* the node-list and edge-list variants ``Π*`` and ``Π×``
  (:mod:`repro.problems.lists`),
* the concrete problems used in the paper: (edge-degree+1)-edge colouring,
  maximal matching, MIS, and (deg+1)/(Δ+1)-vertex colouring, and
* verifiers for the classic (graph-level) formulations
  (:mod:`repro.problems.classic`).
"""

from repro.problems.base import DUMMY, NodeEdgeCheckableProblem
from repro.problems.verification import VerificationResult, Violation, verify_solution
from repro.problems.lists import (
    EdgeListConstraint,
    EdgeListInstance,
    NodeListConstraint,
    NodeListInstance,
    build_edge_list_instance,
    build_node_list_instance,
    verify_edge_list_solution,
    verify_node_list_solution,
)
from repro.problems.edge_coloring import EdgeDegreePlusOneEdgeColoring
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MaximalIndependentSetProblem
from repro.problems.vertex_coloring import DegreePlusOneColoring, DeltaPlusOneColoring
from repro.problems.sinkless_orientation import SinklessOrientationProblem

__all__ = [
    "DUMMY",
    "NodeEdgeCheckableProblem",
    "VerificationResult",
    "Violation",
    "verify_solution",
    "NodeListConstraint",
    "EdgeListConstraint",
    "NodeListInstance",
    "EdgeListInstance",
    "build_node_list_instance",
    "build_edge_list_instance",
    "verify_node_list_solution",
    "verify_edge_list_solution",
    "EdgeDegreePlusOneEdgeColoring",
    "MaximalMatchingProblem",
    "MaximalIndependentSetProblem",
    "DegreePlusOneColoring",
    "DeltaPlusOneColoring",
    "SinklessOrientationProblem",
]
