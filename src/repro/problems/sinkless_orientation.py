"""Sinkless orientation in the node-edge-checkability formalism.

Sinkless orientation is one of the two natural problems the paper's
introduction cites as having a known non-trivial tight bound (Θ(log n)
deterministically, [GS17, CKP19]).  It is included here as an additional
worked example of the formalism and as a test subject for the verifier and
list machinery; it is *not* covered by the paper's transformation (it is
neither in P1 nor in P2 — its sequential greedy can get stuck), and the
test-suite documents that fact.

Encoding: the label of a half-edge ``(v, e)`` is ``OUT`` if the edge ``e``
is oriented away from ``v`` and ``IN`` otherwise.

* Edge constraint: a rank-2 edge carries ``{OUT, IN}`` (each edge has one
  direction); a rank-1 edge carries either label; rank-0 edges carry
  nothing.
* Node constraint: a node of degree at least ``min_degree`` (3 by default,
  the standard setting) must have at least one ``OUT`` half-edge — no such
  node is a sink.  Lower-degree nodes are unconstrained.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

import networkx as nx

from repro.problems.base import NodeEdgeCheckableProblem
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.semigraph import HalfEdge

OUT = "OUT"
IN = "IN"


class SinklessOrientationProblem(NodeEdgeCheckableProblem):
    """Sinkless orientation: every high-degree node has an outgoing edge."""

    name = "sinkless-orientation"

    def __init__(self, min_degree: int = 3) -> None:
        if min_degree < 1:
            raise ValueError("min_degree must be at least 1")
        self.min_degree = min_degree

    def node_config_ok(self, labels: Iterable[Any]) -> bool:
        labels = tuple(labels)
        if any(lab not in (OUT, IN) for lab in labels):
            return False
        if len(labels) < self.min_degree:
            return True
        return OUT in labels

    def edge_config_ok(self, labels: Iterable[Any], rank: int) -> bool:
        labels = tuple(labels)
        if len(labels) != rank:
            return False
        if rank == 0:
            return True
        if any(lab not in (OUT, IN) for lab in labels):
            return False
        if rank == 1:
            return True
        return sorted(labels) == [IN, OUT]

    # ------------------------------------------------------------------
    # classic conversions
    # ------------------------------------------------------------------
    def to_classic(
        self, semigraph: SemiGraph, labeling: HalfEdgeLabeling
    ) -> dict[Any, Hashable]:
        """The orientation: edge identifier -> the endpoint the edge points *away from*."""
        orientation: dict[Any, Hashable] = {}
        for edge in semigraph.edges_of_rank(2):
            for node in semigraph.endpoints(edge):
                if labeling[HalfEdge(node, edge)] == OUT:
                    orientation[edge] = node
        return orientation

    def from_classic(
        self, semigraph: SemiGraph, classic: Mapping[Any, Hashable]
    ) -> HalfEdgeLabeling:
        """Lift an orientation (edge -> tail endpoint) to a half-edge labeling.

        Rank-1 edges are labelled ``OUT`` (they can always be oriented away
        from their single endpoint, which never hurts).
        """
        labeling = HalfEdgeLabeling()
        for edge in semigraph.edges:
            rank = semigraph.rank(edge)
            if rank == 1:
                (node,) = semigraph.endpoints(edge)
                labeling.assign(HalfEdge(node, edge), OUT)
            elif rank == 2:
                tail = classic[edge]
                for node in semigraph.endpoints(edge):
                    labeling.assign(HalfEdge(node, edge), OUT if node == tail else IN)
        return labeling


def is_sinkless_orientation(
    graph: nx.Graph, orientation: Mapping[tuple, Hashable], min_degree: int = 3
) -> bool:
    """Classic verifier: ``orientation`` maps each edge to its tail endpoint.

    Every edge must be oriented (with a tail that is one of its endpoints)
    and every node of degree at least ``min_degree`` must be the tail of at
    least one incident edge.
    """
    tails: dict[Hashable, int] = {node: 0 for node in graph.nodes()}
    seen = set()
    for edge, tail in orientation.items():
        u, v = edge
        if not graph.has_edge(u, v) or tail not in (u, v):
            return False
        key = frozenset((u, v))
        if key in seen:
            return False
        seen.add(key)
        tails[tail] += 1
    if len(seen) != graph.number_of_edges():
        return False
    return all(
        tails[node] >= 1 for node in graph.nodes() if graph.degree(node) >= min_degree
    )


def greedy_sinkless_orientation(graph: nx.Graph, min_degree: int = 3) -> dict:
    """A centralised sinkless orientation used as a test oracle.

    Orient the edges along an Euler-style walk of each 2-edge-connected
    part; for simplicity (and because the test instances are small) this
    implementation orients the edges of a DFS forest away from the root and
    non-tree edges towards ancestors, which leaves no sink among nodes of
    degree ≥ 3 in graphs where every such node has a child or a back-edge.
    On trees, leaves' edges are oriented towards the leaf so that internal
    nodes keep an outgoing edge.
    """
    orientation: dict = {}
    for component in nx.connected_components(graph):
        subgraph = graph.subgraph(component)
        root = next(iter(sorted(component, key=repr)))
        tree_edges = list(nx.dfs_edges(subgraph, root))
        in_tree = {frozenset(e) for e in tree_edges}
        depth = {root: 0}
        for parent, child in tree_edges:
            depth[child] = depth[parent] + 1
        for parent, child in tree_edges:
            # Point tree edges away from the root: the parent is the tail,
            # so every node with a DFS child has an outgoing edge.
            orientation[(parent, child)] = parent
        for u, v in subgraph.edges():
            if frozenset((u, v)) in in_tree:
                continue
            # Non-tree edges point away from the deeper endpoint, which is
            # the one that may lack a DFS child of its own.
            tail = u if depth[u] >= depth[v] else v
            orientation[(u, v)] = tail
    return orientation
