"""The node-list and edge-list variants ``Π*`` and ``Π×`` (Definitions 7, 8).

Both variants describe the residual problem on a sub-semi-graph of a larger
instance on which ``Π`` has been partially solved.  The "list" attached to
a node (for ``Π*``) or to an edge (for ``Π×``) is the family of label
multisets that remain admissible given the labels already fixed on the
other incident half-edges in the larger instance.

The paper writes these lists as the collections ``N^i_{Π,ψ}`` and
``E^i_{Π,ψ}`` — the constraint of ``Π`` with the fixed multiset ``ψ``
"baked in".  We represent a list directly by the pair ``(problem, ψ)``:
membership of a multiset ``χ`` is then simply the ``Π``-membership of the
combined multiset ``χ ∪ ψ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.problems.base import NodeEdgeCheckableProblem
from repro.problems.verification import VerificationResult, Violation
from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.labeling import canonical_multiset
from repro.semigraph.semigraph import EdgeId, HalfEdge, NodeId


@dataclass(frozen=True)
class NodeListConstraint:
    """The constraint ``N^i_{Π,ψ}``: admissible completions of a node.

    ``fixed`` is the multiset ``ψ`` of labels already assigned (in the
    larger instance) to incident half-edges that are *not* part of the
    current sub-instance.
    """

    problem: NodeEdgeCheckableProblem
    fixed: tuple = ()

    def allows(self, labels: Iterable[Any]) -> bool:
        """Whether the multiset ``labels`` is in ``N^{len(labels)}_{Π,ψ}``."""
        combined = tuple(labels) + tuple(self.fixed)
        return self.problem.node_config_ok(canonical_multiset(combined))


@dataclass(frozen=True)
class EdgeListConstraint:
    """The constraint ``E^i_{Π,ψ}``: admissible completions of an edge.

    ``full_rank`` is the rank of the edge in the larger instance, i.e.
    ``len(fixed) + i`` where ``i`` is the rank within the sub-instance.
    """

    problem: NodeEdgeCheckableProblem
    fixed: tuple = ()
    full_rank: int = 2

    def allows(self, labels: Iterable[Any]) -> bool:
        """Whether the multiset ``labels`` is in ``E^{len(labels)}_{Π,ψ}``."""
        labels = tuple(labels)
        combined = labels + tuple(self.fixed)
        if len(combined) != self.full_rank:
            return False
        return self.problem.edge_config_ok(canonical_multiset(combined), self.full_rank)


@dataclass
class NodeListInstance:
    """An input instance of ``Π*``: a semi-graph plus a list per node.

    Edges keep the plain edge constraint ``E_Π`` of the base problem.
    """

    problem: NodeEdgeCheckableProblem
    semigraph: SemiGraph
    node_lists: dict[NodeId, NodeListConstraint] = field(default_factory=dict)

    def list_for(self, node: NodeId) -> NodeListConstraint:
        """The list of ``node`` (a trivial list if none was supplied)."""
        return self.node_lists.get(node, NodeListConstraint(self.problem, ()))


@dataclass
class EdgeListInstance:
    """An input instance of ``Π×``: a semi-graph plus a list per edge.

    Nodes keep the plain node constraint ``N_Π`` of the base problem.
    """

    problem: NodeEdgeCheckableProblem
    semigraph: SemiGraph
    edge_lists: dict[EdgeId, EdgeListConstraint] = field(default_factory=dict)

    def list_for(self, edge: EdgeId) -> EdgeListConstraint:
        """The list of ``edge`` (a trivial list if none was supplied)."""
        return self.edge_lists.get(
            edge, EdgeListConstraint(self.problem, (), self.semigraph.rank(edge))
        )


# ----------------------------------------------------------------------
# Construction from a partially solved larger instance
# ----------------------------------------------------------------------
def build_node_list_instance(
    problem: NodeEdgeCheckableProblem,
    full_semigraph: SemiGraph,
    sub_semigraph: SemiGraph,
    partial: HalfEdgeLabeling,
) -> NodeListInstance:
    """The ``Π*`` instance on ``sub_semigraph`` induced by a partial solution.

    For each node ``u`` of the sub-semi-graph, the fixed multiset ``χ(u)``
    consists of the labels that ``partial`` assigns to half-edges of ``u``
    in the full semi-graph that are not part of the sub-semi-graph (this is
    the construction used in Algorithm 4, line 2).
    """
    sub_half_edges = set(sub_semigraph.half_edges())
    node_lists: dict[NodeId, NodeListConstraint] = {}
    for node in sub_semigraph.nodes:
        fixed = []
        for edge in full_semigraph.incident_edges(node):
            half_edge = HalfEdge(node, edge)
            if half_edge in sub_half_edges:
                continue
            if partial.is_labeled(half_edge):
                fixed.append(partial[half_edge])
        node_lists[node] = NodeListConstraint(problem, canonical_multiset(fixed))
    return NodeListInstance(problem, sub_semigraph, node_lists)


def build_edge_list_instance(
    problem: NodeEdgeCheckableProblem,
    full_semigraph: SemiGraph,
    sub_semigraph: SemiGraph,
    partial: HalfEdgeLabeling,
) -> EdgeListInstance:
    """The ``Π×`` instance on ``sub_semigraph`` induced by a partial solution.

    For each edge ``e`` of the sub-semi-graph, the fixed multiset ``χ(e)``
    consists of the labels already assigned to half-edges of ``e`` in the
    full semi-graph that are not part of the sub-semi-graph (Algorithm 2,
    line 2).
    """
    sub_half_edges = set(sub_semigraph.half_edges())
    edge_lists: dict[EdgeId, EdgeListConstraint] = {}
    for edge in sub_semigraph.edges:
        fixed = []
        for node in full_semigraph.endpoints(edge):
            half_edge = HalfEdge(node, edge)
            if half_edge in sub_half_edges:
                continue
            if partial.is_labeled(half_edge):
                fixed.append(partial[half_edge])
        edge_lists[edge] = EdgeListConstraint(
            problem,
            canonical_multiset(fixed),
            full_rank=full_semigraph.rank(edge),
        )
    return EdgeListInstance(problem, sub_semigraph, edge_lists)


# ----------------------------------------------------------------------
# Verification of list-variant solutions
# ----------------------------------------------------------------------
def verify_node_list_solution(
    instance: NodeListInstance, labeling: HalfEdgeLabeling
) -> VerificationResult:
    """Verify a solution to a ``Π*`` instance (Definition 7)."""
    violations: list[Violation] = []
    semigraph = instance.semigraph
    for half_edge in semigraph.half_edges():
        if not labeling.is_labeled(half_edge):
            violations.append(
                Violation("unlabeled", half_edge, (), "half-edge has no label")
            )
    if violations:
        return VerificationResult(ok=False, violations=violations)

    for node in semigraph.nodes:
        config = labeling.node_configuration(semigraph, node)
        if not instance.list_for(node).allows(config):
            violations.append(
                Violation("node", node, config, "node list does not allow configuration")
            )
    for edge in semigraph.edges:
        config = labeling.edge_configuration(semigraph, edge)
        if not instance.problem.edge_config_ok(config, semigraph.rank(edge)):
            violations.append(
                Violation("edge", edge, config, "edge configuration not allowed")
            )
    return VerificationResult(ok=not violations, violations=violations)


def verify_edge_list_solution(
    instance: EdgeListInstance, labeling: HalfEdgeLabeling
) -> VerificationResult:
    """Verify a solution to a ``Π×`` instance (Definition 8)."""
    violations: list[Violation] = []
    semigraph = instance.semigraph
    for half_edge in semigraph.half_edges():
        if not labeling.is_labeled(half_edge):
            violations.append(
                Violation("unlabeled", half_edge, (), "half-edge has no label")
            )
    if violations:
        return VerificationResult(ok=False, violations=violations)

    for node in semigraph.nodes:
        config = labeling.node_configuration(semigraph, node)
        if not instance.problem.node_config_ok(config):
            violations.append(
                Violation("node", node, config, "node configuration not allowed")
            )
    for edge in semigraph.edges:
        config = labeling.edge_configuration(semigraph, edge)
        if not instance.list_for(edge).allows(config):
            violations.append(
                Violation("edge", edge, config, "edge list does not allow configuration")
            )
    return VerificationResult(ok=not violations, violations=violations)
