"""Abstract interface for node-edge-checkable problems (Definition 6).

A problem is a triple ``Π = (Σ, N_Π, E_Π)``.  Because both the label set
and the constraint families may be infinite (the edge-colouring problem of
Section 5.1 uses all pairs of positive integers), constraints are
represented as membership predicates rather than explicit collections:

* :meth:`NodeEdgeCheckableProblem.node_config_ok` decides whether a label
  multiset belongs to ``N_Π^i`` (``i`` is the multiset's cardinality), and
* :meth:`NodeEdgeCheckableProblem.edge_config_ok` decides whether a label
  multiset belongs to ``E_Π^r`` for an edge of rank ``r``.

Concrete problems additionally provide conversions between half-edge
labelings on a semi-graph and the classic graph-level solution objects
(edge-colour maps, matchings, independent sets, vertex-colour maps).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

from repro.semigraph import HalfEdgeLabeling, SemiGraph
from repro.semigraph.labeling import canonical_multiset

#: The dummy label used by the paper on half-edges of rank-1 edges for the
#: edge problems of Section 5 ("D" in the paper).
DUMMY = "D"


class NodeEdgeCheckableProblem(ABC):
    """A node-edge-checkable problem ``Π = (Σ, N_Π, E_Π)``."""

    #: Human-readable problem name.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # constraint predicates
    # ------------------------------------------------------------------
    @abstractmethod
    def node_config_ok(self, labels: Iterable[Any]) -> bool:
        """Whether the multiset ``labels`` is in ``N_Π^i`` for ``i = len(labels)``."""

    @abstractmethod
    def edge_config_ok(self, labels: Iterable[Any], rank: int) -> bool:
        """Whether the multiset ``labels`` is in ``E_Π^rank``."""

    # ------------------------------------------------------------------
    # classic-solution conversions (1-round transformations in the paper)
    # ------------------------------------------------------------------
    def to_classic(self, semigraph: SemiGraph, labeling: HalfEdgeLabeling) -> Any:
        """Convert a half-edge labeling to the classic solution object.

        Concrete problems override this; the base implementation signals
        that no conversion is available.
        """
        raise NotImplementedError(f"{self.name} does not define a classic conversion")

    def from_classic(self, semigraph: SemiGraph, classic: Any) -> HalfEdgeLabeling:
        """Convert a classic solution object to a half-edge labeling."""
        raise NotImplementedError(f"{self.name} does not define a classic conversion")

    # ------------------------------------------------------------------
    # convenience helpers
    # ------------------------------------------------------------------
    def node_ok(self, semigraph: SemiGraph, labeling: HalfEdgeLabeling, node) -> bool:
        """Whether the labels around ``node`` form a valid node configuration."""
        config = labeling.node_configuration(semigraph, node)
        return self.node_config_ok(config)

    def edge_ok(self, semigraph: SemiGraph, labeling: HalfEdgeLabeling, edge) -> bool:
        """Whether the labels around ``edge`` form a valid edge configuration."""
        config = labeling.edge_configuration(semigraph, edge)
        return self.edge_config_ok(config, semigraph.rank(edge))

    @staticmethod
    def as_multiset(labels: Iterable[Any]) -> tuple:
        """Canonical multiset representation used throughout the package."""
        return canonical_multiset(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
