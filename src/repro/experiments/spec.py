"""Declarative scenario specifications and the built-in suite registry.

A :class:`ScenarioSpec` binds one *generator family* (random trees, forest
unions, planar-triangulation-like graphs, bounded-degree random graphs, or
the analytic pseudo-family) to one *algorithm family* (a registered truly
local baseline run directly, a :func:`~repro.core.solve_on_tree` /
:func:`~repro.core.solve_on_bounded_arboricity` transform, or an analytic
cost-model prediction) over a size sweep and a seed list.  A :class:`Suite`
is a named tuple of scenarios; the built-in suites (``paper-claims``,
``scaling``, ``stress``) are registered in :data:`SUITES`.

Everything here is plain declarative data — strings, ints and registry
lookups — so a :class:`Cell` travels to worker processes as a tiny
picklable payload and the worker re-resolves the registries locally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterator

import networkx as nx

from repro.baselines import (
    DegPlusOneColoringAlgorithm,
    EdgeColoringAlgorithm,
    MISAlgorithm,
    MaximalMatchingAlgorithm,
    OracleCostModel,
    color_forest_three,
    deg_plus_one_coloring,
    edge_degree_plus_one_coloring,
    linial_coloring,
    maximal_independent_set,
    maximal_matching,
)
from repro.core import solve_on_bounded_arboricity, solve_on_tree
from repro.core.complexity import mm_mis_tree_bound, polylog, predicted_rounds_tree
from repro.core.sequential import (
    default_edge_list_solver,
    default_node_list_solver,
)
from repro.core.transform import gather_and_solve_rounds
from repro.generators import (
    balanced_regular_tree,
    bfs_forest_parents,
    caterpillar,
    forest_union,
    grid_graph,
    path_graph,
    planar_triangulation_like,
    random_graph_with_max_degree,
    random_tree,
    spider,
    star_graph,
)
from repro.problems import verify_solution
from repro.problems.classic import (
    is_deg_plus_one_coloring,
    is_edge_degree_plus_one_coloring,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_vertex_coloring,
)
from repro.problems.lists import (
    build_edge_list_instance,
    build_node_list_instance,
    verify_edge_list_solution,
    verify_node_list_solution,
)
from repro.problems.sinkless_orientation import (
    SinklessOrientationProblem,
    greedy_sinkless_orientation,
    is_sinkless_orientation,
)
from repro.semigraph import (
    HalfEdgeLabeling,
    restrict_to_edges,
    restrict_to_nodes,
    semigraph_from_graph,
)
from repro.semigraph.builders import edge_id_for
from repro.experiments.store import cell_fingerprint
from repro.obs import span

__all__ = [
    "GeneratorFamily",
    "AlgorithmFamily",
    "ScenarioSpec",
    "Cell",
    "Suite",
    "GENERATORS",
    "ALGORITHMS",
    "SUITES",
    "register_generator",
    "register_algorithm",
    "register_suite",
    "get_suite",
    "ANALYTIC_GENERATOR",
]

#: Name of the pseudo-generator for analytic (cost-model) cells.
ANALYTIC_GENERATOR = "analytic"

#: Sizes of the analytic cells: n = 2^L for L large enough that the
#: asymptotic shape dominates, small enough that log₂ n stays exact.
ANALYTIC_SIZES = tuple(2**exponent for exponent in (64, 128, 256, 512, 1000))


# ----------------------------------------------------------------------
# generator families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratorFamily:
    """A named, seeded instance family.

    ``arboricity`` is the *a priori* bound handed to the bounded-arboricity
    transform; ``None`` means no bound is declared and arboricity-transform
    algorithms refuse the pairing.  ``is_forest`` gates the tree-transform
    and rooted-forest algorithms.
    """

    name: str
    description: str
    build: Callable[[int, int], nx.Graph] | None
    arboricity: int | None = None
    is_forest: bool = False


GENERATORS: dict[str, GeneratorFamily] = {}


def register_generator(family: GeneratorFamily) -> GeneratorFamily:
    if family.name in GENERATORS:
        raise ValueError(f"generator family {family.name!r} already registered")
    GENERATORS[family.name] = family
    return family


register_generator(GeneratorFamily(
    name="random-tree",
    description="uniformly random labelled tree (Prüfer sequence)",
    build=lambda n, seed: random_tree(n, seed=seed),
    arboricity=1,
    is_forest=True,
))
register_generator(GeneratorFamily(
    name="forest-union-2",
    description="union of 2 random forests on a shared node set (arboricity ≤ 2)",
    build=lambda n, seed: forest_union(n, 2, seed=seed),
    arboricity=2,
))
register_generator(GeneratorFamily(
    name="planar-triangulation",
    description="Apollonian-style planar triangulation (arboricity ≤ 3)",
    build=lambda n, seed: planar_triangulation_like(n, seed=seed),
    arboricity=3,
))
register_generator(GeneratorFamily(
    name="bounded-degree-8",
    description="random graph with maximum degree 8",
    build=lambda n, seed: random_graph_with_max_degree(n, 8, seed=seed),
    arboricity=None,
))
# Every builder must produce *exactly* n nodes: the cell's n is recorded
# in the store and drives the scaling tables and log-power fits, so a
# builder that silently rounded would mislabel the measured data.

def _build_grid(n: int, seed: int) -> nx.Graph:
    """A grid fragment with exactly ``n`` nodes: a full rows×cols grid
    plus a partial extra column (deterministic; seed ignored)."""
    rows = max(1, math.isqrt(n))
    columns = n // rows
    graph = grid_graph(rows, columns)
    # grid_graph numbers cells row-major: cell (i, j) is node i·cols + j.
    # The n - rows·cols leftover nodes form a partial extra column, each
    # wired to its row's last cell and to its column neighbour — still a
    # planar, Δ ≤ 4, arboricity ≤ 2 grid fragment.
    for extra in range(n - rows * columns):
        node = rows * columns + extra
        graph.add_edge(node, extra * columns + columns - 1)
        if extra:
            graph.add_edge(node, node - 1)
    return graph


def _build_caterpillar(n: int, seed: int) -> nx.Graph:
    """A caterpillar with exactly ``n`` nodes: 3 legs per spine node,
    remainder legs on the first spine node (seed ignored)."""
    if n < 5:
        return path_graph(n)
    spine = n // 4
    graph = caterpillar(spine, 3)  # 4·spine nodes, 0..spine-1 the spine
    for extra in range(4 * spine, n):
        graph.add_edge(0, extra)
    return graph


def _build_spider(n: int, seed: int) -> nx.Graph:
    """A spider with exactly ``n`` nodes: ~√n legs of ~√n nodes, the
    first legs one node longer to absorb the remainder (seed ignored)."""
    legs = max(2, math.isqrt(n))
    leg_length = (n - 1) // legs
    if leg_length == 0:
        return star_graph(n)
    graph = spider(legs, leg_length)  # 1 + legs·leg_length nodes
    # spider numbers legs consecutively from 1, so leg j's tip is node
    # (j+1)·leg_length; extend one leg per leftover node.
    for extra in range((n - 1) - legs * leg_length):
        tip = (extra + 1) * leg_length
        graph.add_edge(tip, 1 + legs * leg_length + extra)
    return graph


def _build_balanced_tree(n: int, seed: int) -> nx.Graph:
    """The paper's lower-bound instance: the 3-regular balanced tree with
    exactly ``n`` nodes.

    Such trees exist only at sizes ``1 + 3·(2^d − 1)`` (4, 10, 22, 46,
    94, 190, ...); other sizes are rejected rather than silently rounded,
    so the recorded ``n`` always equals the measured instance size.
    """
    depth, size = 1, 4
    while size < n:
        depth += 1
        size = 1 + 3 * (2**depth - 1)
    if size != n:
        raise ValueError(
            f"balanced-tree-3 instances exist only at sizes 1 + 3*(2^d - 1) "
            f"= 4, 10, 22, 46, 94, 190, ...; got n={n}"
        )
    return balanced_regular_tree(3, depth)


register_generator(GeneratorFamily(
    name="grid",
    description="near-square 2D grid (planar, arboricity ≤ 2; seed ignored)",
    build=_build_grid,
    arboricity=2,
))
register_generator(GeneratorFamily(
    name="caterpillar-3",
    description="caterpillar tree: path spine with 3 legs per spine node "
    "(seed ignored)",
    build=_build_caterpillar,
    arboricity=1,
    is_forest=True,
))
register_generator(GeneratorFamily(
    name="spider",
    description="spider tree: ~√n legs of ~√n nodes sharing one centre "
    "(seed ignored)",
    build=_build_spider,
    arboricity=1,
    is_forest=True,
))
register_generator(GeneratorFamily(
    name="balanced-tree-3",
    description="regular balanced tree of degree 3 — the paper's "
    "lower-bound instance; exact sizes 4, 10, 22, 46, 94, 190, ... only "
    "(seed ignored)",
    build=_build_balanced_tree,
    arboricity=1,
    is_forest=True,
))
register_generator(GeneratorFamily(
    name=ANALYTIC_GENERATOR,
    description="no graph: n is fed to the analytic complexity model",
    build=None,
    arboricity=None,
))


# ----------------------------------------------------------------------
# algorithm families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmFamily:
    """A named way of producing a measured (or predicted) result on a cell.

    ``run(graph, generator, n)`` returns a dict with at least ``rounds``
    (numeric) and ``verified`` (bool); optional keys: ``k``, ``extras``,
    and ``charged_rounds`` (the analytic account of a transform cell run
    under :class:`~repro.baselines.OracleCostModel` charging).  ``covers``
    names the entries of :mod:`repro.baselines` ``__all__`` the family
    exercises — the registry-completeness test checks every registered
    baseline is covered by some suite.

    ``engine`` is the family's capability flag / preference for the
    simulation backend: ``"vectorized"`` declares that the family's whole
    measured path is array-kernel capable and should run on the
    vectorized engine (:mod:`repro.local.vectorized`) by default;
    ``"auto"`` (the default) lets each inner run pick per-algorithm.  A
    CLI ``--engine`` override beats the family preference; results are
    bit-identical either way.
    """

    name: str
    description: str
    # "baseline" | "tree-transform" | "arboricity-transform" | "analytic"
    # | "orientation" | "list-variant"
    kind: str
    run: Callable[[nx.Graph | None, GeneratorFamily, int], dict]
    covers: tuple[str, ...] = ()
    requires_forest: bool = False
    engine: str = "auto"

    def compatible_with(self, generator: GeneratorFamily) -> str | None:
        """``None`` if the pairing is valid, else a human-readable reason."""
        if self.kind == "analytic":
            if generator.name != ANALYTIC_GENERATOR:
                return "analytic algorithms pair only with the 'analytic' generator"
            return None
        if generator.name == ANALYTIC_GENERATOR:
            return "the 'analytic' generator pairs only with analytic algorithms"
        if self.requires_forest and not generator.is_forest:
            return "requires a forest generator"
        if self.kind == "arboricity-transform" and generator.arboricity is None:
            return "requires a generator with a declared arboricity bound"
        return None


ALGORITHMS: dict[str, AlgorithmFamily] = {}


def register_algorithm(family: AlgorithmFamily) -> AlgorithmFamily:
    if family.name in ALGORITHMS:
        raise ValueError(f"algorithm family {family.name!r} already registered")
    ALGORITHMS[family.name] = family
    return family


def _transform_fields(result) -> dict:
    ok = bool(result.verification.ok) and result.classic is not None
    fields = {
        "rounds": result.rounds,
        "verified": ok,
        "k": result.k,
        "extras": {"phases": result.ledger.breakdown()},
    }
    if result.charged_rounds is not None:
        fields["charged_rounds"] = result.charged_rounds
        fields["extras"]["algorithm_rounds_measured"] = result.algorithm_rounds_measured
        fields["extras"]["algorithm_rounds_charged"] = result.algorithm_rounds_charged
    return fields


def _run_tree_transform(adapter_factory, cost_model: OracleCostModel | None = None):
    def run(graph, generator, n):
        return _transform_fields(
            solve_on_tree(graph, adapter_factory(), cost_model=cost_model)
        )
    return run


def _run_arboricity_transform(
    adapter_factory, cost_model: OracleCostModel | None = None
):
    def run(graph, generator, n):
        result = solve_on_bounded_arboricity(
            graph, generator.arboricity, adapter_factory(), cost_model=cost_model
        )
        return _transform_fields(result)
    return run


def _run_baseline_deg_plus_one(graph, generator, n):
    run = deg_plus_one_coloring(graph)
    with span("verify"):
        verified = is_deg_plus_one_coloring(graph, run.colours)
    return {
        "rounds": run.rounds,
        "verified": verified,
        "extras": {"palette_after_linial": run.palette_after_linial},
    }


def _run_baseline_edge_coloring(graph, generator, n):
    run = edge_degree_plus_one_coloring(graph)
    with span("verify"):
        verified = is_edge_degree_plus_one_coloring(graph, run.colours)
    return {
        "rounds": run.rounds,
        "verified": verified,
        "extras": {"colours_used": len(set(run.colours.values()))},
    }


def _run_baseline_mis(graph, generator, n):
    run = maximal_independent_set(graph)
    with span("verify"):
        verified = is_maximal_independent_set(graph, run.independent_set)
    return {
        "rounds": run.rounds,
        "verified": verified,
        "extras": {"mis_size": len(run.independent_set)},
    }


def _run_baseline_matching(graph, generator, n):
    run = maximal_matching(graph)
    with span("verify"):
        verified = is_maximal_matching(graph, [tuple(e) for e in run.matching])
    return {
        "rounds": run.rounds,
        "verified": verified,
        "extras": {"matching_size": len(run.matching)},
    }


def _run_baseline_linial(graph, generator, n):
    colours, palette, rounds = linial_coloring(graph)
    with span("verify"):
        verified = is_proper_vertex_coloring(graph, colours) and (
            max(colours.values(), default=1) <= palette
        )
    return {
        "rounds": rounds,
        "verified": verified,
        "extras": {"palette": palette},
    }


def _run_baseline_forest_three(graph, generator, n):
    colours, rounds = color_forest_three(graph, bfs_forest_parents(graph))
    with span("verify"):
        verified = is_proper_vertex_coloring(graph, colours) and (
            max(colours.values(), default=1) <= 3
        )
    return {"rounds": rounds, "verified": verified}


def _run_analytic(predict):
    def run(graph, generator, n):
        value = float(predict(n))
        return {"rounds": value, "verified": value > 0}
    return run


# ----------------------------------------------------------------------
# sinkless orientation and the Π* / Π× list variants as workloads
# ----------------------------------------------------------------------
#: The standard sinkless-orientation setting: nodes of degree ≥ 3 may not
#: be sinks.  One shared instance — the problem object is stateless.
_SINKLESS = SinklessOrientationProblem(min_degree=3)


def _gather_rounds(semigraph_part) -> int:
    """The transform pipelines' gather-and-solve round account (the
    per-component diameters are not recorded here)."""
    rounds, _ = gather_and_solve_rounds(semigraph_part)
    return rounds


def _run_sinkless_orientation(graph, generator, n):
    semigraph = semigraph_from_graph(graph)
    orientation = greedy_sinkless_orientation(graph, min_degree=_SINKLESS.min_degree)
    classic = {edge_id_for(u, v): tail for (u, v), tail in orientation.items()}
    labeling = _SINKLESS.from_classic(semigraph, classic)
    with span("verify"):
        verified = (
            is_sinkless_orientation(graph, orientation, min_degree=_SINKLESS.min_degree)
            and verify_solution(_SINKLESS, semigraph, labeling).ok
            and _SINKLESS.to_classic(semigraph, labeling) == classic
        )
    constrained = sum(
        1 for node in graph.nodes() if graph.degree(node) >= _SINKLESS.min_degree
    )
    return {
        "rounds": _gather_rounds(semigraph),
        "verified": verified,
        "extras": {
            "min_degree": _SINKLESS.min_degree,
            "constrained_nodes": constrained,
            "oriented_edges": len(orientation),
        },
    }


def _split_half(items) -> tuple[set, set]:
    """Deterministically split ``items`` into two interleaved halves."""
    ordered = sorted(items, key=repr)
    first = {item for index, item in enumerate(ordered) if index % 2 == 0}
    return first, set(ordered) - first


def _run_list_variant(variant: str, adapter_factory, classic_check):
    """A measured ``Π*`` / ``Π×`` workload (Definitions 7 / 8).

    Half of the instance's units — edges for the node-list form ``Π*``,
    nodes for the edge-list form ``Π×`` — are solved by the truly local
    baseline; the residual list instance induced on the other half (the
    Algorithm 4 / Algorithm 2, line 2 construction) is solved by the
    registered sequential solver and charged with the gather-and-solve
    account.  Verification checks the list solution, the merged global
    labeling, and the classic formulation.
    """
    node_list = variant == "node-list"
    if not node_list and variant != "edge-list":
        raise ValueError(f"unknown list variant {variant!r}")
    restrict = restrict_to_edges if node_list else restrict_to_nodes
    build_instance = (
        build_node_list_instance if node_list else build_edge_list_instance
    )
    default_solver = (
        default_node_list_solver if node_list else default_edge_list_solver
    )
    verify_list = (
        verify_node_list_solution if node_list else verify_edge_list_solution
    )
    unit = "edges" if node_list else "nodes"

    def run(graph, generator, n):
        adapter = adapter_factory()
        problem = adapter.problem
        semigraph = semigraph_from_graph(graph)
        first, second = _split_half(
            semigraph.edges if node_list else semigraph.nodes
        )
        rounds = 0
        partial = HalfEdgeLabeling()
        if first:
            partial, algorithm_rounds = adapter.solve_semigraph(
                restrict(semigraph, first)
            )
            rounds += algorithm_rounds
        semigraph_second = restrict(semigraph, second)
        instance = build_instance(problem, semigraph, semigraph_second, partial)
        residual = default_solver(problem).solve(instance)
        rounds += _gather_rounds(semigraph_second)
        merged = partial.merge(residual)
        with span("verify"):
            verified = (
                verify_list(instance, residual).ok
                and verify_solution(problem, semigraph, merged).ok
            )
            classic = problem.to_classic(semigraph, merged) if verified else None
            verified = verified and classic_check(graph, classic)
        return {
            "rounds": rounds,
            "verified": verified,
            "extras": {
                "list_variant": variant,
                f"baseline_{unit}": len(first),
                f"list_{unit}": len(second),
            },
        }

    return run


register_algorithm(AlgorithmFamily(
    name="tree-deg+1-coloring",
    description="Theorem 12 transform of the (deg+1)-colouring baseline on trees",
    kind="tree-transform",
    run=_run_tree_transform(DegPlusOneColoringAlgorithm),
    covers=("DegPlusOneColoringAlgorithm", "deg_plus_one_coloring"),
    requires_forest=True,
))
register_algorithm(AlgorithmFamily(
    name="tree-mis",
    description="Theorem 12 transform of the MIS baseline on trees",
    kind="tree-transform",
    run=_run_tree_transform(MISAlgorithm),
    covers=("MISAlgorithm", "maximal_independent_set"),
    requires_forest=True,
))
register_algorithm(AlgorithmFamily(
    name="arb-edge-coloring",
    description="Theorem 15 transform of (edge-degree+1)-edge colouring "
    "(Theorem 3 on trees)",
    kind="arboricity-transform",
    run=_run_arboricity_transform(EdgeColoringAlgorithm),
    covers=("EdgeColoringAlgorithm", "edge_degree_plus_one_coloring"),
))
register_algorithm(AlgorithmFamily(
    name="arb-matching",
    description="Theorem 15 transform of the maximal matching baseline",
    kind="arboricity-transform",
    run=_run_arboricity_transform(MaximalMatchingAlgorithm),
    covers=("MaximalMatchingAlgorithm", "maximal_matching"),
))
register_algorithm(AlgorithmFamily(
    name="baseline-deg+1-coloring",
    description="direct (deg+1)-colouring baseline, O(Δ² + log* n) rounds",
    kind="baseline",
    run=_run_baseline_deg_plus_one,
    covers=("deg_plus_one_coloring",),
    engine="vectorized",
))
register_algorithm(AlgorithmFamily(
    name="baseline-edge-coloring",
    description="direct (edge-degree+1)-edge colouring baseline",
    kind="baseline",
    run=_run_baseline_edge_coloring,
    covers=("edge_degree_plus_one_coloring",),
))
register_algorithm(AlgorithmFamily(
    name="baseline-mis",
    description="direct MIS baseline (colour-class sweep)",
    kind="baseline",
    run=_run_baseline_mis,
    covers=("maximal_independent_set",),
    engine="vectorized",
))
register_algorithm(AlgorithmFamily(
    name="baseline-matching",
    description="direct maximal matching baseline (edge-colour sweep)",
    kind="baseline",
    run=_run_baseline_matching,
    covers=("maximal_matching",),
))
register_algorithm(AlgorithmFamily(
    name="baseline-linial",
    description="Linial colour reduction to O(Δ²) colours",
    kind="baseline",
    run=_run_baseline_linial,
    covers=("linial_coloring",),
    engine="vectorized",
))
register_algorithm(AlgorithmFamily(
    name="baseline-forest-3coloring",
    description="Cole–Vishkin 3-colouring of a rooted forest",
    kind="baseline",
    run=_run_baseline_forest_three,
    covers=("color_forest_three",),
    requires_forest=True,
    engine="vectorized",
))
register_algorithm(AlgorithmFamily(
    name="predicted-edge-coloring-log12",
    description="Theorem 1 prediction f(g(n)) + log* n with f(Δ)=log¹²Δ "
    "(the BBKO22b black box of Theorem 3)",
    kind="analytic",
    run=_run_analytic(lambda n: predicted_rounds_tree(polylog(12), n)),
))
register_algorithm(AlgorithmFamily(
    name="predicted-mm-mis-barrier",
    description="the Θ(log n / log log n) MIS / matching barrier on trees",
    kind="analytic",
    run=_run_analytic(mm_mis_tree_bound),
))

# ----------------------------------------------------------------------
# charged transforms: the Theorem 3 analytic account next to the engine
# ----------------------------------------------------------------------
#: The [BBKO22b] black box behind Theorem 3: f(Δ) = log¹² Δ.  The charged
#: edge-colouring transform picks its cut-off k from this model and charges
#: the A-phase analytically while the decomposition phases stay measured.
BBKO22B_EDGE_COLORING_MODEL = OracleCostModel(
    "bbko22b-edge-coloring", polylog(12)
)
#: Self models: charge the A-phase with the baseline's own declared f —
#: read off the adapter itself, so a retuned declaration propagates — and
#: the cut-off k (and hence the measured series) matches the uncharged
#: twin family and the two columns compare like for like.
_SELF_MODELS = {
    "deg+1-coloring": OracleCostModel(
        "declared-deg+1-coloring", DegPlusOneColoringAlgorithm().complexity
    ),
    "mis": OracleCostModel("declared-mis", MISAlgorithm().complexity),
    "matching": OracleCostModel(
        "declared-matching", MaximalMatchingAlgorithm().complexity
    ),
}

register_algorithm(AlgorithmFamily(
    name="charged-arb-edge-coloring",
    description="Theorem 3 proper: the edge-colouring transform with cut-off "
    "and A-phase charge from the [BBKO22b] log¹²Δ oracle model",
    kind="arboricity-transform",
    run=_run_arboricity_transform(
        EdgeColoringAlgorithm, cost_model=BBKO22B_EDGE_COLORING_MODEL
    ),
    covers=("EdgeColoringAlgorithm", "OracleCostModel"),
))
register_algorithm(AlgorithmFamily(
    name="charged-arb-matching",
    description="Theorem 15 transform of maximal matching, A-phase charged "
    "under its own declared f (measured-vs-charged per cell)",
    kind="arboricity-transform",
    run=_run_arboricity_transform(
        MaximalMatchingAlgorithm, cost_model=_SELF_MODELS["matching"]
    ),
    covers=("MaximalMatchingAlgorithm",),
))
register_algorithm(AlgorithmFamily(
    name="charged-tree-mis",
    description="Theorem 12 transform of MIS, A-phase charged under its own "
    "declared f (measured-vs-charged per cell)",
    kind="tree-transform",
    run=_run_tree_transform(MISAlgorithm, cost_model=_SELF_MODELS["mis"]),
    covers=("MISAlgorithm",),
    requires_forest=True,
))
register_algorithm(AlgorithmFamily(
    name="charged-tree-deg+1-coloring",
    description="Theorem 12 transform of (deg+1)-colouring, A-phase charged "
    "under its own declared f (measured-vs-charged per cell)",
    kind="tree-transform",
    run=_run_tree_transform(
        DegPlusOneColoringAlgorithm, cost_model=_SELF_MODELS["deg+1-coloring"]
    ),
    covers=("DegPlusOneColoringAlgorithm",),
    requires_forest=True,
))

# ----------------------------------------------------------------------
# sinkless orientation and the list variants as measured families
# ----------------------------------------------------------------------
register_algorithm(AlgorithmFamily(
    name="sinkless-orientation",
    description="sinkless orientation (no node of degree ≥ 3 is a sink) via "
    "gather-and-solve per component, verified in the node-edge-checkable "
    "formalism and classically",
    kind="orientation",
    run=_run_sinkless_orientation,
    covers=("SinklessOrientationProblem",),
))
register_algorithm(AlgorithmFamily(
    name="node-list-edge-coloring",
    description="Π* of (edge-degree+1)-edge colouring: baseline on half the "
    "edges, Lemma 16 sequential list solver on the induced residual",
    kind="list-variant",
    run=_run_list_variant(
        "node-list",
        EdgeColoringAlgorithm,
        lambda graph, classic: is_edge_degree_plus_one_coloring(graph, classic),
    ),
    covers=("EdgeColoringAlgorithm", "build_node_list_instance"),
))
register_algorithm(AlgorithmFamily(
    name="node-list-matching",
    description="Π* of maximal matching: baseline on half the edges, "
    "Lemma 17 sequential list solver on the induced residual",
    kind="list-variant",
    run=_run_list_variant(
        "node-list",
        MaximalMatchingAlgorithm,
        lambda graph, classic: is_maximal_matching(
            graph, [tuple(edge) for edge in classic]
        ),
    ),
    covers=("MaximalMatchingAlgorithm", "build_node_list_instance"),
))
register_algorithm(AlgorithmFamily(
    name="edge-list-mis",
    description="Π× of MIS: baseline on half the nodes, greedy sequential "
    "edge-list solver on the induced residual",
    kind="list-variant",
    run=_run_list_variant(
        "edge-list",
        MISAlgorithm,
        lambda graph, classic: is_maximal_independent_set(graph, classic),
    ),
    covers=("MISAlgorithm", "build_edge_list_instance"),
))
register_algorithm(AlgorithmFamily(
    name="edge-list-coloring",
    description="Π× of (deg+1)-colouring: baseline on half the nodes, greedy "
    "sequential edge-list solver on the induced residual",
    kind="list-variant",
    run=_run_list_variant(
        "edge-list",
        DegPlusOneColoringAlgorithm,
        lambda graph, classic: is_deg_plus_one_coloring(graph, classic),
    ),
    covers=("DegPlusOneColoringAlgorithm", "build_edge_list_instance"),
))


# ----------------------------------------------------------------------
# scenarios, cells and suites
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One (scenario, n, seed) unit of work — the runner's picklable payload."""

    scenario: str
    generator: str
    algorithm: str
    n: int
    seed: int

    @property
    def fingerprint(self) -> str:
        return cell_fingerprint(self.generator, self.algorithm, self.n, self.seed)


@dataclass(frozen=True)
class ScenarioSpec:
    """A generator × algorithm pairing swept over sizes and seeds."""

    name: str
    generator: str
    algorithm: str
    sizes: tuple[int, ...]
    seeds: tuple[int, ...] = (1,)
    smoke_sizes: tuple[int, ...] | None = None

    def validate(self) -> None:
        if self.generator not in GENERATORS:
            raise ValueError(
                f"scenario {self.name!r}: unknown generator {self.generator!r} "
                f"(known: {sorted(GENERATORS)})"
            )
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"scenario {self.name!r}: unknown algorithm {self.algorithm!r} "
                f"(known: {sorted(ALGORITHMS)})"
            )
        if not self.sizes or not self.seeds:
            raise ValueError(f"scenario {self.name!r}: empty size or seed sweep")
        reason = ALGORITHMS[self.algorithm].compatible_with(GENERATORS[self.generator])
        if reason is not None:
            raise ValueError(
                f"scenario {self.name!r}: {self.algorithm!r} cannot run on "
                f"{self.generator!r}: {reason}"
            )

    @property
    def is_analytic(self) -> bool:
        return ALGORITHMS[self.algorithm].kind == "analytic"

    def cells(self, smoke: bool = False) -> Iterator[Cell]:
        """Enumerate the scenario's cells.

        Analytic cells are free to evaluate, so ``smoke`` never shrinks
        them — the Theorem 3 shape check stays intact even in CI smoke
        sweeps.
        """
        sizes, seeds = self.sizes, self.seeds
        if smoke and not self.is_analytic:
            sizes = self.smoke_sizes or tuple(sorted(self.sizes)[:2])
            seeds = self.seeds[:1]
        for n in sizes:
            for seed in seeds:
                yield Cell(self.name, self.generator, self.algorithm, n, seed)


@dataclass(frozen=True)
class Suite:
    """A named collection of scenarios run and reported together."""

    name: str
    description: str
    scenarios: tuple[ScenarioSpec, ...]

    def validate(self) -> None:
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"suite {self.name!r}: duplicate scenario names")
        for scenario in self.scenarios:
            scenario.validate()

    def cells(
        self,
        smoke: bool = False,
        sizes: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
    ) -> list[Cell]:
        """All cells of the suite, deduplicated by fingerprint.

        ``sizes`` / ``seeds`` override the sweep of every *measured*
        scenario (analytic scenarios keep their asymptotic sizes — a CLI
        ``--sizes 100`` should not destroy the shape fit).
        """
        self.validate()
        cells: list[Cell] = []
        seen: set[str] = set()
        for scenario in self.scenarios:
            swept = scenario
            if not scenario.is_analytic:
                if sizes is not None:
                    swept = replace(swept, sizes=tuple(sizes), smoke_sizes=None)
                if seeds is not None:
                    swept = replace(swept, seeds=tuple(seeds))
            for cell in swept.cells(smoke=smoke):
                if cell.fingerprint in seen:
                    continue
                seen.add(cell.fingerprint)
                cells.append(cell)
        return cells


SUITES: dict[str, Suite] = {}


def register_suite(suite: Suite) -> Suite:
    if suite.name in SUITES:
        raise ValueError(f"suite {suite.name!r} already registered")
    suite.validate()
    SUITES[suite.name] = suite
    return suite


def get_suite(name: str) -> Suite:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; registered suites: {sorted(SUITES)}"
        ) from None


register_suite(Suite(
    name="paper-claims",
    description="the transforms behind Theorems 3, 12 and 15 on random trees "
    "and planar graphs, plus the analytic Theorem 3 shape cells",
    scenarios=(
        ScenarioSpec(
            name="edge-coloring/tree-transform",
            generator="random-tree",
            algorithm="arb-edge-coloring",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="mis/tree-transform",
            generator="random-tree",
            algorithm="tree-mis",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="matching/tree-transform",
            generator="random-tree",
            algorithm="arb-matching",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="deg+1-coloring/tree-transform",
            generator="random-tree",
            algorithm="tree-deg+1-coloring",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="edge-coloring/planar",
            generator="planar-triangulation",
            algorithm="arb-edge-coloring",
            sizes=(120, 250),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
        ScenarioSpec(
            name="theorem3-shape/predicted",
            generator=ANALYTIC_GENERATOR,
            algorithm="predicted-edge-coloring-log12",
            sizes=ANALYTIC_SIZES,
            seeds=(0,),
        ),
        ScenarioSpec(
            name="barrier-shape/predicted",
            generator=ANALYTIC_GENERATOR,
            algorithm="predicted-mm-mis-barrier",
            sizes=ANALYTIC_SIZES,
            seeds=(0,),
        ),
    ),
))

register_suite(Suite(
    name="scaling",
    description="transforms and every direct baseline on growing random trees",
    scenarios=(
        ScenarioSpec(
            name="edge-coloring/tree-transform",
            generator="random-tree",
            algorithm="arb-edge-coloring",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="mis/tree-transform",
            generator="random-tree",
            algorithm="tree-mis",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="deg+1-coloring/baseline",
            generator="random-tree",
            algorithm="baseline-deg+1-coloring",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="edge-coloring/baseline",
            generator="random-tree",
            algorithm="baseline-edge-coloring",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="mis/baseline",
            generator="random-tree",
            algorithm="baseline-mis",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="matching/baseline",
            generator="random-tree",
            algorithm="baseline-matching",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="linial/baseline",
            generator="random-tree",
            algorithm="baseline-linial",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        ScenarioSpec(
            name="forest-3coloring/baseline",
            generator="random-tree",
            algorithm="baseline-forest-3coloring",
            sizes=(100, 200, 400, 800, 1600),
            seeds=(1, 2, 3),
            smoke_sizes=(50, 100),
        ),
        # Sizes only reachable on the vectorized backend: the interpreted
        # engine takes minutes per cell from n ≈ 10⁵, the array kernels
        # milliseconds.  Smoke keeps one such size so CI exercises the
        # backend at a scale the interpreted engine could not smoke.
        ScenarioSpec(
            name="linial/large-vectorized",
            generator="random-tree",
            algorithm="baseline-linial",
            sizes=(50_000, 200_000, 1_000_000),
            seeds=(1,),
            smoke_sizes=(20_000,),
        ),
        ScenarioSpec(
            name="forest-3coloring/large-vectorized",
            generator="random-tree",
            algorithm="baseline-forest-3coloring",
            sizes=(50_000, 200_000, 1_000_000),
            seeds=(1,),
            smoke_sizes=(20_000,),
        ),
        ScenarioSpec(
            name="mis/large-vectorized",
            generator="random-tree",
            algorithm="baseline-mis",
            sizes=(50_000, 200_000, 1_000_000),
            seeds=(1,),
            smoke_sizes=(20_000,),
        ),
        ScenarioSpec(
            name="deg+1-coloring/large-vectorized",
            generator="random-tree",
            algorithm="baseline-deg+1-coloring",
            sizes=(50_000, 200_000, 1_000_000),
            seeds=(1,),
            smoke_sizes=(20_000,),
        ),
    ),
))

register_suite(Suite(
    name="stress",
    description="denser families: forest unions, planar triangulations and "
    "bounded-degree random graphs",
    scenarios=(
        ScenarioSpec(
            name="edge-coloring/forest-union",
            generator="forest-union-2",
            algorithm="arb-edge-coloring",
            sizes=(200, 400),
            seeds=(1, 2),
            smoke_sizes=(60,),
        ),
        ScenarioSpec(
            name="matching/forest-union",
            generator="forest-union-2",
            algorithm="arb-matching",
            sizes=(200, 400),
            seeds=(1, 2),
            smoke_sizes=(60,),
        ),
        ScenarioSpec(
            name="matching/planar",
            generator="planar-triangulation",
            algorithm="baseline-matching",
            sizes=(200, 400),
            seeds=(1, 2),
            smoke_sizes=(60,),
        ),
        ScenarioSpec(
            name="deg+1-coloring/bounded-degree",
            generator="bounded-degree-8",
            algorithm="baseline-deg+1-coloring",
            sizes=(500, 1000),
            seeds=(1, 2),
            smoke_sizes=(100,),
        ),
        ScenarioSpec(
            name="linial/bounded-degree",
            generator="bounded-degree-8",
            algorithm="baseline-linial",
            sizes=(500, 1000),
            seeds=(1, 2),
            smoke_sizes=(100,),
        ),
        ScenarioSpec(
            name="mis/bounded-degree",
            generator="bounded-degree-8",
            algorithm="baseline-mis",
            sizes=(500, 1000),
            seeds=(1, 2),
            smoke_sizes=(100,),
        ),
    ),
))

register_suite(Suite(
    name="workloads",
    description="structured instance families: grids, caterpillars and "
    "spiders (deterministic shapes, one seed)",
    scenarios=(
        ScenarioSpec(
            name="edge-coloring/grid",
            generator="grid",
            algorithm="arb-edge-coloring",
            sizes=(64, 144, 256),
            seeds=(1,),
            smoke_sizes=(36,),
        ),
        ScenarioSpec(
            name="matching/grid",
            generator="grid",
            algorithm="arb-matching",
            sizes=(64, 144, 256),
            seeds=(1,),
            smoke_sizes=(36,),
        ),
        ScenarioSpec(
            name="deg+1-coloring/caterpillar",
            generator="caterpillar-3",
            algorithm="tree-deg+1-coloring",
            sizes=(80, 160, 320),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
        ScenarioSpec(
            name="forest-3coloring/caterpillar",
            generator="caterpillar-3",
            algorithm="baseline-forest-3coloring",
            sizes=(80, 160, 320),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
        ScenarioSpec(
            name="mis/spider",
            generator="spider",
            algorithm="tree-mis",
            sizes=(80, 160, 320),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
        ScenarioSpec(
            name="forest-3coloring/spider",
            generator="spider",
            algorithm="baseline-forest-3coloring",
            sizes=(80, 160, 320),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
    ),
))

register_suite(Suite(
    name="lower-bound",
    description="the paper's lower-bound instances: regular balanced trees "
    "of degree 3, plus the analytic MIS/matching barrier shape",
    scenarios=(
        ScenarioSpec(
            name="mis/balanced-tree",
            generator="balanced-tree-3",
            algorithm="tree-mis",
            sizes=(22, 46, 94, 190),
            seeds=(1,),
            smoke_sizes=(22, 46),
        ),
        ScenarioSpec(
            name="matching/balanced-tree",
            generator="balanced-tree-3",
            algorithm="arb-matching",
            sizes=(22, 46, 94, 190),
            seeds=(1,),
            smoke_sizes=(22, 46),
        ),
        ScenarioSpec(
            name="forest-3coloring/balanced-tree",
            generator="balanced-tree-3",
            algorithm="baseline-forest-3coloring",
            sizes=(22, 46, 94, 190),
            seeds=(1,),
            smoke_sizes=(22, 46),
        ),
        ScenarioSpec(
            name="barrier-shape/predicted",
            generator=ANALYTIC_GENERATOR,
            algorithm="predicted-mm-mis-barrier",
            sizes=ANALYTIC_SIZES,
            seeds=(0,),
        ),
    ),
))

register_suite(Suite(
    name="charged",
    description="transform cells run under OracleCostModel charging: the "
    "analytic Theorem 3 account (charged_rounds) next to the measured "
    "engine per scenario, plus the analytic shape cells for comparison",
    scenarios=(
        ScenarioSpec(
            name="edge-coloring/charged-tree",
            generator="random-tree",
            algorithm="charged-arb-edge-coloring",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="edge-coloring/charged-planar",
            generator="planar-triangulation",
            algorithm="charged-arb-edge-coloring",
            sizes=(120, 250),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
        ScenarioSpec(
            name="matching/charged-tree",
            generator="random-tree",
            algorithm="charged-arb-matching",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="mis/charged-tree",
            generator="random-tree",
            algorithm="charged-tree-mis",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="deg+1-coloring/charged-tree",
            generator="random-tree",
            algorithm="charged-tree-deg+1-coloring",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="theorem3-shape/predicted",
            generator=ANALYTIC_GENERATOR,
            algorithm="predicted-edge-coloring-log12",
            sizes=ANALYTIC_SIZES,
            seeds=(0,),
        ),
    ),
))

register_suite(Suite(
    name="orientation-lists",
    description="sinkless orientation and the Π* / Π× list variants as "
    "measured workloads across structured and random families",
    scenarios=(
        ScenarioSpec(
            name="sinkless-orientation/grid",
            generator="grid",
            algorithm="sinkless-orientation",
            sizes=(64, 144, 256),
            seeds=(1,),
            smoke_sizes=(36,),
        ),
        ScenarioSpec(
            name="sinkless-orientation/bounded-degree",
            generator="bounded-degree-8",
            algorithm="sinkless-orientation",
            sizes=(200, 400),
            seeds=(1, 2),
            smoke_sizes=(60,),
        ),
        ScenarioSpec(
            name="sinkless-orientation/balanced-tree",
            generator="balanced-tree-3",
            algorithm="sinkless-orientation",
            sizes=(22, 46, 94, 190),
            seeds=(1,),
            smoke_sizes=(22, 46),
        ),
        ScenarioSpec(
            name="node-list-edge-coloring/random-tree",
            generator="random-tree",
            algorithm="node-list-edge-coloring",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="node-list-matching/random-tree",
            generator="random-tree",
            algorithm="node-list-matching",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="edge-list-mis/random-tree",
            generator="random-tree",
            algorithm="edge-list-mis",
            sizes=(100, 300, 1000),
            seeds=(1, 2),
            smoke_sizes=(40, 80),
        ),
        ScenarioSpec(
            name="edge-list-coloring/caterpillar",
            generator="caterpillar-3",
            algorithm="edge-list-coloring",
            sizes=(80, 160, 320),
            seeds=(1,),
            smoke_sizes=(40,),
        ),
    ),
))
