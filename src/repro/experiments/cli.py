"""Command-line interface: ``python -m repro.experiments
<run|list|report|merge|serve|submit|collect|metrics|dashboard>``.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run paper-claims --jobs 4
    python -m repro.experiments run paper-claims --jobs 4      # skips all cells
    python -m repro.experiments run scaling --sizes 100,300 --seeds 1
    python -m repro.experiments report
    python -m repro.experiments report --json report.json --csv report.csv

Distributed sharding and the sweep service::

    # machine A                                  # machine B
    python -m repro.experiments run scaling \\
        --shard 0/2 --out shards/a               ... --shard 1/2 --out shards/b
    # then anywhere:
    python -m repro.experiments merge --out experiments/results/results.jsonl \\
        shards/a/results.jsonl shards/b/results.jsonl
    python -m repro.experiments report

    # long-lived worker pool serving many clients:
    python -m repro.experiments serve --workers 4 &
    python -m repro.experiments submit paper-claims --smoke --wait

Cross-machine streaming (TCP, token-authenticated via
``REPRO_SERVICE_TOKEN``)::

    # collector machine:
    python -m repro.experiments collect --listen 0.0.0.0:7919 --out central
    # shard workers, each streaming every completed cell live:
    python -m repro.experiments run scaling --shard 0/2 --collector host:7919
    python -m repro.experiments run scaling --shard 1/2 --collector host:7919
    # fetch the rendered report straight off the collector:
    python -m repro.experiments report --connect host:7919 --json report.json

``run`` appends to ``<out>/results.jsonl`` (default ``experiments/results``)
and is resumable: completed-and-verified cells are skipped by fingerprint,
so a crashed or interrupted sweep continues where it stopped.  ``report``
rebuilds the scaling tables and log-power fits from the store alone.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.report import _format_n, build_report, render_json_tables
from repro.experiments.runner import SweepRunner, default_jobs
from repro.experiments.spec import ALGORITHMS, GENERATORS, SUITES, get_suite
from repro.experiments.store import (
    DEFAULT_OUT,
    CellResult,
    ResultStore,
    merge_result_files,
)
from repro.experiments.shard import ShardSpec
from repro.obs.metrics import parse_exposition_types
from repro.obs.timeseries import (
    DEFAULT_SCRAPE_INTERVAL_S,
    ScrapePoint,
    load_history_jsonl,
    parse_duration,
    points_from_payload,
    points_in_window,
    windowed_quantile,
)
from repro.service.client import CollectorSink, ServiceClient, ServiceError
from repro.service.collector import ResultCollector
from repro.service.daemon import DEFAULT_SOCKET, SweepDaemon
from repro.service.leases import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_LEASE_BATCH,
    FleetWorker,
)
from repro.service.pool import DEFAULT_BATCH_SIZE
from repro.service.protocol import AUTH_TOKEN_ENV

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.replace(",", " ").split())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected integers, got {text!r}") from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _shard_spec(text: str) -> ShardSpec:
    try:
        return ShardSpec.parse(text)
    except ValueError as error:
        # Always carry the i/k format hint: ShardSpec's own range errors
        # ("shard index must be in [0, k)") do not repeat the syntax.
        raise argparse.ArgumentTypeError(
            f"{error} (expected i/k with 0 <= i < k, e.g. --shard 0/2)"
        ) from None


# argparse names the converter in its fallback "invalid ... value" error;
# the function's private name would leak into user-facing output.
_shard_spec.__name__ = "shard spec"


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _duration(text: str) -> float:
    try:
        return parse_duration(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


_duration.__name__ = "duration"


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = _nonnegative_float(text)
    if value == 0:
        raise argparse.ArgumentTypeError("expected a positive number, got 0")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="declarative experiment sweeps over the fast LOCAL engine",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "built-in suites:\n"
            "  paper-claims       the Theorem 3/12/15 transforms plus analytic "
            "shape cells\n"
            "  scaling            transforms and every direct baseline on "
            "growing random trees\n"
            "  stress             denser families: forest unions, planar, "
            "bounded degree\n"
            "  workloads          structured families: grids, caterpillars, "
            "spiders\n"
            "  lower-bound        the paper's regular-balanced-tree lower-bound "
            "instances\n"
            "  charged            transforms under OracleCostModel charging: "
            "report tables gain\n"
            "                     measured-vs-charged columns "
            "(rounds / charged_rounds) and the\n"
            "                     (log2 n)^beta fits run on either series\n"
            "  orientation-lists  sinkless orientation and the node/edge-list "
            "variants (Pi*/Pix)\n"
            "\n"
            "`run <suite>` appends one JSONL record per cell; `report` rebuilds "
            "the scaling\ntables (with a `<scenario> [charged]` column per "
            "charged scenario) and shape fits\nfrom the store alone.\n"
            "\n"
            "engine selection (`run`/`submit --engine`):\n"
            "  auto         (default) each algorithm family picks its backend: "
            "kernel-capable\n               baselines (Linial, Cole–Vishkin "
            "forest 3-colouring, colour-class\n               MIS, Δ+1 colour "
            "reduction) and the decomposition peels run on\n               the "
            "vectorized array engine, everything else on the interpreted\n"
            "               active-set engine\n"
            "  interpreted  force the interpreted engine everywhere\n"
            "  vectorized   require the array engine for kernel-capable "
            "families (fails if\n               numpy is unavailable)\n"
            "  Kernels run against a pluggable array backend "
            "(`repro.local.ArrayBackend`,\n  NumPy by default; "
            "register_backend() adds more); a family-declared engine pin\n"
            "  degrades to the interpreted engine on a numpy-free "
            "interpreter.  Results are\n  bit-identical across engines and "
            "backends; each stored cell records what\n  served it in its "
            "`engine` field (e.g. `vectorized[numpy]`) plus per-kernel\n"
            "  round counts in `engine_rounds`, surfaced by `report`.\n"
            "\n"
            "cross-machine transport:\n"
            "  `serve --listen host:port` adds a token-authenticated TCP "
            "listener next to the\n  Unix socket, and `collect --listen "
            "host:port` runs a result collector: shard\n  workers started with "
            "`run <suite> --shard i/k --collector host:port` stream each\n"
            "  completed cell record live into the collector's deduplicated "
            "store (verified\n  records outrank unverified ones, same policy "
            "as `merge`).  TCP requires a\n  shared token from --token or the "
            f"{AUTH_TOKEN_ENV} environment variable; Unix\n  sockets need "
            "none.  `report --connect host:port [--job job-N]` fetches the\n"
            "  server-side `report` verb: the rendered bundle for a collector "
            "store or a\n  finished daemon job, byte-identical to a local "
            "`report --json` on that store.\n"
            "\n"
            "elastic sweep fleet:\n"
            "  `run <suite> --fleet host:port` replaces the static shard "
            "split with a lease\n  loop: each worker registers with the "
            "collector, offers the suite's fingerprint\n  universe and pulls "
            "batches of leased cells (`--lease-batch`), streaming every\n  "
            "result back over the same `push` path (a push completes the "
            "cell's lease).\n  A background heartbeat renews a worker's "
            "leases; a worker that dies stops\n  heartbeating, its leases "
            "expire after the TTL (`collect --lease-ttl`, default\n  2x "
            "`--heartbeat-interval`) and the cells are reassigned to the "
            "survivors — kill\n  a worker mid-sweep and the suite still "
            "finishes with no lost cells.  Workers\n  added mid-run (or "
            "restarted after a collector restart, which answers unknown\n  "
            "ids with `known: false`) simply register and start pulling.  "
            "`fleet_status`\n  reports workers alive/lost, active leases and "
            "lease fates; the collector's\n  metrics gain `fleet_workers`, "
            "`fleet_leases_total{fate}` and a lease-age\n  histogram, plus a "
            "`lease-stuck` SLO (oldest active lease vs 3x TTL).\n"
            "\n"
            "observability:\n"
            "  Both services export an in-process metrics registry over a "
            "`metrics` verb as\n  Prometheus text: per-verb request counts and "
            "latency histograms, auth failures,\n  malformed lines, queue "
            "depth, jobs by state, cells/sec, ingest fates and\n  per-cell "
            "phase timings (generate/run/verify/simulate — also stored "
            "per record\n  in a nonsemantic `timings` field).  `metrics "
            "--connect host:port [--out f.prom]`\n  scrapes either service; "
            "`scripts/slo_burn_check.py <scrape>` evaluates the SLOs\n  "
            "(p99 verb latency, zero dropped/malformed/unauthenticated, "
            "conflict rate).\n  `dashboard --out DIR [--metrics f.prom | "
            "--connect host:port] --html page.html`\n  renders the report "
            "bundle plus a scrape to one static HTML page (stat tiles,\n  "
            "scaling/fit tables, SLO verdicts) — CI uploads it as the "
            "`dashboard` artifact.\n"
            "\n"
            "time-series telemetry:\n"
            "  Each service retains a ring buffer of metric scrapes "
            "(snapshotted every\n  `--scrape-interval` seconds; 0 disables; "
            "`--history-spill FILE` mirrors each\n  snapshot to JSONL) and "
            "serves it over a `metrics_history` verb on both\n  transports.  "
            "`metrics --connect host:port --history [--window 5m] "
            "[--out h.jsonl]`\n  prints windowed counter rates, gauge deltas "
            "and histogram quantiles, or saves\n  the raw points as JSONL.  "
            "`scripts/slo_burn_check.py --history h.jsonl\n  [--window 5m]` "
            "evaluates dual-window (fast/slow) SLO burn rates — exit 1 means\n"
            "  burning, 3 means no data.  `dashboard --history h.jsonl` adds "
            "sparkline trend\n  rows and the dual-window burn table "
            "(`--connect` fetches the live history\n  automatically).  "
            "`dashboard --diff old.prom new.prom` and `dashboard\n  "
            "--diff-bench BENCH_engine.json fresh.json [--max-regression 2.0]` "
            "render\n  regression-highlighted diff pages and exit 1 on "
            "regression — CI gates each PR's\n  bench run against the "
            "committed BENCH_engine.json trajectory and uploads the\n  page "
            "as the `bench-diff` artifact."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Sweep-shaping options shared verbatim by `run` and `submit`.
    sweep_options = argparse.ArgumentParser(add_help=False)
    sweep_options.add_argument(
        "--sizes", type=_int_list, default=None,
        help="override the size sweep of measured scenarios, e.g. --sizes 100,300",
    )
    sweep_options.add_argument(
        "--seeds", type=_int_list, default=None,
        help="override the seed list of measured scenarios, e.g. --seeds 1,2,3",
    )
    sweep_options.add_argument(
        "--smoke", action="store_true",
        help="CI-size sweep: smoke sizes, first seed only (analytic cells unchanged)",
    )
    sweep_options.add_argument(
        "--shard", type=_shard_spec, default=None, metavar="I/K",
        help="run only shard i of k (deterministic disjoint fingerprint "
        "partition), e.g. --shard 0/2",
    )
    sweep_options.add_argument(
        "--engine", choices=("auto", "interpreted", "vectorized"), default="auto",
        help="simulation backend for measured cells (default: auto — the "
        "vectorized array engine wherever a kernel exists, interpreted "
        "otherwise)",
    )

    run = sub.add_parser(
        "run", help="run a suite's pending cells", parents=[sweep_options]
    )
    run.add_argument("suite", help=f"suite name (one of: {', '.join(sorted(SUITES))})")
    run.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes (default: min(cpu count, 8))",
    )
    run.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"result-store directory (default: {DEFAULT_OUT})",
    )
    run.add_argument(
        "--collector", default=None, metavar="ENDPOINT",
        help="also stream each completed cell record to a result collector "
        "(host:port or a Unix socket path); the local store is still written",
    )
    run.add_argument(
        "--fleet", default=None, metavar="ENDPOINT",
        help="elastic fleet mode: pull heartbeat-renewed lease batches from "
        "a collector (host:port or Unix socket path) instead of computing a "
        "static shard, and stream every result back; incompatible with "
        "--shard and --collector",
    )
    run.add_argument(
        "--lease-batch", type=_positive_int, default=DEFAULT_LEASE_BATCH,
        metavar="N",
        help="with --fleet: cells requested per lease grant "
        f"(default: {DEFAULT_LEASE_BATCH})",
    )
    run.add_argument(
        "--worker-name", default=None, metavar="NAME",
        help="with --fleet: the name this worker registers under "
        "(default: hostname-pid)",
    )
    run.add_argument(
        "--token", default=None,
        help=f"shared auth token for a TCP --collector (default: ${AUTH_TOKEN_ENV})",
    )
    run.add_argument("--quiet", action="store_true", help="no per-cell progress lines")

    sub.add_parser("list", help="list suites, generators and algorithms")

    merge = sub.add_parser(
        "merge", help="union sharded JSONL result files into one store"
    )
    merge.add_argument(
        "inputs", nargs="+",
        help="JSONL result files to merge (e.g. shards/*/results.jsonl)",
    )
    merge.add_argument(
        "--out", default=f"{DEFAULT_OUT}/results.jsonl",
        help="merged JSONL output path; an existing file is treated as a "
        f"first input (default: {DEFAULT_OUT}/results.jsonl)",
    )

    serve = sub.add_parser(
        "serve", help="run the sweep daemon: a persistent worker pool behind "
        "a local socket",
    )
    serve.add_argument(
        "--socket", default=DEFAULT_SOCKET,
        help=f"Unix socket path to listen on (default: {DEFAULT_SOCKET})",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=None,
        help="warm worker processes (default: min(cpu count, 8))",
    )
    serve.add_argument(
        "--batch-size", type=_positive_int, default=DEFAULT_BATCH_SIZE,
        help=f"cells per task submission (default: {DEFAULT_BATCH_SIZE})",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="also listen on TCP (token-authenticated) for cross-machine "
        "clients, e.g. --listen 0.0.0.0:7919",
    )
    serve.add_argument(
        "--token", default=None,
        help=f"shared auth token for the TCP listener (default: ${AUTH_TOKEN_ENV})",
    )
    serve.add_argument(
        "--scrape-interval", type=_nonnegative_float,
        default=DEFAULT_SCRAPE_INTERVAL_S, metavar="SECONDS",
        help="seconds between metrics-history snapshots served by the "
        "metrics_history verb (0 disables the background scraper; "
        f"default: {DEFAULT_SCRAPE_INTERVAL_S:g})",
    )
    serve.add_argument(
        "--history-spill", default=None, metavar="FILE",
        help="append each history snapshot to FILE as JSONL (readable by "
        "`dashboard --history` and `scripts/slo_burn_check.py --history`)",
    )

    collect = sub.add_parser(
        "collect", help="run a result collector: stream sharded sweep results "
        "into one deduplicated store",
    )
    collect.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="TCP address to collect on (token-authenticated), "
        "e.g. --listen 0.0.0.0:7919",
    )
    collect.add_argument(
        "--socket", default=None,
        help="Unix socket path to collect on (no token needed)",
    )
    collect.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"deduplicated result-store directory (default: {DEFAULT_OUT})",
    )
    collect.add_argument(
        "--token", default=None,
        help=f"shared auth token for the TCP listener (default: ${AUTH_TOKEN_ENV})",
    )
    collect.add_argument(
        "--scrape-interval", type=_nonnegative_float,
        default=DEFAULT_SCRAPE_INTERVAL_S, metavar="SECONDS",
        help="seconds between metrics-history snapshots served by the "
        "metrics_history verb (0 disables the background scraper; "
        f"default: {DEFAULT_SCRAPE_INTERVAL_S:g})",
    )
    collect.add_argument(
        "--history-spill", default=None, metavar="FILE",
        help="append each history snapshot to FILE as JSONL (readable by "
        "`dashboard --history` and `scripts/slo_burn_check.py --history`)",
    )
    collect.add_argument(
        "--heartbeat-interval", type=_positive_float,
        default=DEFAULT_HEARTBEAT_INTERVAL_S, metavar="SECONDS",
        help="fleet cadence handed to `run --fleet` workers at registration "
        f"(default: {DEFAULT_HEARTBEAT_INTERVAL_S:g})",
    )
    collect.add_argument(
        "--lease-ttl", type=_positive_float, default=None, metavar="SECONDS",
        help="seconds a lease survives without a heartbeat before its cells "
        "are reassigned (default: 2x the heartbeat interval)",
    )

    submit = sub.add_parser(
        "submit", help="submit a sweep job to a running daemon",
        parents=[sweep_options],
    )
    submit.add_argument("suite", help="suite name to run")
    submit.add_argument(
        "--socket", default=DEFAULT_SOCKET,
        help="daemon endpoint: Unix socket path or host:port "
        f"(default: {DEFAULT_SOCKET})",
    )
    submit.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"result-store directory on the daemon side (default: {DEFAULT_OUT})",
    )
    submit.add_argument(
        "--collector", default=None, metavar="ENDPOINT",
        help="have the daemon stream the job's records to this result "
        "collector as well",
    )
    submit.add_argument(
        "--token", default=None,
        help=f"shared auth token for a TCP daemon (default: ${AUTH_TOKEN_ENV})",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its summary",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait timeout in seconds (default: 600)",
    )

    report = sub.add_parser(
        "report", help="rebuild scaling tables and shape fits from stored results"
    )
    report.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"result-store directory to read (default: {DEFAULT_OUT})",
    )
    report.add_argument(
        "--suite", default=None,
        help="only report records of this suite (default: all records)",
    )
    report.add_argument(
        "--connect", default=None, metavar="ENDPOINT",
        help="fetch the rendered bundle from a collector or daemon "
        "(host:port or Unix socket path) instead of reading a local store",
    )
    report.add_argument(
        "--job", default=None,
        help="with --connect against a daemon: the finished job to report on",
    )
    report.add_argument(
        "--token", default=None,
        help=f"shared auth token for a TCP --connect (default: ${AUTH_TOKEN_ENV})",
    )
    report.add_argument("--json", default=None, help="also write the tables as JSON")
    report.add_argument("--csv", default=None, help="also write the scaling table as CSV")

    metrics = sub.add_parser(
        "metrics", help="scrape a daemon or collector's Prometheus-text metrics"
    )
    metrics.add_argument(
        "--connect", required=True, metavar="ENDPOINT",
        help="service endpoint to scrape (host:port or Unix socket path)",
    )
    metrics.add_argument(
        "--token", default=None,
        help=f"shared auth token for a TCP --connect (default: ${AUTH_TOKEN_ENV})",
    )
    metrics.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the exposition (or, with --history, the history points "
        "as JSONL) to FILE instead of stdout",
    )
    metrics.add_argument(
        "--history", action="store_true",
        help="fetch the retained scrape history (metrics_history verb) "
        "instead of one exposition: prints windowed counter rates, gauge "
        "deltas and histogram quantiles, or writes the raw points as JSONL "
        "with --out",
    )
    metrics.add_argument(
        "--window", type=_duration, default=None, metavar="DURATION",
        help="with --history: only points from the trailing window, "
        "e.g. 5m, 90s, 1h (default: everything retained)",
    )

    dashboard = sub.add_parser(
        "dashboard", help="render the report bundle and/or a metrics scrape "
        "to a static HTML page",
    )
    dashboard.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"result-store directory to report on (default: {DEFAULT_OUT}); "
        "pass --no-report to skip the store entirely",
    )
    dashboard.add_argument(
        "--no-report", action="store_true",
        help="render metrics only, without reading any result store",
    )
    dashboard.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="a saved Prometheus-text scrape to include (from `metrics --out`)",
    )
    dashboard.add_argument(
        "--connect", default=None, metavar="ENDPOINT",
        help="scrape a live daemon/collector for the metrics section instead "
        "of --metrics",
    )
    dashboard.add_argument(
        "--token", default=None,
        help=f"shared auth token for a TCP --connect (default: ${AUTH_TOKEN_ENV})",
    )
    dashboard.add_argument(
        "--html", default="dashboard.html", metavar="PATH",
        help="output HTML path (default: dashboard.html)",
    )
    dashboard.add_argument(
        "--title", default=None,
        help="page title (default: per-mode)",
    )
    dashboard.add_argument(
        "--history", default=None, metavar="FILE",
        help="a scrape-history JSONL file (from `metrics --history --out` or "
        "a `--history-spill`) to render as sparkline trends plus the "
        "dual-window SLO burn table",
    )
    dashboard.add_argument(
        "--window", type=_duration, default=None, metavar="DURATION",
        help="with --history/--connect: restrict the history to the "
        "trailing window, e.g. 5m",
    )
    dashboard.add_argument(
        "--diff", nargs=2, default=None, metavar=("A.prom", "B.prom"),
        help="render a metrics diff page between two saved scrapes instead "
        "of a dashboard; exits 1 when a regression is highlighted",
    )
    dashboard.add_argument(
        "--diff-bench", nargs=2, default=None, metavar=("OLD.json", "NEW.json"),
        help="render a bench trajectory diff page between two bench JSON "
        "payloads; exits 1 when a gated entry regresses past --max-regression",
    )
    dashboard.add_argument(
        "--max-regression", type=_nonnegative_float, default=2.0,
        metavar="FACTOR",
        help="--diff-bench: wall-clock ratio above which an entry is a "
        "regression (default: 2.0)",
    )
    dashboard.add_argument(
        "--min-wall", type=_nonnegative_float, default=0.05, metavar="SECONDS",
        help="--diff-bench: entries with either wall clock below this noise "
        "floor are reported but never gate (default: 0.05)",
    )
    return parser


def _make_client(endpoint: str, token: str | None) -> "ServiceClient | int":
    """A ServiceClient, or exit code 2 after reporting a bad endpoint."""
    try:
        return ServiceClient(endpoint, token=token)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        suite = get_suite(args.suite)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    if args.fleet is not None and (
        args.shard is not None or args.collector is not None
    ):
        print(
            "--fleet replaces static sharding and streaming: drop --shard "
            "and --collector (the fleet endpoint receives every result)",
            file=sys.stderr,
        )
        return 2
    store = ResultStore(args.out)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    sink = None
    if args.collector is not None:
        client = _make_client(args.collector, args.token)
        if isinstance(client, int):
            return client
        sink = CollectorSink(client)
    runner = SweepRunner(
        suite, store, jobs=jobs, smoke=args.smoke, sizes=args.sizes,
        seeds=args.seeds, shard=args.shard, sinks=(sink,) if sink else (),
        engine=args.engine,
    )

    def progress(result: CellResult) -> None:
        status = "ok" if result.verified else "VERIFY-FAILED"
        rounds = (
            f"{result.rounds:.1f}" if isinstance(result.rounds, float) else result.rounds
        )
        charged = (
            f" charged={result.charged_rounds:g}"
            if result.charged_rounds is not None
            else ""
        )
        print(
            f"  [{result.fingerprint}] {result.scenario} n={result.n} "
            f"seed={result.seed} rounds={rounds}{charged} "
            f"wall={result.wall_clock_s:.3f}s {status}"
        )

    if args.fleet is not None:
        worker = FleetWorker(
            suite, store, args.fleet, token=args.token, jobs=jobs,
            smoke=args.smoke, sizes=args.sizes, seeds=args.seeds,
            engine=args.engine, lease_batch=args.lease_batch,
            name=args.worker_name,
            progress=None if args.quiet else progress,
        )
        print(
            f"suite {suite.name!r} [fleet {args.fleet} as {worker.name}]: "
            f"{suite.description}"
        )
        try:
            report = worker.run()
        except (ServiceError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        print(
            f"cells: {report.total_cells} total, {report.skipped} ran "
            f"elsewhere or were already stored, {report.executed} executed, "
            f"{len(report.failures)} failed, {report.unverified} unverified  "
            f"({report.wall_clock_s:.1f}s, jobs={jobs})"
        )
        print(f"store: {store.path}")
        print(f"pushed {worker.pushed} record(s) to fleet {args.fleet}")
        for failure in report.failures:
            print(
                f"FAILED cell {failure.cell.scenario} n={failure.cell.n} "
                f"seed={failure.cell.seed}: {failure.error} "
                f"(released back to the fleet)",
                file=sys.stderr,
            )
        return 0 if report.ok else 1

    shard_note = f" [shard {args.shard}]" if args.shard is not None else ""
    print(f"suite {suite.name!r}{shard_note}: {suite.description}")
    try:
        report = runner.run(progress=None if args.quiet else progress)
    finally:
        if sink is not None:
            sink.close()
    print(
        f"cells: {report.total_cells} total, {report.skipped} already stored, "
        f"{report.executed} executed, {len(report.failures)} failed, "
        f"{report.unverified} unverified  "
        f"({report.wall_clock_s:.1f}s, jobs={jobs})"
    )
    print(f"store: {store.path}")
    if sink is not None:
        print(f"streamed {sink.pushed} record(s) to collector {args.collector}")
    if report.sink_error is not None:
        print(
            f"COLLECTOR STREAM FAILED after {sink.pushed} record(s): "
            f"{report.sink_error} — the local store is complete; merge it "
            f"into the collector store to recover",
            file=sys.stderr,
        )
    for failure in report.failures:
        print(
            f"FAILED cell {failure.cell.scenario} n={failure.cell.n} "
            f"seed={failure.cell.seed}: {failure.error}",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_list() -> int:
    print("suites:")
    for name in sorted(SUITES):
        suite = SUITES[name]
        print(f"  {name}: {suite.description}")
        for scenario in suite.scenarios:
            sizes = ", ".join(_format_n(n) for n in scenario.sizes)
            print(
                f"    {scenario.name}  [{scenario.generator} × {scenario.algorithm}]"
                f"  sizes: {sizes}  seeds: {len(scenario.seeds)}"
            )
    print("\ngenerator families:")
    for name in sorted(GENERATORS):
        print(f"  {name}: {GENERATORS[name].description}")
    print("\nalgorithm families:")
    for name in sorted(ALGORITHMS):
        family = ALGORITHMS[name]
        print(f"  {name} ({family.kind}): {family.description}")
    return 0


def _cmd_report_remote(args: argparse.Namespace) -> int:
    """``report --connect``: fetch the server-side bundle over the wire."""
    if args.suite is not None:
        # The report verb has no suite filter; silently returning the
        # full bundle would misreport what the user asked for.
        print("--suite cannot be combined with --connect", file=sys.stderr)
        return 2
    client = _make_client(args.connect, args.token)
    if isinstance(client, int):
        return client
    try:
        payload = client.report(job=args.job)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(payload["render"])
    if args.json:
        Path(args.json).write_text(payload["json"], encoding="utf-8")
        print(f"wrote {args.json}")
    if args.csv:
        Path(args.csv).write_text(payload["csv"], encoding="utf-8")
        print(f"wrote {args.csv}")
    return 0 if payload["all_verified"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    if args.connect is not None:
        return _cmd_report_remote(args)
    if args.job is not None:
        print("--job only makes sense with --connect", file=sys.stderr)
        return 2
    store = ResultStore(args.out)
    records = store.records()
    if args.suite is not None:
        try:
            suite = get_suite(args.suite)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        # Cells are deduplicated across suites by fingerprint, so a record
        # may carry the name of whichever suite ran it first; match the
        # requested suite's cell fingerprints (full and smoke sweeps) too,
        # not just the label.
        fingerprints = {cell.fingerprint for cell in suite.cells()}
        fingerprints.update(cell.fingerprint for cell in suite.cells(smoke=True))
        records = [
            record for record in records
            if record["suite"] == args.suite or record["fingerprint"] in fingerprints
        ]
    if not records:
        print(f"no stored results under {store.path}", file=sys.stderr)
        return 2
    bundle = build_report(records)
    print(bundle.render())
    if args.json:
        Path(args.json).write_text(render_json_tables(bundle), encoding="utf-8")
        print(f"wrote {args.json}")
    if args.csv:
        Path(args.csv).write_text(bundle.scaling.to_csv(), encoding="utf-8")
        print(f"wrote {args.csv}")
    return 0 if bundle.all_verified else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    report = merge_result_files(args.inputs, args.out)
    for path in report.missing:
        print(f"missing input (skipped): {path}", file=sys.stderr)
    if report.records_read == 0:
        print(
            "no input file contributed any records; nothing written",
            file=sys.stderr,
        )
        return 2
    print(
        f"merged {report.records_read} records from "
        f"{len(report.inputs) - len(report.missing)} file(s) into {report.output}: "
        f"{report.merged} cells, {report.duplicates} duplicates, "
        f"{len(report.conflicts)} conflicts"
    )
    for conflict in report.conflicts:
        print(f"CONFLICT {conflict.describe()}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        daemon = SweepDaemon(
            socket_path=args.socket, workers=args.workers,
            batch_size=args.batch_size, listen=args.listen, token=args.token,
            scrape_interval_s=args.scrape_interval,
            history_spill=args.history_spill,
        )
        daemon.start()
    except (ValueError, RuntimeError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(
        f"sweep daemon: socket={args.socket} workers={daemon.pool.workers} "
        f"batch-size={daemon.pool.batch_size}"
    )
    if daemon.tcp_address is not None:
        host, port = daemon.tcp_address
        print(f"TCP listener: {host}:{port} (token-authenticated)")
    print(
        "verbs: submit / status / results / report / metrics / "
        "metrics_history / shutdown  (ctrl-c also stops)"
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.close()
    print("sweep daemon stopped")
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    try:
        collector = ResultCollector(
            out=args.out, listen=args.listen, socket_path=args.socket,
            token=args.token, scrape_interval_s=args.scrape_interval,
            history_spill=args.history_spill,
            heartbeat_interval_s=args.heartbeat_interval,
            lease_ttl_s=args.lease_ttl,
        )
        collector.start()
    except (ValueError, RuntimeError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    endpoints = []
    if collector.tcp_address is not None:
        host, port = collector.tcp_address
        endpoints.append(f"{host}:{port} (TCP, token-authenticated)")
    if args.socket is not None:
        endpoints.append(str(args.socket))
    print(f"result collector: {' and '.join(endpoints)}")
    print(f"store: {collector.store.path}")
    print(
        "verbs: push / status / report / metrics / metrics_history / "
        "register / heartbeat / lease / fleet_status / shutdown  "
        "(ctrl-c also stops)"
    )
    print(
        f"fleet: heartbeat every {collector.leases.heartbeat_interval_s:g}s, "
        f"lease TTL {collector.leases.lease_ttl_s:g}s"
    )
    try:
        collector.serve_forever()
    except KeyboardInterrupt:
        collector.close()
    print(
        f"collector stopped: {collector.accepted} accepted, "
        f"{collector.dropped} dropped, {collector.conflicts} conflicts"
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _make_client(args.socket, args.token)
    if isinstance(client, int):
        return client
    try:
        job_id = client.submit(
            args.suite,
            smoke=args.smoke,
            sizes=args.sizes,
            seeds=args.seeds,
            shard=str(args.shard) if args.shard is not None else None,
            out=args.out,
            collector=args.collector,
            engine=args.engine,
        )
        print(f"submitted {args.suite!r} as {job_id}")
        if not args.wait:
            return 0
        status = client.wait(job_id, timeout=args.timeout)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(
        f"{job_id} {status['state']}: {status['total_cells']} cells, "
        f"{status['skipped']} already stored, {status['executed']} executed, "
        f"{len(status['failures'])} failed, {status['unverified']} unverified"
    )
    if status["error"]:
        print(f"job error: {status['error']}", file=sys.stderr)
    if status.get("sink_error"):
        print(
            f"collector stream failed: {status['sink_error']}", file=sys.stderr
        )
    for failure in status["failures"]:
        print(
            f"FAILED cell {failure['scenario']} n={failure['n']} "
            f"seed={failure['seed']}: {failure['error']}",
            file=sys.stderr,
        )
    ok = (
        status["state"] == "done"
        and not status["failures"]
        and status["unverified"] == 0
        and not status.get("sink_error")
    )
    return 0 if ok else 1


def _history_summary(
    points: list[ScrapePoint], payload: dict
) -> list[str]:
    """Human-readable windowed queries over fetched history points."""
    lines = []
    retained = payload.get("retained", len(points))
    interval = payload.get("interval_s")
    note = " (truncated to the response cap)" if payload.get("truncated") else ""
    header = f"history: {len(points)} of {retained} retained point(s)"
    if interval:
        header += f", scrape interval {interval:g}s"
    lines.append(header + note)
    if len(points) < 2:
        lines.append(
            "fewer than two points — no windowed queries yet; latest scrape:"
        )
        if points:
            lines.append(points[-1].text.rstrip("\n"))
        return lines
    first, last = points[0], points[-1]
    span = last.unix_s - first.unix_s
    lines.append(f"window: {span:g}s across {len(points)} scrapes")
    types = parse_exposition_types(last.text)
    histograms = sorted(n for n, kind in types.items() if kind == "histogram")

    def scalar_map(point: ScrapePoint) -> dict:
        out: dict = {}
        for sample in point.samples:
            if any(key == "le" for key, _ in sample.labels):
                continue
            key = (sample.name, sample.labels)
            out[key] = out.get(key, 0.0) + sample.value
        return out

    def is_histogram_series(name: str) -> bool:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in histograms:
                return True
        return False

    start, end = scalar_map(first), scalar_map(last)
    counter_lines, gauge_lines = [], []
    for name, labels in sorted(end):
        if is_histogram_series(name):
            continue
        label_text = (
            "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"
            if labels else ""
        )
        value = end[(name, labels)]
        kind = types.get(name)
        if kind == "counter":
            increase = value - start.get((name, labels), 0.0)
            if increase < 0:
                counter_lines.append(
                    f"  {name}{label_text}  reset mid-window "
                    f"(latest cumulative: {value:g})"
                )
            elif increase > 0:
                counter_lines.append(
                    f"  {name}{label_text}  +{increase:g} "
                    f"({increase / span:.3g}/s)"
                )
        elif kind == "gauge":
            before = start.get((name, labels))
            delta_text = (
                "new series" if before is None else f"Δ {value - before:+g}"
            )
            gauge_lines.append(f"  {name}{label_text}  {value:g} ({delta_text})")
    lines.append("counter increases over the window:" +
                 ("" if counter_lines else " none"))
    lines.extend(counter_lines)
    if gauge_lines:
        lines.append("gauges (latest value, change over the window):")
        lines.extend(gauge_lines)
    for name in histograms:
        quantile_parts = []
        for q in (0.5, 0.9, 0.99):
            value = windowed_quantile(points, name, q)
            quantile_parts.append(
                f"p{int(q * 100)}=" + ("n/a" if value is None else f"{value:g}")
            )
        lines.append(f"histogram {name} (windowed): " + " ".join(quantile_parts))
    return lines


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.window is not None and not args.history:
        print("--window requires --history", file=sys.stderr)
        return 2
    client = _make_client(args.connect, args.token)
    if isinstance(client, int):
        return client
    try:
        if args.history:
            payload = client.metrics_history(window_s=args.window)
        else:
            text = client.metrics()
    except ServiceError as error:
        print(
            f"metrics scrape from {args.connect} failed: {error}",
            file=sys.stderr,
        )
        return 2
    if args.history:
        points = points_from_payload(payload)
        if args.out:
            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            with out.open("w", encoding="utf-8") as handle:
                for point in points:
                    handle.write(json.dumps(point.to_record()) + "\n")
            print(f"wrote {args.out} ({len(points)} point(s))")
        else:
            for line in _history_summary(points, payload):
                print(line)
        return 0
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _read_json(path: str):
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValueError(str(error)) from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None


def _write_html(args: argparse.Namespace, html: str) -> None:
    out_path = Path(args.html)
    if out_path.parent != Path("."):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(html, encoding="utf-8")
    print(f"wrote {out_path}")


def _cmd_dashboard_diff(args: argparse.Namespace) -> int:
    """``dashboard --diff`` / ``--diff-bench``: regression-highlighted pages."""
    from repro.obs.dashboard import (
        diff_bench_payloads,
        render_bench_diff,
        render_metrics_diff,
    )

    title_kwargs = {} if args.title is None else {"title": args.title}
    if args.diff is not None:
        path_a, path_b = args.diff
        try:
            text_a = Path(path_a).read_text(encoding="utf-8")
            text_b = Path(path_b).read_text(encoding="utf-8")
        except OSError as error:
            print(str(error), file=sys.stderr)
            return 2
        html, regressions = render_metrics_diff(
            text_a, text_b, label_a=path_a, label_b=path_b, **title_kwargs
        )
        _write_html(args, html)
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        if not regressions:
            print("no regressions between the two scrapes")
        return 1 if regressions else 0
    path_old, path_new = args.diff_bench
    try:
        diff = diff_bench_payloads(
            _read_json(path_old), _read_json(path_new),
            max_regression=args.max_regression, min_wall_s=args.min_wall,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    html = render_bench_diff(
        diff, label_old=path_old, label_new=path_new, **title_kwargs
    )
    _write_html(args, html)
    for row in diff.regressions:
        print(
            f"REGRESSION {row.scenario} [{row.engine}] n={row.n}: "
            f"{row.old_wall_s:.3f}s -> {row.new_wall_s:.3f}s "
            f"({row.ratio:.2f}x > {args.max_regression:g}x)"
        )
    if not diff.regressions:
        print(
            f"no gated regression beyond {args.max_regression:g}x across "
            f"{len(diff.rows)} compared entries"
        )
    return 1 if diff.regressions else 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the dashboard is presentation
    # and nothing else in the CLI should pay for it.
    if args.diff is not None and args.diff_bench is not None:
        print("--diff and --diff-bench are mutually exclusive", file=sys.stderr)
        return 2
    if args.diff is not None or args.diff_bench is not None:
        return _cmd_dashboard_diff(args)

    from repro.obs.dashboard import render_dashboard

    if args.metrics is not None and args.connect is not None:
        print("--metrics and --connect are mutually exclusive", file=sys.stderr)
        return 2
    if args.history is not None and args.connect is not None:
        print(
            "--history and --connect are mutually exclusive "
            "(--connect already fetches the live history)",
            file=sys.stderr,
        )
        return 2
    if args.window is not None and args.history is None and args.connect is None:
        print("--window requires --history or --connect", file=sys.stderr)
        return 2
    metrics_text = None
    history_points = None
    if args.history is not None:
        try:
            history_points = load_history_jsonl(args.history)
        except (OSError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        if args.window is not None:
            history_points = points_in_window(history_points, args.window)
        if not history_points:
            print(
                f"{args.history}: no history points"
                + (" within the trailing window" if args.window else ""),
                file=sys.stderr,
            )
            return 2
    if args.metrics is not None:
        try:
            metrics_text = Path(args.metrics).read_text(encoding="utf-8")
        except OSError as error:
            print(str(error), file=sys.stderr)
            return 2
    elif args.connect is not None:
        client = _make_client(args.connect, args.token)
        if isinstance(client, int):
            return client
        try:
            metrics_text = client.metrics()
        except ServiceError as error:
            print(
                f"metrics scrape from {args.connect} failed: {error}",
                file=sys.stderr,
            )
            return 2
        try:
            payload = client.metrics_history(window_s=args.window)
            history_points = points_from_payload(payload) or None
        except ServiceError:
            # Best-effort: a server without the verb still dashboards.
            history_points = None
    bundle = None
    if not args.no_report:
        records = ResultStore(args.out).records()
        if records:
            bundle = build_report(records)
        elif metrics_text is None and history_points is None:
            print(
                f"no stored results under {ResultStore(args.out).path} and no "
                "metrics source — nothing to render "
                "(pass --metrics/--connect/--history or run a suite first)",
                file=sys.stderr,
            )
            return 2
    title_kwargs = {} if args.title is None else {"title": args.title}
    html = render_dashboard(
        bundle=bundle, metrics_text=metrics_text, history=history_points,
        **title_kwargs,
    )
    _write_html(args, html)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "collect":
        return _cmd_collect(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    return _cmd_report(args)
