"""Command-line interface: ``python -m repro.experiments <run|list|report>``.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run paper-claims --jobs 4
    python -m repro.experiments run paper-claims --jobs 4      # skips all cells
    python -m repro.experiments run scaling --sizes 100,300 --seeds 1
    python -m repro.experiments report
    python -m repro.experiments report --json report.json --csv report.csv

``run`` appends to ``<out>/results.jsonl`` (default ``experiments/results``)
and is resumable: completed-and-verified cells are skipped by fingerprint,
so a crashed or interrupted sweep continues where it stopped.  ``report``
rebuilds the scaling tables and log-power fits from the store alone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.report import _format_n, build_report
from repro.experiments.runner import SweepRunner, default_jobs
from repro.experiments.spec import ALGORITHMS, GENERATORS, SUITES, get_suite
from repro.experiments.store import CellResult, ResultStore

__all__ = ["main", "build_parser"]

DEFAULT_OUT = "experiments/results"


def _int_list(text: str) -> tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.replace(",", " ").split())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected integers, got {text!r}") from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="declarative experiment sweeps over the fast LOCAL engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a suite's pending cells")
    run.add_argument("suite", help=f"suite name (one of: {', '.join(sorted(SUITES))})")
    run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: min(cpu count, 8))",
    )
    run.add_argument(
        "--sizes", type=_int_list, default=None,
        help="override the size sweep of measured scenarios, e.g. --sizes 100,300",
    )
    run.add_argument(
        "--seeds", type=_int_list, default=None,
        help="override the seed list of measured scenarios, e.g. --seeds 1,2,3",
    )
    run.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"result-store directory (default: {DEFAULT_OUT})",
    )
    run.add_argument(
        "--smoke", action="store_true",
        help="CI-size sweep: smoke sizes, first seed only (analytic cells unchanged)",
    )
    run.add_argument("--quiet", action="store_true", help="no per-cell progress lines")

    sub.add_parser("list", help="list suites, generators and algorithms")

    report = sub.add_parser(
        "report", help="rebuild scaling tables and shape fits from stored results"
    )
    report.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"result-store directory to read (default: {DEFAULT_OUT})",
    )
    report.add_argument(
        "--suite", default=None,
        help="only report records of this suite (default: all records)",
    )
    report.add_argument("--json", default=None, help="also write the tables as JSON")
    report.add_argument("--csv", default=None, help="also write the scaling table as CSV")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        suite = get_suite(args.suite)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    store = ResultStore(args.out)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    runner = SweepRunner(
        suite, store, jobs=jobs, smoke=args.smoke, sizes=args.sizes, seeds=args.seeds
    )

    def progress(result: CellResult) -> None:
        status = "ok" if result.verified else "VERIFY-FAILED"
        rounds = (
            f"{result.rounds:.1f}" if isinstance(result.rounds, float) else result.rounds
        )
        print(
            f"  [{result.fingerprint}] {result.scenario} n={result.n} "
            f"seed={result.seed} rounds={rounds} "
            f"wall={result.wall_clock_s:.3f}s {status}"
        )

    print(f"suite {suite.name!r}: {suite.description}")
    report = runner.run(progress=None if args.quiet else progress)
    print(
        f"cells: {report.total_cells} total, {report.skipped} already stored, "
        f"{report.executed} executed, {len(report.failures)} failed, "
        f"{report.unverified} unverified  "
        f"({report.wall_clock_s:.1f}s, jobs={jobs})"
    )
    print(f"store: {store.path}")
    for failure in report.failures:
        print(
            f"FAILED cell {failure.cell.scenario} n={failure.cell.n} "
            f"seed={failure.cell.seed}: {failure.error}",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_list() -> int:
    print("suites:")
    for name in sorted(SUITES):
        suite = SUITES[name]
        print(f"  {name}: {suite.description}")
        for scenario in suite.scenarios:
            sizes = ", ".join(_format_n(n) for n in scenario.sizes)
            print(
                f"    {scenario.name}  [{scenario.generator} × {scenario.algorithm}]"
                f"  sizes: {sizes}  seeds: {len(scenario.seeds)}"
            )
    print("\ngenerator families:")
    for name in sorted(GENERATORS):
        print(f"  {name}: {GENERATORS[name].description}")
    print("\nalgorithm families:")
    for name in sorted(ALGORITHMS):
        family = ALGORITHMS[name]
        print(f"  {name} ({family.kind}): {family.description}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.out)
    records = store.records()
    if args.suite is not None:
        try:
            suite = get_suite(args.suite)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        # Cells are deduplicated across suites by fingerprint, so a record
        # may carry the name of whichever suite ran it first; match the
        # requested suite's cell fingerprints (full and smoke sweeps) too,
        # not just the label.
        fingerprints = {cell.fingerprint for cell in suite.cells()}
        fingerprints.update(cell.fingerprint for cell in suite.cells(smoke=True))
        records = [
            record for record in records
            if record["suite"] == args.suite or record["fingerprint"] in fingerprints
        ]
    if not records:
        print(f"no stored results under {store.path}", file=sys.stderr)
        return 2
    bundle = build_report(records)
    print(bundle.render())
    if args.json:
        tables = [bundle.scaling, bundle.fits] + bundle.scenario_tables
        payload = "[" + ",\n".join(table.to_json() for table in tables) + "]\n"
        Path(args.json).write_text(payload, encoding="utf-8")
        print(f"wrote {args.json}")
    if args.csv:
        Path(args.csv).write_text(bundle.scaling.to_csv(), encoding="utf-8")
        print(f"wrote {args.csv}")
    return 0 if bundle.all_verified else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    return _cmd_report(args)
