"""The parallel sweep runner: fan cells out over a process pool.

:func:`run_cell` is the worker entry point: it resolves the cell's
generator and algorithm from the registries, builds the instance, runs the
computation under a :class:`~repro.local.MessageMeter` and returns a
:class:`~repro.experiments.store.CellResult`.  It deliberately takes only
plain data (the suite name and a :class:`~repro.experiments.spec.Cell`) so
the payload shipped to worker processes stays tiny.

:class:`SweepRunner` filters a suite's cells against the store's completed
fingerprints, executes the remainder (serially for ``jobs=1``, over a
``ProcessPoolExecutor`` otherwise) and appends each result to the store
the moment it completes — a crashed sweep resumes exactly where it died.
Failed cells (exceptions) are *not* stored, so the next run retries them.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.experiments.shard import ShardSpec, shard_cells

from repro.local import EnginePolicy, MessageMeter, numpy_available
from repro.experiments.spec import ALGORITHMS, GENERATORS, Cell, Suite
from repro.experiments.store import CellResult, ResultStore
from repro.obs import PhaseTimer, span

__all__ = [
    "run_cell",
    "make_recorder",
    "CellFailure",
    "SweepReport",
    "SweepRunner",
    "default_jobs",
]


def default_jobs() -> int:
    """A conservative default worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _effective_engine_mode(family_engine: str, override: str | None) -> str:
    """The engine mode a cell runs under.

    An explicit CLI/daemon ``override`` ("interpreted" / "vectorized")
    beats the family's declared preference; otherwise the family decides.
    A family-declared "vectorized" degrades to "auto" when numpy is
    missing — the capability flag is a preference, only an explicit
    override is a hard requirement.
    """
    if override in ("interpreted", "vectorized"):
        return override
    if family_engine == "vectorized" and not numpy_available():
        return "auto"
    return family_engine


def run_cell(suite_name: str, cell: Cell, engine: str | None = None) -> CellResult:
    """Execute one sweep cell and return its structured result.

    Top-level and argument-picklable by design: this is the function the
    process pool ships to workers.  ``engine`` is the sweep-level
    ``--engine`` override, resolved here into one ambient
    :class:`~repro.local.EnginePolicy` per cell; the engine and array
    backend that actually served the cell are recorded in
    ``CellResult.engine`` (e.g. ``"vectorized[numpy]"``) and the
    per-kernel round account in ``CellResult.engine_rounds``.

    The cell runs under an ambient :class:`~repro.obs.PhaseTimer`: the
    instance build is the ``generate`` phase, the algorithm callable is
    ``run``, and deeper layers add their own sub-spans (``verify`` from
    the suite run functions, ``simulate`` from the engines — both nested
    inside ``run``'s wall clock).  The breakdown lands on
    ``CellResult.timings`` as nonsemantic telemetry.
    """
    generator = GENERATORS[cell.generator]
    algorithm = ALGORITHMS[cell.algorithm]
    mode = _effective_engine_mode(algorithm.engine, engine)

    start = time.perf_counter()
    with PhaseTimer() as timer:
        graph = None
        if generator.build is not None:
            with span("generate"):
                graph = generator.build(cell.n, cell.seed)
        with MessageMeter() as meter, EnginePolicy(mode) as policy, span("run"):
            fields = algorithm.run(graph, generator, cell.n)
    wall_clock = time.perf_counter() - start

    messages = meter.messages if meter.runs else None
    return CellResult(
        fingerprint=cell.fingerprint,
        suite=suite_name,
        scenario=cell.scenario,
        generator=cell.generator,
        algorithm=cell.algorithm,
        n=cell.n,
        seed=cell.seed,
        rounds=fields["rounds"],
        charged_rounds=fields.get("charged_rounds"),
        messages=messages,
        wall_clock_s=wall_clock,
        verified=bool(fields["verified"]),
        k=fields.get("k"),
        extras=dict(fields.get("extras", {})),
        engine=policy.engine_used,
        engine_rounds=dict(policy.dispatches) or None,
        timings=timer.timings() or None,
    )


@dataclass
class CellFailure:
    """A cell whose worker raised; kept out of the store so it is retried."""

    cell: Cell
    error: str


@dataclass
class SweepReport:
    """Summary of one :meth:`SweepRunner.run` invocation."""

    suite: str
    total_cells: int
    skipped: int
    executed: int
    unverified: int
    failures: list[CellFailure] = field(default_factory=list)
    wall_clock_s: float = 0.0
    #: First failure of a result sink (e.g. the ``--collector`` stream).
    #: The sweep itself keeps running on the local store — the records are
    #: safe and mergeable — but the run is not ``ok``: the caller asked
    #: for streaming and part of the stream was lost.
    sink_error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures and self.unverified == 0 and self.sink_error is None


def make_recorder(
    store: ResultStore,
    sinks: Sequence[Callable[[CellResult], None]],
    report: SweepReport,
    progress: Callable[[CellResult], None] | None = None,
) -> Callable[[CellResult], None]:
    """The per-result fan-out shared by every sweep execution path.

    Appends the result to the store, ticks the report's counters, feeds
    the sinks and then the progress hook.  A sink (e.g. the
    ``--collector`` stream) that fails must not fail the sweep: the
    result is already durable in the local store, so the first error is
    recorded once in ``report.sink_error`` and the sinks disabled —
    resume/merge recovers the lost stream.
    """
    live_sinks = list(sinks)

    def record(result: CellResult) -> None:
        store.append(result)
        report.executed += 1
        if not result.verified:
            report.unverified += 1
        if live_sinks:
            try:
                for sink in live_sinks:
                    sink(result)
            except Exception as error:  # noqa: BLE001 - surfaced in report
                report.sink_error = repr(error)
                live_sinks.clear()
        if progress is not None:
            progress(result)

    return record


class SweepRunner:
    """Run a suite's pending cells and append results to a store."""

    def __init__(
        self,
        suite: Suite,
        store: ResultStore,
        jobs: int = 1,
        smoke: bool = False,
        sizes: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        shard: ShardSpec | None = None,
        sinks: Sequence[Callable[[CellResult], None]] = (),
        engine: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.suite = suite
        self.store = store
        self.jobs = jobs
        self.smoke = smoke
        self.sizes = sizes
        self.seeds = seeds
        self.shard = shard
        self.sinks = tuple(sinks)
        self.engine = engine

    def pending_cells(self) -> tuple[list[Cell], int]:
        """The cells still to run, and how many the store already covers.

        With a shard spec, only the cells owned by this shard count: the
        disjoint fingerprint partition means ``k`` workers running the same
        suite as shards ``0/k .. k-1/k`` never duplicate work.
        """
        cells = self.suite.cells(smoke=self.smoke, sizes=self.sizes, seeds=self.seeds)
        cells = shard_cells(cells, self.shard)
        completed = self.store.completed_fingerprints()
        pending = [cell for cell in cells if cell.fingerprint not in completed]
        return pending, len(cells) - len(pending)

    def run(self, progress: Callable[[CellResult], None] | None = None) -> SweepReport:
        """Execute every pending cell; append each result as it completes."""
        start = time.perf_counter()
        pending, skipped = self.pending_cells()
        report = SweepReport(
            suite=self.suite.name,
            total_cells=len(pending) + skipped,
            skipped=skipped,
            executed=0,
            unverified=0,
        )

        record = make_recorder(self.store, self.sinks, report, progress)

        if self.jobs == 1 or len(pending) <= 1:
            for cell in pending:
                try:
                    record(run_cell(self.suite.name, cell, engine=self.engine))
                except Exception as error:  # noqa: BLE001 - collected, reported
                    report.failures.append(CellFailure(cell, repr(error)))
        else:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(run_cell, self.suite.name, cell, self.engine): cell
                    for cell in pending
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        cell = futures[future]
                        try:
                            record(future.result())
                        except Exception as error:  # noqa: BLE001
                            report.failures.append(CellFailure(cell, repr(error)))

        report.wall_clock_s = time.perf_counter() - start
        return report
