"""Experiment orchestration: declarative sweeps, parallel runner, JSONL store.

The subsystem that turns the fast LOCAL engine into a traffic-serving
workhorse:

* :mod:`repro.experiments.spec` — declarative :class:`ScenarioSpec`
  (generator family × algorithm family × sizes × seeds), the generator /
  algorithm registries and the built-in suites (``paper-claims``,
  ``scaling``, ``stress``, ``workloads``, ``lower-bound``, ``charged``,
  ``orientation-lists``);
* :mod:`repro.experiments.runner` — :class:`SweepRunner` fans pending
  cells out over a ``ProcessPoolExecutor``; each worker generates the
  instance, runs the engine under a message meter, verifies the output and
  returns a :class:`CellResult`;
* :mod:`repro.experiments.store` — the append-only, fingerprint-keyed
  JSONL :class:`ResultStore` that makes sweeps resumable;
* :mod:`repro.experiments.report` — rebuilds the paper's scaling tables
  (with measured-vs-charged columns for cells run under
  ``OracleCostModel`` charging) and ``(log₂ n)^β`` shape fits — on either
  the measured or the charged series — from the store alone;
* :mod:`repro.experiments.cli` — the ``python -m repro.experiments``
  command line (``run`` / ``list`` / ``report``).
"""

from repro.experiments.spec import (
    ALGORITHMS,
    GENERATORS,
    SUITES,
    AlgorithmFamily,
    Cell,
    GeneratorFamily,
    ScenarioSpec,
    Suite,
    get_suite,
    register_algorithm,
    register_generator,
    register_suite,
)
from repro.experiments.store import (
    CellResult,
    DuplicateResolution,
    MergeConflict,
    MergeReport,
    ResultStore,
    cell_fingerprint,
    merge_result_files,
    resolve_duplicate,
    semantic_payload,
)
from repro.experiments.runner import SweepReport, SweepRunner, default_jobs, run_cell
from repro.experiments.report import ReportBundle, build_report
from repro.experiments.shard import ShardSpec, partition, shard_cells

__all__ = [
    "ALGORITHMS",
    "GENERATORS",
    "SUITES",
    "AlgorithmFamily",
    "Cell",
    "GeneratorFamily",
    "ScenarioSpec",
    "Suite",
    "get_suite",
    "register_algorithm",
    "register_generator",
    "register_suite",
    "CellResult",
    "DuplicateResolution",
    "MergeConflict",
    "MergeReport",
    "ResultStore",
    "cell_fingerprint",
    "merge_result_files",
    "resolve_duplicate",
    "semantic_payload",
    "SweepReport",
    "SweepRunner",
    "default_jobs",
    "run_cell",
    "ReportBundle",
    "build_report",
    "ShardSpec",
    "partition",
    "shard_cells",
]
