"""Turn stored sweep results into the paper's scaling tables and fits.

Everything here consumes only the JSONL records of a
:class:`~repro.experiments.store.ResultStore` — the report is reproducible
from disk alone, with no re-simulation.  Aggregation averages over seeds
per (scenario, n); the shape fits feed the aggregated round counts through
:func:`repro.analysis.curves.fit_power_of_log`, which is how the Theorem 3
claim (``rounds ≈ c · (log₂ n)^β`` with ``β < 1`` for the transformed edge
colouring) is checked from the analytic-prediction cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis import MeasurementTable, fit_power_of_log
from repro.experiments.spec import ANALYTIC_GENERATOR

__all__ = [
    "ScenarioPoint",
    "ScenarioSummary",
    "ReportBundle",
    "aggregate",
    "scenario_table",
    "scaling_table",
    "fit_summaries",
    "build_report",
    "render_json_tables",
    "report_payload",
]

#: Name of the analytic algorithm whose fit carries the Theorem 3 claim.
THEOREM3_ALGORITHM = "predicted-edge-coloring-log12"


#: Suffix appended to a scenario's name to label its charged series in
#: the scaling table and the shape fits.
CHARGED_SUFFIX = " [charged]"


@dataclass
class ScenarioPoint:
    """One aggregated (scenario, n) data point, averaged over seeds."""

    n: int
    cells: int
    rounds: float
    messages: float | None
    wall_clock_s: float
    verified: bool
    #: Mean analytic account under ``OracleCostModel`` charging; ``None``
    #: for cells that ran without a cost model.
    charged_rounds: float | None = None


@dataclass
class ScenarioSummary:
    """All aggregated points of one scenario, sorted by ``n``."""

    scenario: str
    generator: str
    algorithm: str
    points: list[ScenarioPoint] = field(default_factory=list)
    #: Execution provenance: every engine backend recorded by the
    #: scenario's cells ("interpreted" / "vectorized" / "mixed").  Empty
    #: for stores written before engines were recorded — the field is
    #: schema-tolerant, like ``charged_rounds``.
    engines: set = field(default_factory=set)

    @property
    def is_analytic(self) -> bool:
        return self.generator == ANALYTIC_GENERATOR

    @property
    def verified(self) -> bool:
        return all(point.verified for point in self.points)

    @property
    def has_charged(self) -> bool:
        """Whether any point carries the analytic charged-rounds account."""
        return any(point.charged_rounds is not None for point in self.points)


def aggregate(records: Iterable[dict[str, Any]]) -> list[ScenarioSummary]:
    """Group records by scenario and average over seeds per size.

    Records are deduplicated by fingerprint first, last occurrence winning:
    a cell that failed verification and was re-run on resume has two
    records in the append-only store, and only the re-run must count.
    """
    by_fingerprint: dict[str, dict[str, Any]] = {}
    for record in records:
        by_fingerprint[record["fingerprint"]] = record
    grouped: dict[tuple[str, str, str], dict[int, list[dict]]] = {}
    for record in by_fingerprint.values():
        key = (record["scenario"], record["generator"], record["algorithm"])
        grouped.setdefault(key, {}).setdefault(record["n"], []).append(record)

    summaries = []
    for (scenario, generator, algorithm), by_n in sorted(grouped.items()):
        summary = ScenarioSummary(scenario, generator, algorithm)
        for n in sorted(by_n):
            cells = by_n[n]
            summary.engines.update(
                c["engine"] for c in cells if c.get("engine") is not None
            )
            message_counts = [c["messages"] for c in cells if c.get("messages") is not None]
            charged = [
                c["charged_rounds"]
                for c in cells
                if c.get("charged_rounds") is not None
            ]
            summary.points.append(ScenarioPoint(
                n=n,
                cells=len(cells),
                rounds=sum(c["rounds"] for c in cells) / len(cells),
                messages=(
                    sum(message_counts) / len(message_counts)
                    if message_counts
                    else None
                ),
                wall_clock_s=sum(c.get("wall_clock_s", 0.0) for c in cells) / len(cells),
                verified=all(c["verified"] for c in cells),
                charged_rounds=sum(charged) / len(charged) if charged else None,
            ))
        summaries.append(summary)
    return summaries


def _format_n(n: int) -> str:
    """Big analytic sizes print as powers of two, measured sizes verbatim."""
    if n >= 2**53 and (n & (n - 1)) == 0:
        return f"2^{n.bit_length() - 1}"
    return str(n)


def scenario_table(summary: ScenarioSummary) -> MeasurementTable:
    """The per-scenario detail table (one row per size).

    The title carries the engine provenance when the store recorded it,
    so a report alone says which backend produced each series.
    """
    provenance = ""
    if summary.engines:
        provenance = f"  (engine: {'/'.join(sorted(summary.engines))})"
    table = MeasurementTable(
        f"{summary.scenario}  [{summary.generator} × {summary.algorithm}]"
        + provenance,
        ["n", "cells", "rounds (mean)", "charged (mean)", "messages (mean)",
         "wall s (mean)", "verified"],
    )
    for point in summary.points:
        table.add_row(
            _format_n(point.n),
            point.cells,
            round(point.rounds, 2),
            round(point.charged_rounds, 2) if point.charged_rounds is not None else "-",
            round(point.messages, 1) if point.messages is not None else "-",
            round(point.wall_clock_s, 4),
            "ok" if point.verified else "FAILED",
        )
    return table


def scaling_table(summaries: list[ScenarioSummary]) -> MeasurementTable:
    """The paper-style scaling table: sizes × measured scenarios, mean rounds.

    Scenarios that ran under ``OracleCostModel`` charging get a second
    ``<scenario> [charged]`` column, so the measured engine and the
    analytic account sit side by side per size.
    """
    measured = [summary for summary in summaries if not summary.is_analytic]
    sizes = sorted({point.n for summary in measured for point in summary.points})
    columns: list[str] = ["n"]
    for summary in measured:
        columns.append(summary.scenario)
        if summary.has_charged:
            columns.append(summary.scenario + CHARGED_SUFFIX)
    table = MeasurementTable(
        "Measured (and charged) rounds by instance size (mean over seeds)",
        columns,
    )
    for n in sizes:
        row: list[Any] = [n]
        for summary in measured:
            match = next((p for p in summary.points if p.n == n), None)
            row.append(round(match.rounds, 1) if match is not None else "-")
            if summary.has_charged:
                row.append(
                    round(match.charged_rounds, 1)
                    if match is not None and match.charged_rounds is not None
                    else "-"
                )
        table.add_row(*row)
    return table


def fit_summaries(
    summaries: list[ScenarioSummary],
) -> tuple[MeasurementTable, dict[str, float]]:
    """Fit ``rounds ≈ c · (log₂ n)^β`` per scenario with ≥ 2 usable sizes.

    A scenario carrying the charged series is fitted twice: once on the
    measured rounds and once on ``charged_rounds`` (labelled
    ``<scenario> [charged]``), so the Theorem 3 shape check can run on
    either account.
    """
    table = MeasurementTable(
        "Log-power fits: rounds ≈ c · (log₂ n)^β",
        ["scenario", "points", "beta", "c", "shape"],
    )
    betas: dict[str, float] = {}
    for summary in summaries:
        series: list[tuple[str, list[int], list[float]]] = [(
            summary.scenario,
            [point.n for point in summary.points],
            [point.rounds for point in summary.points],
        )]
        if summary.has_charged:
            charged = [
                (point.n, point.charged_rounds)
                for point in summary.points
                if point.charged_rounds is not None
            ]
            series.append((
                summary.scenario + CHARGED_SUFFIX,
                [n for n, _ in charged],
                [value for _, value in charged],
            ))
        for label, ns, values in series:
            if len(set(ns)) < 2:
                continue
            try:
                beta, c = fit_power_of_log(ns, values)
            except ValueError:
                # Fewer than two points survive the n > 2 / value > 0 filter
                # (e.g. a --sizes 1,2 sweep); an unfittable scenario should
                # not take down the rest of the report.
                continue
            betas[label] = beta
            shape = "strongly sublogarithmic (beta < 1)" if beta < 1 else "beta >= 1"
            table.add_row(label, len(ns), round(beta, 3), round(c, 3), shape)
    return table, betas


@dataclass
class ReportBundle:
    """Everything the ``report`` subcommand prints and exports."""

    summaries: list[ScenarioSummary]
    scenario_tables: list[MeasurementTable]
    scaling: MeasurementTable
    fits: MeasurementTable
    betas: dict[str, float]
    theorem3_beta: float | None
    all_verified: bool

    @property
    def has_measured(self) -> bool:
        """Whether any stored scenario is a measured (non-analytic) one."""
        return any(not summary.is_analytic for summary in self.summaries)

    def render(self) -> str:
        parts = []
        if self.has_measured:
            parts += [self.scaling.render(), ""]
        else:
            parts += [
                "no measured cells stored — nothing to report in the scaling "
                "table (analytic cells only)",
                "",
            ]
        parts += [self.fits.render(), ""]
        for table in self.scenario_tables:
            parts += [table.render(), ""]
        if self.theorem3_beta is not None:
            verdict = "<" if self.theorem3_beta < 1 else ">="
            parts.append(
                "Theorem 3 shape (transformed edge colouring, analytic cells): "
                f"beta = {self.theorem3_beta:.3f} {verdict} 1"
            )
        parts.append(
            "all stored cells verified: " + ("yes" if self.all_verified else "NO")
        )
        return "\n".join(parts)


def render_json_tables(bundle: ReportBundle) -> str:
    """The exact JSON payload ``report --json`` writes for ``bundle``.

    One canonical serialisation shared by the CLI and the daemon/collector
    ``report`` verb, so a bundle fetched over the wire is byte-identical
    to one written from the same store locally — the equivalence the
    streamed-collector path is pinned against.
    """
    tables = [bundle.scaling, bundle.fits] + bundle.scenario_tables
    return "[" + ",\n".join(table.to_json() for table in tables) + "]\n"


def report_payload(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """The wire form of a report bundle (the ``report`` verb's response body).

    Raises ``ValueError`` (from :func:`build_report`) when ``records`` is
    empty — an empty store reports as an error, not an empty bundle.
    """
    bundle = build_report(records)
    return {
        "render": bundle.render(),
        "json": render_json_tables(bundle),
        "csv": bundle.scaling.to_csv(),
        "betas": bundle.betas,
        "theorem3_beta": bundle.theorem3_beta,
        "all_verified": bundle.all_verified,
    }


def build_report(records: Iterable[dict[str, Any]]) -> ReportBundle:
    """Aggregate stored records into tables, fits and the Theorem 3 verdict."""
    summaries = aggregate(records)
    if not summaries:
        raise ValueError("no stored results to report on (run a suite first)")
    fits, betas = fit_summaries(summaries)
    theorem3_beta = None
    for summary in summaries:
        if summary.algorithm == THEOREM3_ALGORITHM and summary.scenario in betas:
            theorem3_beta = betas[summary.scenario]
            break
    return ReportBundle(
        summaries=summaries,
        scenario_tables=[scenario_table(summary) for summary in summaries],
        scaling=scaling_table(summaries),
        fits=fits,
        betas=betas,
        theorem3_beta=theorem3_beta,
        all_verified=all(summary.verified for summary in summaries),
    )
