"""The resumable result store: append-only JSONL keyed by cell fingerprints.

Every sweep cell — one (scenario, n, seed) combination — has a
deterministic :func:`cell_fingerprint` derived from the quantities that
define the computation (generator, algorithm, n, seed).  The store appends
one JSON record per completed cell and flushes after every write, so

* a crashed sweep loses at most the cell that was being written,
* re-running a suite skips every fingerprint already on disk, and
* two suites sharing a cell (same generator/algorithm/n/seed) share the
  completed record.

A truncated final line (the signature of a crash mid-write) is tolerated
and simply re-run; corruption anywhere else raises, because silently
dropping completed results would make resumed sweeps lie.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "DEFAULT_OUT",
    "cell_fingerprint",
    "CellResult",
    "ResultStore",
    "DuplicateResolution",
    "MergeConflict",
    "MergeReport",
    "merge_result_files",
    "resolve_duplicate",
    "semantic_payload",
]

#: Default result-store directory, shared by the CLI and the daemon so
#: ``run``, ``merge``, ``report`` and daemon-submitted jobs agree on
#: where results live.
DEFAULT_OUT = "experiments/results"


def cell_fingerprint(generator: str, algorithm: str, n: int, seed: int) -> str:
    """A deterministic 16-hex-digit fingerprint of one sweep cell.

    The fingerprint covers exactly the inputs that determine the cell's
    computation; the suite and scenario names are cosmetic groupings and
    deliberately excluded, so identical cells dedupe across suites.
    """
    payload = json.dumps(
        {"generator": generator, "algorithm": algorithm, "n": int(n), "seed": int(seed)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CellResult:
    """The structured outcome of one executed sweep cell."""

    fingerprint: str
    suite: str
    scenario: str
    generator: str
    algorithm: str
    n: int
    seed: int
    rounds: float
    messages: int | None
    wall_clock_s: float
    verified: bool
    k: int | None = None
    #: Analytic round account of the cell under ``OracleCostModel``
    #: charging (the Theorem 3 black-box charge); ``None`` for cells that
    #: ran without a cost model, including every pre-charging record.
    charged_rounds: float | None = None
    extras: dict[str, Any] = field(default_factory=dict)
    #: Which engine(s) actually served the cell —
    #: "vectorized[<backend>]" (e.g. "vectorized[numpy]"),
    #: "interpreted", "mixed", or ``None`` for cells that ran no engine
    #: at all (analytic cells) and every pre-engine record.  Provenance
    #: only: results are bit-identical across engines, so the field is
    #: nonsemantic for merge conflicts.
    engine: str | None = None
    #: Rounds simulated per engine dispatch, keyed
    #: ``"engine/kernel/backend"`` (backend is ``"-"`` for interpreted
    #: runs) — the per-cell account behind the daemon's
    #: ``engine_rounds_total`` counter.  Telemetry, nonsemantic for
    #: merge conflicts; ``None`` for analytic cells and older records.
    engine_rounds: dict[str, int] | None = None
    #: Per-phase wall-clock breakdown (``{"generate": s, "run": s,
    #: "verify": s, "simulate": s}``) recorded by the ambient
    #: :class:`repro.obs.PhaseTimer` around the cell.  Pure telemetry:
    #: nondeterministic timing like ``wall_clock_s``, hence nonsemantic
    #: for merge conflicts; ``None`` for analytic cells and every
    #: pre-observability record.
    timings: dict[str, float] | None = None

    def to_record(self) -> dict[str, Any]:
        """The JSON-serialisable record written to the store."""
        return {
            "fingerprint": self.fingerprint,
            "suite": self.suite,
            "scenario": self.scenario,
            "generator": self.generator,
            "algorithm": self.algorithm,
            "n": self.n,
            "seed": self.seed,
            "rounds": self.rounds,
            "charged_rounds": self.charged_rounds,
            "messages": self.messages,
            "wall_clock_s": round(self.wall_clock_s, 6),
            "verified": self.verified,
            "k": self.k,
            "extras": self.extras,
            "engine": self.engine,
            "engine_rounds": self.engine_rounds,
            "timings": (
                {phase: round(seconds, 6) for phase, seconds in self.timings.items()}
                if self.timings is not None
                else None
            ),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "CellResult":
        return cls(
            fingerprint=record["fingerprint"],
            suite=record["suite"],
            scenario=record["scenario"],
            generator=record["generator"],
            algorithm=record["algorithm"],
            n=record["n"],
            seed=record["seed"],
            rounds=record["rounds"],
            charged_rounds=record.get("charged_rounds"),
            messages=record.get("messages"),
            wall_clock_s=record.get("wall_clock_s", 0.0),
            verified=bool(record["verified"]),
            k=record.get("k"),
            extras=dict(record.get("extras", {})),
            engine=record.get("engine"),
            engine_rounds=record.get("engine_rounds"),
            timings=record.get("timings"),
        )


class ResultStore:
    """An append-only JSONL file of :class:`CellResult` records."""

    def __init__(self, directory: str | Path, filename: str = "results.jsonl") -> None:
        self.directory = Path(directory)
        self.path = self.directory / filename
        self._tail_repaired = False

    @classmethod
    def from_path(cls, path: str | Path) -> "ResultStore":
        """A store over an explicit JSONL file rather than a directory."""
        path = Path(path)
        return cls(path.parent, path.name)

    def append(self, result: CellResult) -> None:
        """Append one record and flush, so a crash loses at most this cell."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self._tail_repaired:
            # A truncated tail can only predate this (single-writer)
            # instance's first append; later appends need not re-scan.
            self._repair_truncated_tail()
            self._tail_repaired = True
        line = json.dumps(result.to_record(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _repair_truncated_tail(self) -> None:
        """Drop a partial final record left by a crash mid-append.

        Without this, appending after a crash would concatenate the new
        record onto the truncated fragment and corrupt both lines.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with open(self.path, "r+b") as handle:
            handle.seek(-1, 2)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            keep = data.rfind(b"\n") + 1  # 0 when no complete line exists
            handle.truncate(keep)

    def records(self) -> list[dict[str, Any]]:
        """All parseable records, tolerating a truncated final line."""
        if not self.path.exists():
            return []
        records: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # A crash mid-append leaves a truncated last line; the
                    # cell is simply treated as not completed and re-run.
                    continue
                raise ValueError(
                    f"{self.path}: corrupt record on line {index + 1} "
                    f"(only the final line may be truncated): {stripped[:80]!r}"
                )
        return records

    def results(self) -> list[CellResult]:
        return [CellResult.from_record(record) for record in self.records()]

    def completed_fingerprints(self) -> set[str]:
        """Fingerprints of every completed-and-verified cell on disk.

        Unverified records do *not* count as completed: a cell whose
        verification failed is re-run on resume rather than silently kept.
        """
        return {
            record["fingerprint"]
            for record in self.records()
            if record.get("verified")
        }

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.results())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(path={str(self.path)!r}, records={len(self)})"


# ----------------------------------------------------------------------
# merging sharded stores
# ----------------------------------------------------------------------

#: Record fields ignored when deciding whether two records for the same
#: fingerprint *conflict*.  Wall clock is nondeterministic timing, the
#: suite/scenario labels are cosmetic groupings (the same cell may be run
#: under different suites), the engine and per-dispatch round account are
#: execution provenance over bit-identical engines, and the per-phase
#: timings are wall-clock telemetry; none makes two records different
#: results.
NONSEMANTIC_FIELDS = (
    "wall_clock_s",
    "suite",
    "scenario",
    "engine",
    "engine_rounds",
    "timings",
)


def semantic_payload(record: dict[str, Any]) -> dict[str, Any]:
    """The fields of a record that make it a *result* (for conflicts)."""
    payload = {k: v for k, v in record.items() if k not in NONSEMANTIC_FIELDS}
    # Records written before the charged-cost layer carry no
    # charged_rounds key at all; records written after carry an explicit
    # null for uncharged cells.  Same result — key presence alone must
    # not read as a conflict between old and new stores.
    payload.setdefault("charged_rounds", None)
    return payload


@dataclass(frozen=True)
class DuplicateResolution:
    """The outcome of :func:`resolve_duplicate` on one fingerprint collision."""

    keep_newcomer: bool
    conflict: bool


def resolve_duplicate(
    previous: dict[str, Any], record: dict[str, Any]
) -> DuplicateResolution:
    """The store's one duplicate policy: rank by verification, then recency.

    A **verified** record always beats an unverified one — an unverified
    record is "not completed" per the store's resume semantics, so its
    re-run legitimately supersedes it and it must never displace a
    completed result, whatever order the two arrive in.  Between records
    of equal verification status the *newcomer* wins (last-write-wins),
    and differing semantic payloads at equal rank are flagged as a
    conflict — for a deterministic cell that means diverging code or
    environments produced the inputs.

    Shared verbatim by :func:`merge_result_files` (file-based shard
    merging) and the streaming collector, so the two fan-in paths cannot
    drift apart.
    """
    previous_ok = bool(previous.get("verified"))
    record_ok = bool(record.get("verified"))
    if previous_ok and not record_ok:
        return DuplicateResolution(keep_newcomer=False, conflict=False)
    conflict = (
        previous_ok == record_ok
        and semantic_payload(previous) != semantic_payload(record)
    )
    return DuplicateResolution(keep_newcomer=True, conflict=conflict)


@dataclass
class MergeConflict:
    """Two inputs carried *different results* for the same fingerprint.

    Last-write-wins resolved it (``kept`` is from the later input), but a
    conflict on a deterministic cell means the inputs were produced by
    diverging code or environments — worth a report line.
    """

    fingerprint: str
    kept_source: str
    dropped_source: str
    kept: dict[str, Any]
    dropped: dict[str, Any]

    def describe(self) -> str:
        changed = sorted(
            key
            for key in set(self.kept) | set(self.dropped)
            if key not in NONSEMANTIC_FIELDS
            and self.kept.get(key) != self.dropped.get(key)
        )
        return (
            f"[{self.fingerprint}] kept {self.kept_source}, "
            f"dropped {self.dropped_source} (differing fields: {', '.join(changed)})"
        )


@dataclass
class MergeReport:
    """Summary of one :func:`merge_result_files` invocation."""

    output: Path
    inputs: list[Path]
    missing: list[Path] = field(default_factory=list)
    records_read: int = 0
    merged: int = 0
    duplicates: int = 0
    conflicts: list[MergeConflict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.conflicts


def merge_result_files(
    inputs: Iterable[str | Path],
    output: str | Path,
    include_existing_output: bool = True,
) -> MergeReport:
    """Union JSONL result files by fingerprint into ``output``.

    Inputs are read in order through :class:`ResultStore`, so each file
    gets the same tolerance as a live store: a truncated final line (a
    crash mid-append) is dropped, corruption elsewhere raises.  Duplicate
    fingerprints resolve by rank, then recency: a **verified** record
    always beats an unverified one (an unverified record is "not
    completed" per the store's resume semantics — its re-run legitimately
    supersedes it, and it must never displace a completed result), and
    between records of equal verification status the *last* one wins.
    Two records of equal status that differ in semantic fields (anything
    except wall clock and the cosmetic suite/scenario labels) are
    reported as conflicts — for a deterministic cell that means the
    inputs came from diverging code or environments.

    When ``output`` already exists and ``include_existing_output`` is true
    it is treated as the *first* input, so repeated incremental merges into
    one store are safe.  Missing input files are tolerated and reported in
    ``MergeReport.missing`` — a shard that has not produced results yet
    should not abort the merge of the shards that have.

    The merged file is written atomically (temp file + rename): a crash
    mid-merge never leaves a half-written output store.
    """
    output = Path(output)
    sources: list[Path] = []
    if include_existing_output and output.exists():
        sources.append(output)
    sources.extend(Path(path) for path in inputs)

    report = MergeReport(output=output, inputs=sources)
    merged: dict[str, dict[str, Any]] = {}
    origin: dict[str, Path] = {}
    for path in sources:
        if not path.exists():
            report.missing.append(path)
            continue
        for record in ResultStore.from_path(path).records():
            report.records_read += 1
            fingerprint = record.get("fingerprint")
            if fingerprint is None:
                raise ValueError(f"{path}: record without a fingerprint field")
            previous = merged.get(fingerprint)
            if previous is not None:
                report.duplicates += 1
                resolution = resolve_duplicate(previous, record)
                if not resolution.keep_newcomer:
                    continue
                if resolution.conflict:
                    report.conflicts.append(MergeConflict(
                        fingerprint=fingerprint,
                        kept_source=str(path),
                        dropped_source=str(origin[fingerprint]),
                        kept=record,
                        dropped=previous,
                    ))
            merged[fingerprint] = record
            origin[fingerprint] = path

    report.merged = len(merged)
    if report.records_read == 0:
        # No input contributed a single record — missing shards, empty
        # files, or a store holding only a truncated crash fragment: do
        # not plant an empty store at the destination.  A later `report`
        # should see "no store yet", not a valid-looking empty file
        # masking the failed merge.
        return report
    output.parent.mkdir(parents=True, exist_ok=True)
    scratch = output.with_name(output.name + ".tmp")
    with open(scratch, "w", encoding="utf-8") as handle:
        for record in merged.values():
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
    os.replace(scratch, output)
    return report
