"""The resumable result store: append-only JSONL keyed by cell fingerprints.

Every sweep cell — one (scenario, n, seed) combination — has a
deterministic :func:`cell_fingerprint` derived from the quantities that
define the computation (generator, algorithm, n, seed).  The store appends
one JSON record per completed cell and flushes after every write, so

* a crashed sweep loses at most the cell that was being written,
* re-running a suite skips every fingerprint already on disk, and
* two suites sharing a cell (same generator/algorithm/n/seed) share the
  completed record.

A truncated final line (the signature of a crash mid-write) is tolerated
and simply re-run; corruption anywhere else raises, because silently
dropping completed results would make resumed sweeps lie.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["cell_fingerprint", "CellResult", "ResultStore"]


def cell_fingerprint(generator: str, algorithm: str, n: int, seed: int) -> str:
    """A deterministic 16-hex-digit fingerprint of one sweep cell.

    The fingerprint covers exactly the inputs that determine the cell's
    computation; the suite and scenario names are cosmetic groupings and
    deliberately excluded, so identical cells dedupe across suites.
    """
    payload = json.dumps(
        {"generator": generator, "algorithm": algorithm, "n": int(n), "seed": int(seed)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CellResult:
    """The structured outcome of one executed sweep cell."""

    fingerprint: str
    suite: str
    scenario: str
    generator: str
    algorithm: str
    n: int
    seed: int
    rounds: float
    messages: int | None
    wall_clock_s: float
    verified: bool
    k: int | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """The JSON-serialisable record written to the store."""
        return {
            "fingerprint": self.fingerprint,
            "suite": self.suite,
            "scenario": self.scenario,
            "generator": self.generator,
            "algorithm": self.algorithm,
            "n": self.n,
            "seed": self.seed,
            "rounds": self.rounds,
            "messages": self.messages,
            "wall_clock_s": round(self.wall_clock_s, 6),
            "verified": self.verified,
            "k": self.k,
            "extras": self.extras,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "CellResult":
        return cls(
            fingerprint=record["fingerprint"],
            suite=record["suite"],
            scenario=record["scenario"],
            generator=record["generator"],
            algorithm=record["algorithm"],
            n=record["n"],
            seed=record["seed"],
            rounds=record["rounds"],
            messages=record.get("messages"),
            wall_clock_s=record.get("wall_clock_s", 0.0),
            verified=bool(record["verified"]),
            k=record.get("k"),
            extras=dict(record.get("extras", {})),
        )


class ResultStore:
    """An append-only JSONL file of :class:`CellResult` records."""

    def __init__(self, directory: str | Path, filename: str = "results.jsonl") -> None:
        self.directory = Path(directory)
        self.path = self.directory / filename

    def append(self, result: CellResult) -> None:
        """Append one record and flush, so a crash loses at most this cell."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self._repair_truncated_tail()
        line = json.dumps(result.to_record(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _repair_truncated_tail(self) -> None:
        """Drop a partial final record left by a crash mid-append.

        Without this, appending after a crash would concatenate the new
        record onto the truncated fragment and corrupt both lines.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with open(self.path, "r+b") as handle:
            handle.seek(-1, 2)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            keep = data.rfind(b"\n") + 1  # 0 when no complete line exists
            handle.truncate(keep)

    def records(self) -> list[dict[str, Any]]:
        """All parseable records, tolerating a truncated final line."""
        if not self.path.exists():
            return []
        records: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # A crash mid-append leaves a truncated last line; the
                    # cell is simply treated as not completed and re-run.
                    continue
                raise ValueError(
                    f"{self.path}: corrupt record on line {index + 1} "
                    f"(only the final line may be truncated): {stripped[:80]!r}"
                )
        return records

    def results(self) -> list[CellResult]:
        return [CellResult.from_record(record) for record in self.records()]

    def completed_fingerprints(self) -> set[str]:
        """Fingerprints of every completed-and-verified cell on disk.

        Unverified records do *not* count as completed: a cell whose
        verification failed is re-run on resume rather than silently kept.
        """
        return {
            record["fingerprint"]
            for record in self.records()
            if record.get("verified")
        }

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.results())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(path={str(self.path)!r}, records={len(self)})"
