"""Deterministic shard partitioning of sweep cells.

A :class:`ShardSpec` ``i/k`` selects the cells whose fingerprint hashes to
residue ``i`` modulo ``k``.  The fingerprint is already a deterministic
function of exactly the quantities that define the cell's computation
(generator, algorithm, n, seed — see
:func:`repro.experiments.store.cell_fingerprint`), so:

* the ``k`` shards of a suite are **disjoint** and **cover** it — every
  cell belongs to exactly one shard, on every machine, in every process;
* sharding commutes with resume — a shard re-run skips its own completed
  fingerprints like any other sweep;
* merged shard stores (:func:`repro.experiments.store.merge_result_files`)
  reproduce the unsharded store record-for-record.

Nothing here imports the experiment registries, so the module is safe to
import from anywhere in the stack (CLI, runner, daemon) without cycles.
It lives in the experiments layer because the runner consumes it; the
service subsystem re-exports it as :mod:`repro.service.shard`, its shard
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

__all__ = ["ShardSpec", "shard_cells", "partition"]

CellT = TypeVar("CellT")


@dataclass(frozen=True)
class ShardSpec:
    """Shard ``index`` of ``count`` total shards (zero-based)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be at least 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"i/k"`` (e.g. ``"0/2"``, ``"3/8"``)."""
        parts = text.strip().split("/")
        if len(parts) != 2:
            raise ValueError(f"expected a shard spec of the form i/k, got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"expected a shard spec of the form i/k with integers, got {text!r}"
            ) from None
        return cls(index, count)

    def owns(self, fingerprint: str) -> bool:
        """Whether the cell with this (hex) fingerprint belongs to the shard."""
        return int(fingerprint, 16) % self.count == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def shard_cells(cells: Iterable[CellT], shard: ShardSpec | None) -> list[CellT]:
    """The sub-list of ``cells`` owned by ``shard`` (all of them for None).

    Cells must expose a ``fingerprint`` attribute
    (:class:`repro.experiments.spec.Cell` does).
    """
    if shard is None:
        return list(cells)
    return [cell for cell in cells if shard.owns(cell.fingerprint)]


def partition(cells: Sequence[CellT], count: int) -> list[list[CellT]]:
    """All ``count`` shards of ``cells`` at once (testing / inspection aid)."""
    return [shard_cells(cells, ShardSpec(index, count)) for index in range(count)]
