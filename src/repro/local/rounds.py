"""Explicit round accounting for orchestrated phases.

The peeling processes (Algorithms 1 and 3) and the gather-and-solve steps
(Algorithms 2 and 4) are executed centrally by this reproduction but have a
well-defined LOCAL round cost: one round per peeling iteration, and
``2 * diameter + O(1)`` rounds to gather a connected component at its
highest node and broadcast the computed solution back.  A
:class:`RoundLedger` records those charges phase by phase so that the total
round complexity of a transformed algorithm can be reported and compared
against the paper's bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundLedger:
    """A per-phase account of LOCAL rounds spent."""

    charges: dict[str, int] = field(default_factory=dict)

    def charge(self, phase: str, rounds: int) -> None:
        """Add ``rounds`` rounds to ``phase`` (phases accumulate)."""
        if rounds < 0:
            raise ValueError("cannot charge a negative number of rounds")
        self.charges[phase] = self.charges.get(phase, 0) + int(rounds)

    def charge_max(self, phase: str, rounds: int) -> None:
        """Record ``rounds`` for ``phase`` if it exceeds the current charge.

        Used for phases that run in parallel over many components: the
        phase costs the maximum over components, not the sum.
        """
        if rounds < 0:
            raise ValueError("cannot charge a negative number of rounds")
        self.charges[phase] = max(self.charges.get(phase, 0), int(rounds))

    @property
    def total(self) -> int:
        """Total rounds across all phases."""
        return sum(self.charges.values())

    def breakdown(self) -> dict[str, int]:
        """A copy of the per-phase charges."""
        return dict(self.charges)

    def merge(self, other: "RoundLedger") -> "RoundLedger":
        """A new ledger containing the charges of both ledgers."""
        merged = RoundLedger(dict(self.charges))
        for phase, rounds in other.charges.items():
            merged.charge(phase, rounds)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundLedger(total={self.total}, phases={self.charges})"
