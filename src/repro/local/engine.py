"""Ambient engine selection for the synchronous simulator.

Two engines can execute a structured-message baseline: the interpreted
active-set engine (:func:`repro.local.simulator.run_synchronous`, one
Python callable dispatch per node per round) and the vectorized array
backend (:func:`repro.local.vectorized.run_vectorized`, one NumPy kernel
per round over whole-network state arrays).  Which one runs is a
*policy* decision that has to reach call sites buried many layers deep —
``deg_plus_one_coloring`` calls ``linial_coloring`` calls the engine —
so the choice travels the same way message accounting does
(:class:`~repro.local.simulator.MessageMeter`): as an ambient scope
rather than a parameter threaded through every signature::

    with EngineScope("vectorized"):
        colours, palette, rounds = linial_coloring(graph)
    # every kernel-capable run inside used the array backend

Modes
-----
``auto``
    Use the vectorized backend wherever a kernel exists and numpy is
    importable; fall back to the interpreted engine otherwise.  This is
    the default (also with no scope active at all).
``interpreted``
    Always use the interpreted engine.
``vectorized``
    Require the array backend; a kernel-capable call site raises
    :class:`~repro.local.vectorized.EngineUnavailable` when numpy is
    missing or the algorithm has no kernel.

The scope also records which backends actually served work inside it
(``vectorized_runs`` / ``interpreted_runs``), which is how the
experiment runner stamps the ``engine`` provenance field onto each
stored :class:`~repro.experiments.store.CellResult`.
"""

from __future__ import annotations

__all__ = [
    "ENGINE_MODES",
    "EngineScope",
    "current_engine_mode",
    "resolve_engine_mode",
    "note_engine_use",
]

#: The valid engine-selection modes, in CLI/`--engine` spelling.
ENGINE_MODES = ("auto", "interpreted", "vectorized")

# Scopes currently in effect; the innermost decides the mode, every one
# in scope observes usage.  Per-process state, like the meter stack:
# forked sweep workers each scope their own cells.
_ENGINE_STACK: list["EngineScope"] = []


class EngineScope:
    """Ambient engine choice plus a usage account for everything inside."""

    def __init__(self, mode: str = "auto") -> None:
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {mode!r} (expected one of {ENGINE_MODES})"
            )
        self.mode = mode
        self.vectorized_runs = 0
        self.interpreted_runs = 0

    def __enter__(self) -> "EngineScope":
        _ENGINE_STACK.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        _ENGINE_STACK.remove(self)
        return False

    @property
    def engine_used(self) -> str | None:
        """Which backend(s) served work inside the scope.

        ``"vectorized"`` / ``"interpreted"`` when exactly one did,
        ``"mixed"`` when both did (e.g. a transform whose peeling and
        forest colourings ran on arrays while an adapter baseline ran
        interpreted), ``None`` when no engine ran at all (analytic
        cells).
        """
        if self.vectorized_runs and self.interpreted_runs:
            return "mixed"
        if self.vectorized_runs:
            return "vectorized"
        if self.interpreted_runs:
            return "interpreted"
        return None


def current_engine_mode() -> str:
    """The innermost scope's mode, or ``"auto"`` with no scope active."""
    return _ENGINE_STACK[-1].mode if _ENGINE_STACK else "auto"


def resolve_engine_mode(engine: str | None = None) -> str:
    """An explicit ``engine`` argument, validated; else the ambient mode."""
    if engine is None:
        return current_engine_mode()
    if engine not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {engine!r} (expected one of {ENGINE_MODES})"
        )
    return engine


def note_engine_use(kind: str) -> None:
    """Record that one unit of work ran on backend ``kind`` ("vectorized"
    or "interpreted"); every scope currently in effect observes it."""
    if kind == "vectorized":
        for scope in _ENGINE_STACK:
            scope.vectorized_runs += 1
    else:
        for scope in _ENGINE_STACK:
            scope.interpreted_runs += 1
